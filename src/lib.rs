//! # honest-players
//!
//! A Rust implementation of **two-phase reputation assessment** from
//! Zhang, Wei & Yu, *On the Modeling of Honest Players in Reputation
//! Systems* (ICDCS 2008 / JCST 24(5), 2009), together with everything
//! needed to reproduce the paper's evaluation.
//!
//! Reputation systems predict future behavior from past feedback — an
//! assumption *honest players* satisfy (their transaction outcomes are
//! i.i.d. Bernoulli trials driven by factors outside their control) and
//! adversaries deliberately violate. This library therefore screens a
//! server's transaction history against the honest-player statistical
//! model *before* applying any trust function:
//!
//! 1. **Phase 1 — behavior testing** ([`testing`]): window counts of good
//!    transactions must follow a binomial `B(m, p̂)` within a Monte-Carlo-
//!    calibrated L¹ distance. Variants: whole-history
//!    ([`testing::SingleBehaviorTest`]), every-suffix
//!    ([`testing::MultiBehaviorTest`], with the paper's O(n) optimization)
//!    and issuer-reordered ([`testing::CollusionResilientTest`]).
//! 2. **Phase 2 — trust functions** ([`trust`]): average, λ-weighted,
//!    beta, time-decay, windowed.
//!
//! The workspace also ships the evaluation substrate: a statistics crate
//! ([`stats`]), feedback stores ([`store`]: central, sharded/P2P, partial
//! visibility) and an agent simulator ([`sim`]: honest players,
//! hibernating/periodic/collusive attackers, client-arrival model).
//!
//! ## Quickstart
//!
//! ```
//! use honest_players::prelude::*;
//!
//! // Screen-then-trust pipeline with the paper's defaults (m=10, 95%).
//! let assessor = TwoPhaseAssessor::new(
//!     MultiBehaviorTest::new(BehaviorTestConfig::default())?,
//!     WeightedTrust::new(0.5)?,
//! );
//!
//! // An honest server with p = 0.95 …
//! let honest = honest_players::sim::workload::honest_history(800, 0.95, 1);
//! assert!(assessor.assess(&honest)?.is_accepted());
//!
//! // … and a hibernating attacker that cheats after a clean record.
//! let attacker = honest_players::sim::workload::hibernating_history(800, 0.95, 25, 1);
//! assert!(assessor.assess(&attacker)?.is_rejected());
//! # Ok::<(), honest_players::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hp_core::{
    error::CoreError, testing, trust, twophase, ClientId, Feedback, Rating, ServerId,
    TransactionHistory, TrustValue,
};
pub use hp_core::twophase::{Assessment, ShortHistoryPolicy, TwoPhaseAssessor};

/// Statistical substrate (distributions, distances, calibration).
pub use hp_stats as stats;

/// Agent simulation (honest players, attackers, client arrivals).
pub use hp_sim as sim;

/// Feedback storage (central, sharded, partial visibility).
pub use hp_store as store;

/// Concurrent online reputation service (sharded, incremental).
pub use hp_service as service;

/// The most commonly used items in one import.
pub mod prelude {
    pub use hp_core::testing::{
        BehaviorTest, BehaviorTestConfig, CollusionResilientTest, MultiBehaviorTest,
        SingleBehaviorTest, TestOutcome,
    };
    pub use hp_core::trust::{
        AverageTrust, BetaTrust, DecayTrust, TrustFunction, WeightedTrust,
        WindowedAverageTrust,
    };
    pub use hp_core::twophase::{Assessment, ShortHistoryPolicy, TwoPhaseAssessor};
    pub use hp_core::{
        ClientId, CoreError, Feedback, Rating, ServerId, TransactionHistory, TrustValue,
    };
    pub use hp_service::{
        AssessOutcome, Durability, IngestOutcome, IngestPolicy, ReputationService,
        ServiceConfig, ServiceStats,
    };
    pub use hp_store::{FeedbackStore, MemoryStore};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_pipeline() {
        let mut store = MemoryStore::new();
        let server = ServerId::new(1);
        for t in 0..300u64 {
            store.append(Feedback::new(
                t,
                server,
                ClientId::new(t % 9),
                Rating::from_good(t % 17 != 0),
            ));
        }
        let assessor = TwoPhaseAssessor::new(
            SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap(),
            AverageTrust::default(),
        );
        let assessment = assessor.assess(&store.history_of(server)).unwrap();
        // Regular once-every-17 failures are suspiciously regular or at
        // least conclusively assessed; what matters here is the plumbing.
        let _ = assessment;
    }
}
