#!/usr/bin/env bash
# Tier-1 verification in one command, fully offline (all external
# dependencies are vendored under vendor/ — see Cargo.toml).
#
#   ./ci.sh            # build + test + clippy
#   ./ci.sh --quick    # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "==> cargo build --release (offline, workspace)"
if [ "$QUICK" -eq 0 ]; then
    cargo build --offline --release --workspace
else
    echo "    (skipped: --quick)"
fi

echo "==> cargo test -q (offline, workspace)"
cargo test --offline --workspace -q

echo "==> cargo test -q (service chaos + recovery, fault-injection)"
cargo test --offline -p hp-service --features fault-injection -q

echo "==> cargo clippy -D warnings (offline, workspace, all targets)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo clippy -D warnings (service, fault-injection)"
cargo clippy --offline -p hp-service --features fault-injection --all-targets -- -D warnings

echo "==> OK"
