#!/usr/bin/env bash
# Tier-1 verification in one command, fully offline (all external
# dependencies are vendored under vendor/ — see Cargo.toml).
#
#   ./ci.sh            # build + test + clippy
#   ./ci.sh --quick    # skip the release build
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

echo "==> cargo build --release (offline, workspace)"
if [ "$QUICK" -eq 0 ]; then
    cargo build --offline --release --workspace
else
    echo "    (skipped: --quick)"
fi

echo "==> cargo test -q (offline, workspace)"
cargo test --offline --workspace -q

echo "==> cargo test -q (service chaos + recovery, fault-injection)"
cargo test --offline -p hp-service --features fault-injection -q

echo "==> cargo clippy -D warnings (offline, workspace, all targets)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo clippy -D warnings (service, fault-injection)"
cargo clippy --offline -p hp-service --features fault-injection --all-targets -- -D warnings

echo "==> observability smoke (example + exposition + bench json)"
if [ "$QUICK" -eq 0 ]; then
    EXPO="$(cargo run --offline --release --example online_service)"
    for metric in \
        hp_feedbacks_ingested_total \
        hp_assessments_served_total \
        hp_ingest_apply_latency_seconds_bucket \
        hp_journal_append_latency_seconds_count \
        hp_assess_compute_latency_seconds_count \
        hp_assess_e2e_latency_quantile_seconds \
        hp_shard_queue_depth \
        hp_calibration_cache_entries \
        hp_trace_events_dropped_total
    do
        echo "$EXPO" | grep -q "$metric" \
            || { echo "missing metric in exposition: $metric"; exit 1; }
    done
    BENCH_JSON=experiments/out/bench_service.json
    [ -f "$BENCH_JSON" ] || { echo "missing $BENCH_JSON"; exit 1; }
    for key in ingest_apply assess_e2e p50_ns p99_ns; do
        grep -q "$key" "$BENCH_JSON" \
            || { echo "missing key in $BENCH_JSON: $key"; exit 1; }
    done
    echo "    exposition + $BENCH_JSON verified"
else
    echo "    (skipped: --quick)"
fi

echo "==> history-engine memory gate (bench json vs committed baseline)"
HIST_JSON=experiments/out/bench_history.json
HIST_BASE=experiments/baselines/bench_history_baseline.json
[ -f "$HIST_JSON" ] || { echo "missing $HIST_JSON (run: cargo bench -p hp-bench --bench history)"; exit 1; }
[ -f "$HIST_BASE" ] || { echo "missing $HIST_BASE"; exit 1; }
python3 - "$HIST_JSON" "$HIST_BASE" <<'PYEOF'
import json, sys
current = json.load(open(sys.argv[1]))["resident"]
baseline = json.load(open(sys.argv[2]))["resident"]
limit = baseline["columnar_bytes"] * 1.10
if current["columnar_bytes"] > limit:
    sys.exit(
        f"resident-bytes regression: columnar {current['columnar_bytes']} B "
        f"> 110% of baseline {baseline['columnar_bytes']} B"
    )
if current["ratio"] < 4.0:
    sys.exit(f"columnar/rows ratio {current['ratio']} fell below 4x")
print(
    f"    resident: columnar {current['columnar_bytes']} B per 10k-feedback "
    f"server ({current['ratio']}x smaller than rows; baseline "
    f"{baseline['columnar_bytes']} B)"
)

# Two-sided tiered gate at 10x history length: the compacted active set
# must stay under the committed byte baseline, and a faulted cold assess
# must stay within an order of magnitude of a hot one.
tiered = json.load(open(sys.argv[1]))["tiered"]
tiered_base = json.load(open(sys.argv[2]))["tiered"]
if tiered["history_len"] != tiered_base["history_len"]:
    sys.exit(
        f"tiered gate measured at {tiered['history_len']} records, "
        f"baseline expects {tiered_base['history_len']}"
    )
byte_limit = tiered_base["tiered_bytes"] * 1.10
if tiered["tiered_bytes"] > byte_limit:
    sys.exit(
        f"tiered resident-bytes regression: {tiered['tiered_bytes']} B at "
        f"{tiered['history_len']} records > 110% of baseline "
        f"{tiered_base['tiered_bytes']} B"
    )
if tiered["resident_fraction"] > tiered_base["max_resident_fraction"]:
    sys.exit(
        f"tiered resident fraction {tiered['resident_fraction']} of untiered "
        f"columnar exceeds the {tiered_base['max_resident_fraction']} ceiling"
    )
if tiered["cold_over_hot"] > tiered_base["max_cold_over_hot"]:
    sys.exit(
        f"cold-faulted assess p99 is {tiered['cold_over_hot']}x hot p99, "
        f"over the {tiered_base['max_cold_over_hot']}x ceiling"
    )
print(
    f"    tiered:   {tiered['tiered_bytes']} B resident at "
    f"{tiered['history_len']} records, horizon {tiered['horizon']} "
    f"({tiered['resident_fraction']} of untiered columnar, ceiling "
    f"{tiered_base['max_resident_fraction']}); cold assess "
    f"{tiered['cold_over_hot']}x hot (ceiling {tiered_base['max_cold_over_hot']}x)"
)
PYEOF

echo "==> phase-1 kernel bench (writes experiments/out/bench_phase1.json)"
if [ "$QUICK" -eq 0 ]; then
    cargo bench --offline -p hp-bench --bench phase1 >/dev/null
else
    echo "    (skipped: --quick; gate checks the existing json)"
fi

echo "==> phase-1 kernel perf gate (bench json vs committed baseline)"
P1_JSON=experiments/out/bench_phase1.json
P1_BASE=experiments/baselines/bench_phase1_baseline.json
[ -f "$P1_JSON" ] || { echo "missing $P1_JSON (run: cargo bench -p hp-bench --bench phase1)"; exit 1; }
[ -f "$P1_BASE" ] || { echo "missing $P1_BASE"; exit 1; }
python3 - "$P1_JSON" "$P1_BASE" <<'PYEOF'
import json, sys
current = json.load(open(sys.argv[1]))["gate"]
baseline = json.load(open(sys.argv[2]))["gate"]
# 25% headroom on the absolute per-window figures: the baselines pin the
# min-of-samples on a quiet box, which wobbles ~10% under CI's own load
# (this gate flapped at 110% with no code change). The regression this
# guards against — losing the word-parallel kernel to the scalar path —
# costs 4-6x and is caught independently by the ratio floors below.
for m, base_ns in baseline["kernel_ns_per_window"].items():
    got = current["kernel_ns_per_window"][m]
    if got > base_ns * 1.25:
        sys.exit(
            f"phase-1 kernel regression at {m}: {got} ns/window "
            f"> 125% of baseline {base_ns} ns/window"
        )
if current["min_speedup"] < baseline["min_speedup"]:
    sys.exit(
        f"kernel/scalar speedup {current['min_speedup']}x fell below "
        f"{baseline['min_speedup']}x"
    )
if current["multi_fused_over_naive"] < baseline["multi_fused_over_naive"]:
    sys.exit(
        f"fused/per-suffix multi-test ratio {current['multi_fused_over_naive']}x "
        f"fell below {baseline['multi_fused_over_naive']}x"
    )
npw = ", ".join(f"{m} {ns}ns" for m, ns in current["kernel_ns_per_window"].items())
print(
    f"    kernel: {npw} per window; >= {current['min_speedup']}x over scalar; "
    f"fused multi-test {current['multi_fused_over_naive']}x over per-suffix"
)
PYEOF

echo "==> tracing-overhead bench (writes experiments/out/bench_obs.json)"
if [ "$QUICK" -eq 0 ]; then
    cargo bench --offline -p hp-bench --bench obs >/dev/null
else
    echo "    (skipped: --quick; gate checks the existing json)"
fi

echo "==> tracing-overhead gate (bench json vs committed baseline)"
OBS_JSON=experiments/out/bench_obs.json
OBS_BASE=experiments/baselines/bench_obs_baseline.json
[ -f "$OBS_JSON" ] || { echo "missing $OBS_JSON (run: cargo bench -p hp-bench --bench obs)"; exit 1; }
[ -f "$OBS_BASE" ] || { echo "missing $OBS_BASE"; exit 1; }
python3 - "$OBS_JSON" "$OBS_BASE" <<'PYEOF'
import json, sys
gate = json.load(open(sys.argv[1]))["gate"]
base = json.load(open(sys.argv[2]))["gate"]
if gate["disabled_overhead_pct"] > base["max_disabled_overhead_pct"]:
    sys.exit(
        f"spans-disabled overhead regression: {gate['disabled_overhead_pct']}% "
        f"> {base['max_disabled_overhead_pct']}% budget (the disabled path "
        f"must cost one relaxed atomic load)"
    )
if gate["enabled_overhead_pct"] > base["max_enabled_overhead_pct"]:
    sys.exit(
        f"spans-enabled overhead regression: {gate['enabled_overhead_pct']}% "
        f"> {base['max_enabled_overhead_pct']}% budget on the ingest workload"
    )
print(
    f"    span overhead: disabled {gate['disabled_overhead_pct']}% "
    f"(budget {base['max_disabled_overhead_pct']}%), enabled "
    f"{gate['enabled_overhead_pct']}% (budget {base['max_enabled_overhead_pct']}%), "
    f"enabled vs bare cache-hit assess {gate['assess_enabled_overhead_pct']}% (info)"
)
PYEOF

echo "==> recovery bench (writes experiments/out/bench_recovery.json)"
if [ "$QUICK" -eq 0 ]; then
    cargo bench --offline -p hp-bench --bench recovery >/dev/null
else
    echo "    (skipped: --quick; gate checks the existing json)"
fi

echo "==> snapshot-boot recovery gate (bench json vs committed baseline)"
REC_JSON=experiments/out/bench_recovery.json
REC_BASE=experiments/baselines/bench_recovery_baseline.json
[ -f "$REC_JSON" ] || { echo "missing $REC_JSON (run: cargo bench -p hp-bench --bench recovery)"; exit 1; }
[ -f "$REC_BASE" ] || { echo "missing $REC_BASE"; exit 1; }
python3 - "$REC_JSON" "$REC_BASE" <<'PYEOF'
import json, sys
gate = json.load(open(sys.argv[1]))["gate"]
base = json.load(open(sys.argv[2]))["gate"]
if gate["len"] != base["len"]:
    sys.exit(f"gate measured at {gate['len']} records, baseline expects {base['len']}")
if gate["snapshot_restart_speedup"] < base["min_snapshot_restart_speedup"]:
    sys.exit(
        f"snapshot-boot recovery regression: {gate['snapshot_restart_speedup']}x "
        f"over full replay at {gate['len']} records fell below the "
        f"{base['min_snapshot_restart_speedup']}x floor "
        f"({gate['snapshot_boot_ms']} ms vs {gate['full_replay_ms']} ms)"
    )
if gate["spill_restart_speedup"] < base["min_spill_restart_speedup"]:
    sys.exit(
        f"restart-after-spill regression: {gate['spill_restart_speedup']}x "
        f"over full replay at {gate['len']} records fell below the "
        f"{base['min_spill_restart_speedup']}x floor "
        f"({gate['spill_boot_ms']} ms vs {gate['full_replay_ms']} ms)"
    )
print(
    f"    snapshot boot at {gate['len']} records: {gate['snapshot_boot_ms']} ms "
    f"vs {gate['full_replay_ms']} ms full replay "
    f"({gate['snapshot_restart_speedup']}x, floor {base['min_snapshot_restart_speedup']}x)"
)
print(
    f"    spill boot at {gate['len']} records: {gate['spill_boot_ms']} ms "
    f"({gate['spill_restart_speedup']}x, floor {base['min_spill_restart_speedup']}x) "
    f"— segment re-attach, no journal replay of spilled history"
)
PYEOF

echo "==> calibration bench (writes experiments/out/bench_calibration.json)"
if [ "$QUICK" -eq 0 ]; then
    # The bench binary itself asserts bit-identical thresholds across
    # calibration thread counts, surface error within tolerance, and
    # zero decisive verdict flips between the surface-backed and
    # oracle services; a violation fails this step directly.
    cargo bench --offline -p hp-bench --bench calibration >/dev/null
else
    echo "    (skipped: --quick; gate checks the existing json)"
fi

echo "==> calibration-wall gate (bench json vs committed baseline)"
CAL_JSON=experiments/out/bench_calibration.json
CAL_BASE=experiments/baselines/bench_calibration_baseline.json
[ -f "$CAL_JSON" ] || { echo "missing $CAL_JSON (run: cargo bench -p hp-bench --bench calibration)"; exit 1; }
[ -f "$CAL_BASE" ] || { echo "missing $CAL_BASE"; exit 1; }
python3 - "$CAL_JSON" "$CAL_BASE" <<'PYEOF'
import json, sys
gate = json.load(open(sys.argv[1]))["gate"]
base = json.load(open(sys.argv[2]))["gate"]
if gate["cold_assess_p99_ms"] > base["max_cold_assess_p99_ms"]:
    sys.exit(
        f"cold-assess SLO regression: p99 {gate['cold_assess_p99_ms']} ms "
        f"> {base['max_cold_assess_p99_ms']} ms with the surface enabled"
    )
if gate["surface_max_error"] > gate["tolerance"]:
    sys.exit(
        f"surface error {gate['surface_max_error']} exceeds its configured "
        f"tolerance {gate['tolerance']}"
    )
if gate["verdict_flips"] != 0:
    sys.exit(f"surface flipped {gate['verdict_flips']} decisive verdicts")
if not gate["crn_identical"]:
    sys.exit("calibrated thresholds depend on the thread count")
boot_speedup = gate["boot_oracle_ms"] / gate["boot_surface_ms"]
if boot_speedup < base["min_boot_speedup"]:
    sys.exit(
        f"boot-wall regression: surface boot only {boot_speedup:.1f}x faster "
        f"than the oracle pre-warm ({gate['boot_surface_ms']} ms vs "
        f"{gate['boot_oracle_ms']} ms), floor {base['min_boot_speedup']}x"
    )
growth_speedup = gate["growth_assess_oracle_ms"] / gate["growth_assess_surface_ms"]
if growth_speedup < base["min_growth_speedup"]:
    sys.exit(
        f"growth-wall regression: beyond the pre-warm grid the surface assess "
        f"is only {growth_speedup:.0f}x faster ({gate['growth_assess_surface_ms']} ms "
        f"vs {gate['growth_assess_oracle_ms']} ms), floor {base['min_growth_speedup']}x"
    )
print(
    f"    cold assess p99 {gate['cold_assess_p99_ms']} ms "
    f"(ceiling {base['max_cold_assess_p99_ms']} ms); surface error "
    f"{gate['surface_max_error']} <= tolerance {gate['tolerance']}; "
    f"{gate['verdict_flips']} flips / {gate['knife_edge']} knife-edge "
    f"of {gate['verdicts_compared']}; boot {boot_speedup:.1f}x, "
    f"growth assess {growth_speedup:.0f}x over the oracle wall"
)
PYEOF

echo "==> kill-9 soak (SIGKILL hp-edge mid-ingest, restart on the same dir, verify bit-identical)"
if [ "$QUICK" -eq 0 ]; then
    cargo test --offline --release -p hp-edge --test kill9 -- --ignored
else
    echo "    (skipped: --quick)"
fi

echo "==> edge soak (hp-edge + hp-load over real sockets, writes experiments/out/bench_edge.json)"
if [ "$QUICK" -eq 0 ]; then
    # Boots the service behind the HTTP edge on an ephemeral port and
    # replays the paper-mix population open-loop. The binary itself
    # fails on any accounting mismatch between client-observed
    # accepted/shed counts, ServiceStats, and /metrics.
    cargo run --offline --release -p hp-load --bin edge-soak >/dev/null
else
    echo "    (skipped: --quick; gate checks the existing json)"
fi

echo "==> edge SLO gate (soak json vs committed baseline)"
EDGE_JSON=experiments/out/bench_edge.json
EDGE_BASE=experiments/baselines/bench_edge_baseline.json
[ -f "$EDGE_JSON" ] || { echo "missing $EDGE_JSON (run: cargo run --release -p hp-load --bin edge-soak)"; exit 1; }
[ -f "$EDGE_BASE" ] || { echo "missing $EDGE_BASE"; exit 1; }
python3 - "$EDGE_JSON" "$EDGE_BASE" <<'PYEOF'
import json, sys
current = json.load(open(sys.argv[1]))
slo = json.load(open(sys.argv[2]))["slo"]
throughput = current["ingest_throughput_per_sec"]
p99 = current["assess_p99_ms"]
if throughput < slo["min_ingest_throughput_per_sec"]:
    sys.exit(
        f"edge throughput regression: {throughput:.0f} feedbacks/s "
        f"< SLO floor {slo['min_ingest_throughput_per_sec']}"
    )
if p99 > slo["max_assess_p99_ms"]:
    sys.exit(
        f"edge assess p99 regression: {p99:.2f} ms "
        f"> SLO ceiling {slo['max_assess_p99_ms']} ms"
    )
feedbacks = current["feedbacks"]
if feedbacks["sent"] != feedbacks["accepted"] + feedbacks["shed"]:
    sys.exit(f"edge accounting leak: {feedbacks}")
if current["requests"]["errors"] != 0:
    sys.exit(f"edge soak had {current['requests']['errors']} request errors")
print(
    f"    edge: {throughput:.0f} feedbacks/s accepted "
    f"(floor {slo['min_ingest_throughput_per_sec']}), assess p99 {p99:.2f} ms "
    f"(ceiling {slo['max_assess_p99_ms']} ms), "
    f"{feedbacks['shed']} shed / {current['requests']['assess_degraded']} degraded, "
    f"all exactly accounted"
)
PYEOF

echo "==> OK"
