//! A P2P file-sharing network: feedback lives on a consistent-hash ring of
//! storage nodes (the paper's "special data organization schemes in P2P
//! systems"), nodes fail, and trust assessment keeps working on the
//! surviving replicas — and even on a partial sample of the feedback.
//!
//! ```text
//! cargo run --example p2p_file_sharing
//! ```

use honest_players::prelude::*;
use honest_players::sim::workload;
use honest_players::store::{NodeId, PartialStore, ShardedStore, ShardedStoreConfig};

fn main() -> Result<(), CoreError> {
    // --- 1. Seed the overlay with feedback for 40 peers -------------------
    let mut store = ShardedStore::new(ShardedStoreConfig {
        nodes: 12,
        replication: 3,
        vnodes: 64,
    });
    for peer in 0..40u64 {
        // Peers 0..35 are honest seeders with varying link quality; the
        // last five run a hibernating leech-and-cheat strategy.
        let history = if peer < 35 {
            let p = 0.85 + 0.01 * (peer % 15) as f64;
            workload::honest_history(600, p, peer)
        } else {
            workload::hibernating_history(550, 0.97, 50, peer)
        };
        for fb in history.iter() {
            store.append(Feedback::new(fb.time, ServerId::new(peer), fb.client, fb.rating));
        }
    }

    let assessor = TwoPhaseAssessor::new(
        MultiBehaviorTest::new(BehaviorTestConfig::default())?,
        BetaTrust::default(),
    );

    let classify = |store: &dyn FeedbackStore, label: &str| -> Result<(), CoreError> {
        let mut honest_pass = 0;
        let mut attackers_caught = 0;
        for peer in 0..40u64 {
            let history = store.history_of(ServerId::new(peer));
            if history.is_empty() {
                continue;
            }
            match assessor.assess(&history)? {
                Assessment::Rejected { .. } if peer >= 35 => attackers_caught += 1,
                Assessment::Accepted { .. } if peer < 35 => honest_pass += 1,
                _ => {}
            }
        }
        println!(
            "{label:45} honest accepted: {honest_pass}/35   attackers rejected: {attackers_caught}/5"
        );
        Ok(())
    };

    // --- 2. Assess with the full overlay healthy ---------------------------
    classify(&store, "healthy overlay (12 nodes, 3 replicas)")?;

    // --- 3. A third of the overlay goes down ------------------------------
    for node in [1u64, 4, 7, 10] {
        store.fail_node(NodeId::new(node));
    }
    classify(&store, "degraded overlay (4/12 nodes down)")?;
    for node in [1u64, 4, 7, 10] {
        store.heal_node(NodeId::new(node));
    }

    // --- 4. Assess through a partial-visibility vantage point --------------
    // A peer that can only reach 60% of the feedback still screens
    // correctly: an unbiased sample of an honest history is honest.
    let partial = PartialStore::new(store, 0.6, 42);
    classify(&partial, "partial visibility (60% of feedback)")?;

    Ok(())
}
