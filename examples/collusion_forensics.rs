//! Collusion forensics: a seller boosted by a five-account clique looks
//! spotless to chronological tests, and falls apart the moment feedback is
//! re-ordered by issuer (§4 of the paper).
//!
//! ```text
//! cargo run --example collusion_forensics
//! ```

use honest_players::prelude::*;
use honest_players::sim::workload;
use honest_players::testing::CollusionResilientTest;
use honest_players::TransactionHistory;

fn main() -> Result<(), CoreError> {
    let config = BehaviorTestConfig::default();
    let chronological = SingleBehaviorTest::new(config.clone())?;
    let reordered = CollusionResilientTest::new(config)?;

    // A colluder-fed storefront that *interleaves* its shilling: around
    // every organic customer (usually cheated), the 5-account clique files
    // five-star reviews at random moments. Chronologically each
    // transaction is good with the same i.i.d. probability ≈ 0.91 — a
    // textbook honest player as far as time-ordered windows can tell.
    let mut shill_shop = TransactionHistory::new();
    let mut rng = honest_players::stats::seeded_rng(11);
    use rand::RngExt;
    for t in 0..900u64 {
        let fb = if rng.random::<f64>() < 0.1 {
            // An organic customer; only 1 in 10 of them gets real service.
            let served = rng.random::<f64>() < 0.1;
            Feedback::new(
                t,
                ServerId::new(1),
                ClientId::new(1_000 + t),
                Rating::from_good(served),
            )
        } else {
            Feedback::new(
                t,
                ServerId::new(1),
                ClientId::new(rng.random_range(0..5)),
                Rating::Positive,
            )
        };
        shill_shop.push(fb);
    }
    // An honest shop with the same overall rating, organic clientele.
    let p_match = shill_shop.p_hat().unwrap();
    let honest_shop = workload::honest_history(900, p_match, 12);

    println!("Both shops have ≈{:.1}% positive feedback.\n", p_match * 100.0);

    for (name, history) in [("shill-boosted shop", &shill_shop), ("honest shop", &honest_shop)] {
        let chrono = chronological.evaluate(history)?.outcome();
        let collusion = reordered.evaluate_detailed(history)?;
        println!("{name}:");
        println!("  chronological single test : {chrono}");
        println!("  issuer-reordered test     : {}", collusion.outcome);
        let sb = collusion.supporter_base;
        println!(
            "  supporter base            : {} distinct clients, top-5 issuers hold {:.0}% of feedback",
            sb.distinct_clients,
            sb.top5_share * 100.0
        );
        if let Some(failure) = collusion.reordered.first_failure() {
            let r = &failure.report;
            println!(
                "  first failing suffix      : {} transactions (distance {:.3} > ε {:.3})",
                failure.suffix_len,
                r.distance.unwrap_or_default(),
                r.threshold.unwrap_or_default()
            );
        }
        println!();
    }

    println!(
        "The chronological test can be fooled: colluder praise is interleaved \
         with real transactions, so the time-ordered window counts still look \
         binomial. Grouping feedback by issuer concentrates the clique's \
         perfect ratings into one run — no binomial fits both that run and \
         the mistreated organic tail."
    );
    Ok(())
}
