//! An online-auction marketplace (the paper's motivating scenario):
//! a central feedback server, a mixed population of sellers, and a buyer
//! that screens every seller before bidding.
//!
//! ```text
//! cargo run --example auction_marketplace
//! ```

use honest_players::prelude::*;
use honest_players::sim::attacker::{HibernatingAttacker, PeriodicAttacker};
use honest_players::sim::{HonestBehavior, ServerBehavior, Simulation, SimulationConfig};
use honest_players::store::MemoryStore;

fn main() -> Result<(), CoreError> {
    // --- 1. A season of trading ------------------------------------------
    // Sellers of every stripe transact; all feedback lands in the
    // marketplace's central store.
    let mut store = MemoryStore::new();

    let sellers: Vec<(&str, Box<dyn ServerBehavior>)> = vec![
        ("alice (reliable, slow postal office)", Box::new(HonestBehavior::new(0.93)?)),
        ("bob (excellent fulfilment)", Box::new(HonestBehavior::new(0.99)?)),
        ("carol (mediocre but honest)", Box::new(HonestBehavior::new(0.80)?)),
        (
            "dave (hibernating scammer)",
            Box::new(HibernatingAttacker::new(0.95, 0.98)),
        ),
        (
            "erin (periodic scammer)",
            Box::new(PeriodicAttacker::new(0.95, 0.90, 1.0)),
        ),
    ];

    for (i, (_, behavior)) in sellers.into_iter().enumerate() {
        let server = ServerId::new(i as u64);
        let outcome = Simulation::new(
            behavior,
            AverageTrust::default(),
            SimulationConfig {
                rounds: 1200,
                server,
                clients: 200,
                seed: 0xA0C + i as u64,
            },
        )
        .run();
        for fb in outcome.history.iter() {
            store.append(*fb);
        }
    }

    // --- 2. A buyer evaluates every seller --------------------------------
    let assessor = TwoPhaseAssessor::new(
        MultiBehaviorTest::new(BehaviorTestConfig::default())?,
        AverageTrust::default(),
    );
    let names = [
        "alice (reliable, slow postal office)",
        "bob (excellent fulfilment)",
        "carol (mediocre but honest)",
        "dave (hibernating scammer)",
        "erin (periodic scammer)",
    ];

    println!("{:40} {:>7} {:>9}  verdict", "seller", "p̂", "n");
    println!("{}", "-".repeat(75));
    for (i, name) in names.iter().enumerate() {
        let history = store.history_of(ServerId::new(i as u64));
        let p_hat = history.p_hat().unwrap_or_default();
        let assessment = assessor.assess(&history)?;
        let verdict = match &assessment {
            Assessment::Accepted { trust, .. } => format!("deal (trust {trust})"),
            Assessment::Rejected { .. } => "DO NOT TRADE — gaming the system".to_string(),
            Assessment::NeedsReview { .. } => "new seller — manual review".to_string(),
        };
        println!("{:40} {:>7.3} {:>9}  {}", name, p_hat, history.len(), verdict);
    }

    println!(
        "\nNote carol: a *mediocre* seller is still an honest player — her \
         failures are random, so she passes screening and her (low) trust \
         value speaks for itself. The scammers' ratios look better than \
         hers, and they are rejected anyway."
    );
    Ok(())
}
