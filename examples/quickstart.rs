//! Quickstart: screen a server's history, then compute its trust value.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use honest_players::prelude::*;
use honest_players::sim::workload;

fn main() -> Result<(), CoreError> {
    // The two-phase pipeline with the paper's defaults: window size m = 10,
    // 95% confidence L¹ screening, multi-testing over every suffix, and the
    // λ = 0.5 weighted trust function.
    let assessor = TwoPhaseAssessor::new(
        MultiBehaviorTest::new(BehaviorTestConfig::default())?,
        WeightedTrust::new(0.5)?,
    );

    // Three servers with identical *ratios* of good transactions but very
    // different behavior patterns.
    let histories = [
        ("honest player (p = 0.9)", workload::honest_history(1000, 0.9, 7)),
        (
            "hibernating attacker (clean prep, then a spree)",
            workload::hibernating_history(900, 0.995, 95, 7),
        ),
        (
            "periodic attacker (1 bad per 10, metronome)",
            workload::periodic_history(1000, 10, 0.1, 7),
        ),
    ];

    for (label, history) in &histories {
        let p_hat = history.p_hat().unwrap_or_default();
        print!("{label:55} p̂ = {p_hat:.3}  →  ");
        match assessor.assess(history)? {
            Assessment::Accepted { trust, .. } => {
                println!("ACCEPTED, trust = {trust}");
            }
            Assessment::Rejected { report } => {
                println!("REJECTED as {} by phase 1", report.outcome());
            }
            Assessment::NeedsReview { trust, .. } => {
                println!("needs review (short history), provisional trust = {trust}");
            }
        }
    }

    println!(
        "\nAll three servers have ≈90% positive feedback. A trust function \
         alone would rate them identically; the behavior test tells them apart."
    );
    Ok(())
}
