//! Online service: run a simulated marketplace through the sharded
//! reputation service and report detection quality and throughput.
//!
//! ```text
//! cargo run --release --example online_service
//! ```
//!
//! The service ingests interleaved feedback batches exactly as a deployed
//! front end would, answers every assessment from incremental per-server
//! state, and every verdict is cross-checked against the offline
//! `TwoPhaseAssessor` — the `mismatches` line must read 0.

use honest_players::service::obs::explain_assessment;
use honest_players::service::replay::{run_replay, ReplayConfig};
use honest_players::service::{ReputationService, ServiceConfig, ServiceError};
use honest_players::ServerId;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn main() -> Result<(), ServiceError> {
    let config = ServiceConfig::default().with_shards(4);

    let start = Instant::now();
    let service = ReputationService::new(config)?;
    let startup = start.elapsed();
    println!(
        "service up: {} shards, calibration cache pre-warmed with {} entries in {:.2?}",
        service.config().shards(),
        service.stats().calibration_cache_entries,
        startup,
    );

    // A marketplace: honest servers at several quality levels plus the
    // paper's two attacker archetypes (hibernating and Fig. 7 periodic).
    let replay = ReplayConfig {
        honest_servers: 40,
        hibernating_attackers: 10,
        periodic_attackers: 10,
        history_len: 1000,
        ..ReplayConfig::default()
    };

    let start = Instant::now();
    let outcome = run_replay(&service, &replay)?;
    let elapsed = start.elapsed();

    println!("\nreplayed {} feedbacks across {} servers in {:.2?}", outcome.feedbacks, outcome.servers, elapsed);
    println!(
        "  ingest+assess throughput: {:.0} feedbacks/s",
        outcome.feedbacks as f64 / elapsed.as_secs_f64()
    );

    println!("\ndetection summary (online verdicts):");
    println!("  honest accepted:      {:3}", outcome.honest_accepted);
    println!("  honest rejected:      {:3}  (false-positive rate {:.1}%)",
        outcome.honest_rejected, 100.0 * outcome.false_positive_rate());
    println!("  attackers rejected:   {:3}  (detection rate {:.1}%)",
        outcome.attackers_rejected, 100.0 * outcome.detection_rate());
    println!("  attackers accepted:   {:3}", outcome.attackers_accepted);
    println!("  needs review:         {:3}", outcome.needs_review);
    println!("  online/offline mismatches: {}", outcome.mismatches);

    let stats = service.stats();
    println!("\nservice counters:");
    println!("  ingested feedbacks:   {}", stats.ingested_feedbacks);
    println!("  assessments served:   {}", stats.assessments_served);
    println!(
        "  cache hit rate:       {:.1}%  ({} hits / {} misses)",
        100.0 * stats.cache_hit_rate(),
        stats.cache_hits,
        stats.cache_misses
    );
    println!("  tracked servers:      {}", stats.tracked_servers);
    println!("  shard queue depths:   {:?}", stats.shard_queue_depths);

    // One verdict, fully explained: the audit trail of a rejected
    // attacker (server IDs after the honest block are attackers).
    let attacker = ServerId::new(replay.honest_servers as u64 + 1);
    let traced = service.assess_traced(attacker)?;
    println!("\n{}", explain_assessment(&service.metrics(), &traced.trace));

    println!("\nprometheus exposition:");
    println!("{}", service.render_prometheus());

    // Machine-readable latency snapshot for the bench harness / ci.sh.
    let out_dir = std::env::var("HP_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments/out"));
    std::fs::create_dir_all(&out_dir).expect("create bench output dir");
    let out = out_dir.join("bench_service.json");
    std::fs::write(&out, service.metrics_json()).expect("write bench json");
    println!("wrote {}", out.display());

    assert_eq!(outcome.mismatches, 0, "online verdicts must match offline");
    Ok(())
}
