//! Behavior testing over every storage regime the paper assumes:
//! central server, P2P sharding with failures, and partial visibility.

use honest_players::prelude::*;
use honest_players::sim::workload;
use honest_players::store::{
    NodeId, PartialStore, ShardedStore, ShardedStoreConfig,
};

fn fast_config() -> BehaviorTestConfig {
    BehaviorTestConfig::builder()
        .calibration_trials(500)
        .build()
        .unwrap()
}

fn populate<S: FeedbackStore>(store: &mut S) {
    // Servers 0..8 honest; servers 8..10 hibernating attackers.
    for s in 0..10u64 {
        let history = if s < 8 {
            workload::honest_history(600, 0.9, s)
        } else {
            workload::hibernating_history(560, 0.95, 40, s)
        };
        for fb in history.iter() {
            store.append(Feedback::new(fb.time, ServerId::new(s), fb.client, fb.rating));
        }
    }
}

fn classify<S: FeedbackStore>(store: &S) -> (usize, usize) {
    let test = MultiBehaviorTest::new(fast_config()).unwrap();
    let mut honest_ok = 0;
    let mut attackers_caught = 0;
    for s in 0..10u64 {
        let history = store.history_of(ServerId::new(s));
        if history.is_empty() {
            continue;
        }
        let suspicious = test.evaluate(&history).unwrap().outcome() == TestOutcome::Suspicious;
        if s < 8 && !suspicious {
            honest_ok += 1;
        }
        if s >= 8 && suspicious {
            attackers_caught += 1;
        }
    }
    (honest_ok, attackers_caught)
}

#[test]
fn central_store_classification() {
    let mut store = MemoryStore::new();
    populate(&mut store);
    let (honest_ok, caught) = classify(&store);
    assert!(honest_ok >= 7, "honest pass {honest_ok}/8");
    assert_eq!(caught, 2, "attackers caught {caught}/2");
}

#[test]
fn sharded_store_classification_survives_failures() {
    let mut store = ShardedStore::new(ShardedStoreConfig {
        nodes: 10,
        replication: 3,
        vnodes: 48,
    });
    populate(&mut store);

    let healthy = classify(&store);
    store.fail_node(NodeId::new(2));
    store.fail_node(NodeId::new(5));
    let degraded = classify(&store);
    assert_eq!(
        healthy, degraded,
        "classification must be identical on surviving replicas"
    );
}

#[test]
fn partial_visibility_preserves_classification() {
    let mut inner = MemoryStore::new();
    populate(&mut inner);
    let store = PartialStore::new(inner, 0.6, 99);
    let (honest_ok, caught) = classify(&store);
    // An unbiased 60% sample preserves the distributions; a burst of
    // cheating survives subsampling too (24 of 40 bad expected visible).
    assert!(honest_ok >= 7, "honest pass {honest_ok}/8 under sampling");
    assert!(caught >= 1, "attackers caught {caught}/2 under sampling");
}

#[test]
fn sharded_and_central_agree_bit_for_bit() {
    let mut central = MemoryStore::new();
    let mut sharded = ShardedStore::new(ShardedStoreConfig::default());
    populate(&mut central);
    populate(&mut sharded);
    let test = SingleBehaviorTest::new(fast_config()).unwrap();
    for s in 0..10u64 {
        let a = test.evaluate(&central.history_of(ServerId::new(s))).unwrap();
        let b = test.evaluate(&sharded.history_of(ServerId::new(s))).unwrap();
        assert_eq!(a, b, "server {s}");
    }
}

#[test]
fn recent_of_supports_windowed_trust() {
    let mut store = MemoryStore::new();
    populate(&mut store);
    let recent = store.recent_of(ServerId::new(8), 40);
    assert_eq!(recent.len(), 40);
    // Server 8 is the hibernator: its recent window is the attack spree.
    assert_eq!(recent.good_count(), 0);
    let windowed = WindowedAverageTrust::new(40).unwrap();
    let full = store.history_of(ServerId::new(8));
    assert_eq!(
        windowed.trust(&full).value(),
        recent.p_hat().unwrap(),
        "windowed trust over the full history equals the average of recent_of"
    );
}
