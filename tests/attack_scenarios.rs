//! Scenario-level integration tests: miniature versions of the paper's
//! Figs. 3–7 claims, asserted qualitatively.

use honest_players::prelude::*;
use honest_players::sim::detection::{detection_rate, false_positive_rate, DetectionConfig};
use honest_players::sim::{attack_cost, collusion_attack_cost, AttackCostConfig, CollusionConfig, Screening};
use honest_players::testing::{shared_calibrator, CollusionResilientTest};
use std::sync::Arc;

fn config() -> BehaviorTestConfig {
    BehaviorTestConfig::builder()
        .calibration_trials(400)
        .build()
        .unwrap()
}

fn median_cost(
    prep: usize,
    trust: &dyn TrustFunction,
    screening: Screening<'_>,
    seeds: std::ops::Range<u64>,
) -> f64 {
    let mut costs: Vec<f64> = seeds
        .map(|seed| {
            attack_cost(
                &AttackCostConfig {
                    prep_size: prep,
                    max_steps: 2_000,
                    seed,
                    ..Default::default()
                },
                trust,
                screening,
            )
            .unwrap()
            .good_transactions as f64
        })
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    costs[costs.len() / 2]
}

/// Fig. 3's left edge and right edge: the bare average function costs the
/// attacker ~130 goods at prep 100 and nothing at prep 800.
#[test]
fn fig3_shape_bare_average_collapses_with_prep() {
    let avg = AverageTrust::default();
    let short = median_cost(100, &avg, Screening::None, 0..5);
    let long = median_cost(800, &avg, Screening::None, 0..5);
    assert!(short > 80.0, "short prep cost {short}");
    assert!(long < 5.0, "long prep cost {long}");
}

/// Fig. 3's headline: with multi-testing the cost stays high regardless of
/// preparation length — prep no longer buys the attacker anything.
#[test]
fn fig3_shape_multi_testing_cost_is_flat_in_prep() {
    let cfg = config();
    let multi = MultiBehaviorTest::new(cfg).unwrap();
    let avg = AverageTrust::default();
    let at_400 = median_cost(400, &avg, Screening::Test(&multi), 10..15);
    let at_800 = median_cost(800, &avg, Screening::Test(&multi), 10..15);
    // Both well above the free ride of the bare function at those preps…
    assert!(at_400 > 5.0, "multi cost at prep 400: {at_400}");
    assert!(at_800 > 5.0, "multi cost at prep 800: {at_800}");
    // …and within a small factor of each other (no prep dividend).
    let ratio = at_800.max(at_400) / at_800.min(at_400).max(1.0);
    assert!(ratio < 6.0, "multi cost should be roughly flat: {at_400} vs {at_800}");
}

/// Fig. 4: the weighted function taxes every attack ~2-3 goods, at any
/// preparation length.
#[test]
fn fig4_shape_weighted_constant_cost() {
    let weighted = WeightedTrust::new(0.5).unwrap();
    let short = median_cost(100, &weighted, Screening::None, 0..5);
    let long = median_cost(800, &weighted, Screening::None, 0..5);
    for (label, cost) in [("short", short), ("long", long)] {
        assert!(
            (40.0..=80.0).contains(&cost),
            "{label}-prep weighted cost {cost} (expect ≈ 20 attacks × 3)"
        );
    }
}

/// Fig. 5: collusion makes the bare baseline free; the collusion-resilient
/// screen restores a real cost.
#[test]
fn fig5_shape_collusion_baseline_free_screen_costly() {
    let avg = AverageTrust::default();
    let bare = collusion_attack_cost(
        &CollusionConfig {
            seed: 3,
            ..Default::default()
        },
        &avg,
        Screening::None,
    )
    .unwrap();
    assert_eq!(bare.good_to_victims, 0);
    assert_eq!(bare.attacks_completed, 20);

    let screen = CollusionResilientTest::new(config()).unwrap();
    let mut paid_or_blocked = 0;
    for seed in 0..5 {
        let r = collusion_attack_cost(
            &CollusionConfig {
                seed,
                max_steps: 2_000,
                ..Default::default()
            },
            &avg,
            Screening::Test(&screen),
        )
        .unwrap();
        if r.good_to_victims > 0 || r.exhausted {
            paid_or_blocked += 1;
        }
    }
    assert!(
        paid_or_blocked >= 4,
        "screening must impose real cost in most runs: {paid_or_blocked}/5"
    );
}

/// Fig. 7: detection decays with the attack-window size, and the honest
/// false-positive rate stays far below the tight-window detection rate.
#[test]
fn fig7_shape_detection_decays_and_dominates_fpr() {
    let cfg = config();
    let cal = shared_calibrator(&cfg).unwrap();
    let single = SingleBehaviorTest::with_calibrator(cfg, Arc::clone(&cal)).unwrap();
    let dcfg = DetectionConfig {
        trials: 40,
        ..Default::default()
    };
    let tight = detection_rate(10, &single, &dcfg).unwrap();
    let loose = detection_rate(80, &single, &dcfg).unwrap();
    let fpr = false_positive_rate(0.9, &single, &dcfg).unwrap();
    assert!(tight > 0.9, "tight-window detection {tight}");
    assert!(loose < tight, "loose windows evade more: {loose} vs {tight}");
    assert!(fpr < 0.2, "honest FPR {fpr}");
    assert!(tight - fpr > 0.6, "detection must dominate FPR");
}

/// The strategic attacker heuristically beats the naive hibernator: with
/// screening deployed, blind cheating is caught while strategic play still
/// (expensively) succeeds.
#[test]
fn strategic_play_survives_where_blind_cheating_fails() {
    use honest_players::sim::workload;
    let cfg = config();
    let multi = MultiBehaviorTest::new(cfg).unwrap();

    // Blind hibernator history → flagged.
    let blind = workload::hibernating_history(800, 0.95, 20, 5);
    assert_eq!(
        multi.evaluate(&blind).unwrap().outcome(),
        TestOutcome::Suspicious
    );

    // Strategic attacker vs the same screen → completes its attacks in
    // most runs, paying as it goes.
    let avg = AverageTrust::default();
    let mut completed = 0;
    for seed in 20..25 {
        let r = attack_cost(
            &AttackCostConfig {
                prep_size: 800,
                max_steps: 2_000,
                seed,
                ..Default::default()
            },
            &avg,
            Screening::Test(&multi),
        )
        .unwrap();
        if !r.exhausted {
            completed += 1;
            assert!(r.good_transactions > 0, "seed {seed}: success must cost");
        }
    }
    assert!(completed >= 3, "strategic attacker completed {completed}/5");
}
