//! Cross-crate property tests: invariants that must hold for *any*
//! transaction history, not just the workloads we thought of.

use honest_players::prelude::*;
use honest_players::testing::{
    shared_calibrator, CollusionResilientTest, MultiBehaviorTest, MultiTestMode,
};
use honest_players::TransactionHistory;
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary transaction history: random length, random outcomes,
/// random (small-population) clients.
fn arb_history() -> impl Strategy<Value = TransactionHistory> {
    proptest::collection::vec((any::<bool>(), 0u64..12), 0..600).prop_map(|items| {
        let mut h = TransactionHistory::new();
        for (t, (good, client)) in items.into_iter().enumerate() {
            h.push(Feedback::new(
                t as u64,
                ServerId::new(1),
                ClientId::new(client),
                Rating::from_good(good),
            ));
        }
        h
    })
}

fn fast_config() -> BehaviorTestConfig {
    BehaviorTestConfig::builder()
        .calibration_trials(200)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paper's O(n) optimization must be *exactly* equivalent to the
    /// naive evaluation on any input.
    #[test]
    fn naive_and_optimized_multi_agree_on_any_history(h in arb_history()) {
        let config = fast_config();
        let cal = shared_calibrator(&config).unwrap();
        let naive = MultiBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal))
            .unwrap()
            .with_mode(MultiTestMode::Naive);
        let optimized = MultiBehaviorTest::with_calibrator(config, cal)
            .unwrap()
            .with_mode(MultiTestMode::Optimized);
        prop_assert_eq!(
            naive.evaluate_detailed(&h).unwrap(),
            optimized.evaluate_detailed(&h).unwrap()
        );
    }

    /// The equivalence also holds under the geometric suffix schedule.
    #[test]
    fn naive_and_optimized_agree_with_geometric_schedule(h in arb_history()) {
        use honest_players::testing::SuffixSchedule;
        let config = BehaviorTestConfig::builder()
            .calibration_trials(200)
            .schedule(SuffixSchedule::Geometric)
            .build()
            .unwrap();
        let cal = shared_calibrator(&config).unwrap();
        let naive = MultiBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal))
            .unwrap()
            .with_mode(MultiTestMode::Naive);
        let optimized = MultiBehaviorTest::with_calibrator(config, cal)
            .unwrap()
            .with_mode(MultiTestMode::Optimized);
        prop_assert_eq!(
            naive.evaluate_detailed(&h).unwrap(),
            optimized.evaluate_detailed(&h).unwrap()
        );
    }

    /// The issuer-frequency reordering is a permutation: same multiset of
    /// outcomes, same counts, grouped by client.
    #[test]
    fn reordering_is_a_permutation(h in arb_history()) {
        let reordered = h.reordered_outcomes();
        prop_assert_eq!(reordered.len(), h.len());
        let good_before = h.good_count();
        let good_after = reordered.iter().filter(|&&g| g).count() as u64;
        prop_assert_eq!(good_before, good_after);

        let order = h.issuer_frequency_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), h.len(), "indices must be distinct");
    }

    /// Reordered groups are contiguous and ordered by decreasing issuer
    /// frequency.
    #[test]
    fn reordering_groups_clients_contiguously(h in arb_history()) {
        let order = h.issuer_frequency_order();
        let clients: Vec<ClientId> = order
            .iter()
            .map(|&i| h.get(i).unwrap().client)
            .collect();
        // Contiguity: once we leave a client's block we never return.
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<ClientId> = None;
        let mut prev_count = usize::MAX;
        for c in clients {
            if prev != Some(c) {
                prop_assert!(seen.insert(c), "client {c} appears in two blocks");
                let count = h.client_count(c);
                prop_assert!(
                    count <= prev_count,
                    "blocks must be ordered by frequency"
                );
                prev_count = count;
                prev = Some(c);
            }
        }
    }

    /// Assessment trichotomy: every history is accepted, rejected or sent
    /// to review — and trust values are produced exactly when expected.
    #[test]
    fn assessment_trichotomy(h in arb_history()) {
        let assessor = TwoPhaseAssessor::new(
            SingleBehaviorTest::new(fast_config()).unwrap(),
            AverageTrust::default(),
        );
        let assessment = assessor.assess(&h).unwrap();
        match assessment {
            Assessment::Accepted { trust, .. } => {
                prop_assert!((0.0..=1.0).contains(&trust.value()));
            }
            Assessment::NeedsReview { trust, .. } => {
                prop_assert!((0.0..=1.0).contains(&trust.value()));
                prop_assert!(h.len() < 100, "review only for short histories (m=10, min 5 windows … but alignment may cover less)");
            }
            Assessment::Rejected { report } => {
                prop_assert!(report.is_suspicious() || h.len() < 100);
            }
        }
    }

    /// Trust functions always produce values in [0, 1] and the average
    /// matches the good ratio exactly.
    #[test]
    fn trust_functions_bounded_on_any_history(h in arb_history()) {
        let functions: Vec<Box<dyn TrustFunction>> = vec![
            Box::new(AverageTrust::default()),
            Box::new(WeightedTrust::new(0.5).unwrap()),
            Box::new(BetaTrust::default()),
            Box::new(DecayTrust::new(25.0).unwrap()),
        ];
        for f in &functions {
            let t = f.trust(&h).value();
            prop_assert!((0.0..=1.0).contains(&t), "{} gave {t}", f.name());
        }
        if let Some(p) = h.p_hat() {
            let avg = AverageTrust::default().trust(&h).value();
            prop_assert!((avg - p).abs() < 1e-12);
        }
    }

    /// Push/pop round-trips leave every derived statistic unchanged.
    #[test]
    fn push_pop_roundtrip_preserves_state(
        h in arb_history(),
        extra in proptest::collection::vec((any::<bool>(), 0u64..12), 1..20)
    ) {
        let mut mutated = h.clone();
        for (i, (good, client)) in extra.iter().enumerate() {
            mutated.push(Feedback::new(
                10_000 + i as u64,
                ServerId::new(1),
                ClientId::new(*client),
                Rating::from_good(*good),
            ));
        }
        for _ in 0..extra.len() {
            mutated.pop();
        }
        prop_assert_eq!(mutated.feedbacks(), h.feedbacks());
        prop_assert_eq!(mutated.good_count(), h.good_count());
        prop_assert_eq!(mutated.distinct_clients(), h.distinct_clients());
        prop_assert_eq!(mutated.reordered_outcomes(), h.reordered_outcomes());
    }

    /// The collusion test never errors on any history and its verdict is
    /// deterministic.
    #[test]
    fn collusion_test_total_and_deterministic(h in arb_history()) {
        let test = CollusionResilientTest::new(fast_config()).unwrap();
        let a = test.evaluate_detailed(&h).unwrap();
        let b = test.evaluate_detailed(&h).unwrap();
        prop_assert_eq!(a, b);
    }
}
