//! Integration tests for the beyond-the-figures extensions: multinomial
//! feedback, categorized testing, global trust, persistence, and the
//! welfare loop.

use honest_players::prelude::*;
use honest_players::sim::ecosystem::{run_marketplace, EcosystemConfig};
use honest_players::sim::workload;
use honest_players::store::{load_feedback, save_feedback, MemoryStore};
use honest_players::testing::{CategorizedTest, MultiValueBehaviorTest};
use honest_players::trust::{GlobalTrust, GlobalTrustConfig, RatingGraph};
use rand::RngExt;

fn fast_config() -> BehaviorTestConfig {
    BehaviorTestConfig::builder()
        .calibration_trials(400)
        .build()
        .unwrap()
}

#[test]
fn multivalue_testing_catches_neutral_band_degradation() {
    // An attacker that never goes "negative" — it quietly degrades
    // service into the neutral band. The binary view (positive vs rest)
    // shifts too, but the three-valued test localizes the shift.
    let test = MultiValueBehaviorTest::new(fast_config(), 3).unwrap();
    let mut rng = hp_stats::seeded_rng(3);
    let mut ratings: Vec<usize> = (0..600)
        .map(|_| {
            let u: f64 = rng.random();
            if u < 0.9 {
                0
            } else if u < 0.97 {
                1
            } else {
                2
            }
        })
        .collect();
    // Degradation phase: positive→neutral swap, negatives unchanged.
    ratings.extend((0..200).map(|_| {
        let u: f64 = rng.random();
        if u < 0.3 {
            0
        } else if u < 0.97 {
            1
        } else {
            2
        }
    }));
    let report = test.evaluate(&ratings).unwrap();
    assert_eq!(report.outcome, TestOutcome::Suspicious);
    // The negative band stayed honest throughout.
    assert_ne!(report.categories[2].outcome, TestOutcome::Suspicious);
}

#[test]
fn categorized_testing_tolerates_regional_quality_gaps() {
    let inner = SingleBehaviorTest::new(fast_config()).unwrap();
    let test = CategorizedTest::new(inner, |fb: &Feedback| (fb.client.value() >> 32) as u32);
    let mut rng = hp_stats::seeded_rng(5);
    let mut h = TransactionHistory::new();
    // Traffic arrives in blocks (think day/night): 20 transactions from
    // region 0 (p = 0.98), then 20 from region 1 (p = 0.6), repeated.
    // Block structure matters: per-transaction random mixing would make
    // the pooled stream i.i.d. again.
    for t in 0..1600u64 {
        let region = (t / 20) % 2;
        let p = if region == 0 { 0.98 } else { 0.6 };
        h.push(Feedback::new(
            t,
            ServerId::new(1),
            ClientId::new((region << 32) | t),
            Rating::from_good(rng.random::<f64>() < p),
        ));
    }
    let report = test.evaluate(&h).unwrap();
    assert_ne!(report.outcome, TestOutcome::Suspicious);
    // The pooled single test over the mixture, in contrast, sees a
    // bimodal window-count distribution and objects.
    let pooled = SingleBehaviorTest::new(fast_config()).unwrap();
    assert_eq!(
        pooled.evaluate(&h).unwrap().outcome(),
        TestOutcome::Suspicious,
        "the pooled mixture is exactly the false alert the §4 extension avoids"
    );
}

#[test]
fn global_trust_ranks_organic_reputation_over_cliques() {
    let mut graph = RatingGraph::new();
    // Organic star: 30 distinct raters, a few transactions each.
    for i in 0..30u64 {
        graph.record(ServerId::new(100 + i), ServerId::new(1), true);
        graph.record(ServerId::new(100 + i), ServerId::new(1), true);
    }
    // Clique: two ids praising each other thousands of times.
    for _ in 0..3000 {
        graph.record(ServerId::new(7), ServerId::new(8), true);
        graph.record(ServerId::new(8), ServerId::new(7), true);
    }
    let gt = GlobalTrust::compute(&graph, GlobalTrustConfig::default()).unwrap();
    assert!(
        gt.score(ServerId::new(1)) > gt.score(ServerId::new(8)),
        "organic reputation must outrank the clique: {:?}",
        gt.ranking().into_iter().take(3).collect::<Vec<_>>()
    );
}

#[test]
fn persisted_logs_reproduce_identical_assessments() {
    let mut store = MemoryStore::new();
    let server = ServerId::new(4);
    for fb in workload::hibernating_history(600, 0.95, 30, 9).iter() {
        store.append(Feedback::new(fb.time, server, fb.client, fb.rating));
    }
    let dir = std::env::temp_dir().join("hp-extensions-test");
    let path = dir.join("log.csv");
    save_feedback(&store, &path).unwrap();

    let mut restored = MemoryStore::new();
    load_feedback(&mut restored, &path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let test = MultiBehaviorTest::new(fast_config()).unwrap();
    assert_eq!(
        test.evaluate(&store.history_of(server)).unwrap(),
        test.evaluate(&restored.history_of(server)).unwrap(),
        "assessment must be reproducible from the checkpoint"
    );
}

#[test]
fn marketplace_screening_improves_welfare_end_to_end() {
    let config = EcosystemConfig {
        rounds: 5000,
        seed: 21,
        ..Default::default()
    };
    let avg = AverageTrust::default();
    let unscreened = run_marketplace(&config, &avg, None).unwrap();
    let screen = MultiBehaviorTest::new(fast_config()).unwrap();
    let screened = run_marketplace(&config, &avg, Some(&screen)).unwrap();
    assert!(
        (screened.attacker_harm as f64) < 0.7 * unscreened.attacker_harm as f64,
        "screening must cut attacker harm substantially: {} vs {}",
        screened.attacker_harm,
        unscreened.attacker_harm
    );
}

#[test]
fn chi_square_comparator_agrees_on_extremes() {
    use honest_players::stats::chisq::chi_square_gof_test;
    use honest_players::stats::Binomial;
    // Honest window counts accepted, metronome rejected — with p *known*,
    // matching the §6 discussion of classical hypothesis testing.
    let model = Binomial::new(10, 0.9).unwrap();
    let honest = workload::honest_history(1000, 0.9, 2);
    let mut counts = vec![0u64; 11];
    for c in honest.window_counts(0, 1000, 10).unwrap() {
        counts[c as usize] += 1;
    }
    let (_, p_honest) = chi_square_gof_test(&counts, &model.pmf_table()).unwrap();
    assert!(p_honest > 0.01, "honest p-value {p_honest}");

    let mut metronome = vec![0u64; 11];
    metronome[9] = 100;
    let (_, p_attack) = chi_square_gof_test(&metronome, &model.pmf_table()).unwrap();
    assert!(p_attack < 1e-9);
}
