//! End-to-end integration: feedback store → behavior test → trust function.

use honest_players::prelude::*;
use honest_players::sim::workload;
use honest_players::testing::{shared_calibrator, TestReport};
use std::sync::Arc;

fn fast_config() -> BehaviorTestConfig {
    BehaviorTestConfig::builder()
        .calibration_trials(500)
        .build()
        .unwrap()
}

#[test]
fn honest_players_flow_through_both_phases() {
    let assessor = TwoPhaseAssessor::new(
        MultiBehaviorTest::new(fast_config()).unwrap(),
        AverageTrust::default(),
    );
    let mut accepted = 0;
    let trials = 25;
    for seed in 0..trials {
        let h = workload::honest_history(700, 0.92, seed);
        let assessment = assessor.assess(&h).unwrap();
        if let Assessment::Accepted { trust, .. } = assessment {
            accepted += 1;
            assert!(
                (trust.value() - 0.92).abs() < 0.05,
                "phase-2 trust tracks p: {trust}"
            );
        }
    }
    assert!(
        accepted as f64 / trials as f64 > 0.8,
        "honest acceptance {accepted}/{trials}"
    );
}

#[test]
fn hibernating_attackers_are_rejected_before_any_trust_is_computed() {
    let assessor = TwoPhaseAssessor::new(
        MultiBehaviorTest::new(fast_config()).unwrap(),
        AverageTrust::default(),
    );
    let mut rejected = 0;
    let trials = 20;
    for seed in 0..trials {
        let h = workload::hibernating_history(2000, 0.95, 30, seed);
        let assessment = assessor.assess(&h).unwrap();
        assert!(
            assessment.trust().is_none() || !assessment.is_accepted() || {
                // A run can slip through only if its attack burst happens
                // to mimic Bernoulli noise; count them.
                true
            }
        );
        if assessment.is_rejected() {
            rejected += 1;
        }
    }
    assert!(
        rejected as f64 / trials as f64 > 0.8,
        "hibernator rejection {rejected}/{trials}"
    );
}

#[test]
fn store_backed_assessment_matches_direct_assessment() {
    let mut store = MemoryStore::new();
    let server = ServerId::new(3);
    let history = workload::honest_history(500, 0.9, 9);
    for fb in history.iter() {
        store.append(Feedback::new(fb.time, server, fb.client, fb.rating));
    }
    let assessor = TwoPhaseAssessor::new(
        SingleBehaviorTest::new(fast_config()).unwrap(),
        AverageTrust::default(),
    );
    let direct = assessor.assess(&history).unwrap();
    let through_store = assessor.assess(&store.history_of(server)).unwrap();
    assert_eq!(direct.trust(), through_store.trust());
    assert_eq!(direct.is_accepted(), through_store.is_accepted());
}

#[test]
fn short_history_policies_govern_new_servers() {
    let h = workload::honest_history(40, 0.95, 1);

    let review = TwoPhaseAssessor::new(
        SingleBehaviorTest::new(fast_config()).unwrap(),
        BetaTrust::default(),
    );
    assert!(matches!(
        review.assess(&h).unwrap(),
        Assessment::NeedsReview { .. }
    ));

    let lenient = TwoPhaseAssessor::new(
        SingleBehaviorTest::new(fast_config()).unwrap(),
        BetaTrust::default(),
    )
    .with_short_history_policy(ShortHistoryPolicy::Trust);
    assert!(lenient.assess(&h).unwrap().is_accepted());

    let strict = TwoPhaseAssessor::new(
        SingleBehaviorTest::new(fast_config()).unwrap(),
        BetaTrust::default(),
    )
    .with_short_history_policy(ShortHistoryPolicy::Reject);
    assert!(strict.assess(&h).unwrap().is_rejected());
}

#[test]
fn cheat_and_run_is_outside_reputation_scope_as_the_paper_states() {
    use honest_players::sim::attacker::CheatAndRunAttacker;
    use honest_players::sim::{Simulation, SimulationConfig};

    // §3.1: reputation mechanisms cannot prevent a first bad transaction
    // from a short-lived identity; the short-history policy is the lever.
    let outcome = Simulation::new(
        CheatAndRunAttacker::new(5),
        AverageTrust::default(),
        SimulationConfig {
            rounds: 6,
            ..Default::default()
        },
    )
    .run();
    let strict = TwoPhaseAssessor::new(
        SingleBehaviorTest::new(fast_config()).unwrap(),
        AverageTrust::default(),
    )
    .with_short_history_policy(ShortHistoryPolicy::Reject);
    // The behavior test is inconclusive at n = 6; strict policy rejects.
    let assessment = strict.assess(&outcome.history).unwrap();
    assert!(assessment.is_rejected());
    if let Assessment::Rejected { report } = assessment {
        assert!(matches!(report, TestReport::Single(_)));
    }
}

#[test]
fn shared_calibrator_across_all_three_schemes() {
    use honest_players::testing::CollusionResilientTest;
    let config = fast_config();
    let cal = shared_calibrator(&config).unwrap();
    let single = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal)).unwrap();
    let multi = MultiBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal)).unwrap();
    let collusion = CollusionResilientTest::with_calibrator(config, Arc::clone(&cal)).unwrap();

    let h = workload::honest_history(600, 0.9, 77);
    let _ = single.evaluate(&h).unwrap();
    let after_single = cal.cache_len();
    let _ = multi.evaluate(&h).unwrap();
    let _ = collusion.evaluate(&h).unwrap();
    assert!(
        cal.cache_len() > after_single,
        "multi/collusion add suffix-sized entries to the shared cache"
    );
}
