//! The [`Strategy`] trait and the combinators this workspace uses.

use rand::{RngExt, StdRng};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Uniform over [lo, hi); the closed upper bound is approximated,
        // which is indistinguishable for the float properties tested here.
        lo + (hi - lo) * rng.random::<f64>()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
