//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::{RngExt, StdRng};
use std::ops::Range;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            rng.random_range(self.size.clone())
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
