//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::{RngExt, StdRng};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}

arbitrary_ints!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
