//! Offline stand-in for the `proptest` crate.
//!
//! Same shape as proptest — `proptest! { #[test] fn f(x in strategy) {..} }`,
//! `Strategy`/`prop_map`, `any::<T>()`, range and collection strategies —
//! but the runner is a plain deterministic loop: each test executes
//! `ProptestConfig::cases` iterations with inputs drawn from a per-test
//! seeded RNG. No shrinking; a failing case panics with the normal
//! `assert!` message, and determinism makes it reproducible.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::case_rng(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!` — this stand-in has no shrinking phase to report through).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = bool> {
        (0u32..100).prop_map(|n| n % 2 == 0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..9, b in 0.25f64..=0.75, n in 1usize..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in crate::collection::vec((any::<bool>(), 0u64..12), 0..40)
        ) {
            prop_assert!(items.len() < 40);
            for (_, c) in &items {
                prop_assert!(*c < 12);
            }
        }

        #[test]
        fn prop_map_applies(even in parity(), fixed in Just(7u8)) {
            let _ = even;
            prop_assert_eq!(fixed, 7);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        let s = 0u64..1_000_000;
        assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
    }
}
