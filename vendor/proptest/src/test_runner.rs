//! Runner configuration and per-case RNG derivation.

use rand::{SeedableRng, StdRng};

/// How many cases each property test executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one (test, case) pair: FNV-1a over the test name
/// mixed with the case index, fed to the seeded generator. Reruns of a
/// failing test therefore replay the identical inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}
