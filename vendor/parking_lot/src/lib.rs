//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a writer panicked) is recovered rather
//! than propagated, matching parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::fmt;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` (non-poisoning) interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (statically exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock with the `parking_lot` (non-poisoning) interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (statically exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
