//! Offline stand-in for the `serde` crate.
//!
//! This workspace only *derives* `Serialize`/`Deserialize` on data types
//! (persistence is hand-rolled CSV); nothing actually drives a serde
//! serializer. The traits here are therefore empty markers, and the
//! `derive` feature re-exports no-op derive macros so `#[derive(Serialize,
//! Deserialize)]` compiles unchanged.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
