//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the criterion API the benches are written against —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_with_setup`,
//! `BenchmarkId`, `Throughput` — but replaces the statistical machinery
//! with a plain loop: warm up briefly, time `sample_size` iterations, and
//! print min / mean / p50 / p99 per benchmark. Good enough to compare
//! implementations and spot complexity blow-ups; not a precision harness.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a [`Criterion`] instance or group.
#[derive(Debug, Clone, Copy)]
struct RunConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    config: RunConfig,
}

impl Criterion {
    /// Benchmark iterations per measurement.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Soft cap on time spent measuring one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Soft cap on time spent warming up one benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.config, &mut f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: RunConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides iterations per measurement for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement-time cap for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Records the per-iteration workload (printed alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (Throughput::Elements(n) | Throughput::Bytes(n)) = t;
        println!("# {}: throughput unit = {n}", self.name);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.name), self.config, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.config, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration workload, used to contextualize timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let start = Instant::now();
        while self.samples.len() < self.target_samples
            && start.elapsed() < self.measurement_time
        {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` value per sample; only the
    /// routine is measured.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let start = Instant::now();
        while self.samples.len() < self.target_samples
            && start.elapsed() < self.measurement_time
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F>(name: &str, config: RunConfig, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(config.sample_size),
        target_samples: config.sample_size,
        measurement_time: config.measurement_time,
        warm_up_time: config.warm_up_time,
    };
    f(&mut bencher);
    let mut ns: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    ns.sort_unstable();
    if ns.is_empty() {
        println!("{name:<48} (no samples — bencher closure never called iter)");
        return;
    }
    let total: u128 = ns.iter().sum();
    let mean = total / ns.len() as u128;
    let p = |q: f64| ns[((ns.len() - 1) as f64 * q).round() as usize];
    println!(
        "{name:<48} {:>4} samples  min {}  mean {}  p50 {}  p99 {}",
        ns.len(),
        fmt_ns(ns[0]),
        fmt_ns(mean),
        fmt_ns(p(0.50)),
        fmt_ns(p(0.99)),
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.throughput(Throughput::Elements(3));
        g.bench_with_input(BenchmarkId::new("sum", 3), &[1u64, 2, 3][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        tiny(&mut c);
    }

    #[test]
    fn iter_with_setup_measures_routine_only() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.len())
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
