//! MPMC channels: bounded and unbounded, blocking send/recv.
//!
//! Implemented with a `Mutex<VecDeque>` plus two condvars (not-empty /
//! not-full) and sender/receiver reference counts for disconnect
//! detection. Throughput is far below real crossbeam, but semantics —
//! FIFO per channel, blocking backpressure, disconnect errors — match
//! what the service layer needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Sender::try_send`]; carries the unsent value back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity (receivers still connected).
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Sender::send_timeout`]; carries the unsent value
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "send timed out on a full channel"),
            SendTimeoutError::Disconnected(_) => {
                write!(f, "sending on a disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The channel stayed empty for the whole timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "recv timed out on an empty channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel; `send` blocks when `cap` items queue.
///
/// `cap = 0` (a rendezvous channel in real crossbeam) is approximated by
/// capacity 1, which is sufficient for backpressure semantics here.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value in [`SendError`] if every receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.items.len() >= cap => {
                    state = match self.inner.not_full.wait(state) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Sends `value` without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver has dropped; both
    /// return the value.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.capacity {
            if state.items.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.items.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Sends `value`, blocking at most `timeout` while the channel is full.
    ///
    /// # Errors
    ///
    /// [`SendTimeoutError::Timeout`] if the channel stayed full,
    /// [`SendTimeoutError::Disconnected`] if every receiver has dropped;
    /// both return the value.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            match self.inner.capacity {
                Some(cap) if state.items.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                    state = match self.inner.not_full.wait_timeout(state, deadline - now) {
                        Ok((g, _)) => g,
                        Err(p) => p.into_inner().0,
                    };
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.inner.not_empty.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receives the next item, blocking at most `timeout` while the
    /// channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if the channel stayed empty,
    /// [`RecvTimeoutError::Disconnected`] once the channel is empty and
    /// every sender has dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            state = match self.inner.not_empty.wait_timeout(state, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(v) = state.items.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        let wake = state.senders == 0;
        drop(state);
        if wake {
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        let wake = state.receivers == 0;
        // Match crossbeam: the last receiver discards queued messages, so
        // values owned by them (e.g. nested reply senders) are dropped
        // rather than retained for as long as any sender stays alive.
        let discarded: VecDeque<T> = if wake {
            std::mem::take(&mut state.items)
        } else {
            VecDeque::new()
        };
        drop(state);
        drop(discarded); // run the messages' destructors outside the lock
        if wake {
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_roundtrip() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        producer.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = bounded(4);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..300u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn try_send_states() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
        assert_eq!(TrySendError::Full(7u8).into_inner(), 7);
    }

    #[test]
    fn send_timeout_times_out_and_succeeds() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, SendTimeoutError::Timeout(2));
        let consumer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            let v = rx.recv().unwrap();
            (v, rx) // keep the receiver alive until joined
        });
        tx.send_timeout(3, Duration::from_secs(5)).unwrap();
        assert_eq!(consumer.join().unwrap().0, 1);
    }

    #[test]
    fn recv_timeout_times_out_and_succeeds() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn last_receiver_discards_queued_messages() {
        // A reply sender queued inside an undelivered message must drop
        // with the channel, or the replier's counterpart recv() would
        // block for as long as any command sender stays alive.
        let (tx, rx) = unbounded::<Sender<u8>>();
        let (reply_tx, reply_rx) = unbounded::<u8>();
        tx.send(reply_tx).unwrap();
        drop(rx);
        assert_eq!(reply_rx.recv(), Err(RecvError));
        assert!(tx.send(unbounded::<u8>().0).is_err());
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
