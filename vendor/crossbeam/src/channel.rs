//! MPMC channels: bounded and unbounded, blocking send/recv.
//!
//! Implemented with a `Mutex<VecDeque>` plus two condvars (not-empty /
//! not-full) and sender/receiver reference counts for disconnect
//! detection. Throughput is far below real crossbeam, but semantics —
//! FIFO per channel, blocking backpressure, disconnect errors — match
//! what the service layer needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel; `send` blocks when `cap` items queue.
///
/// `cap = 0` (a rendezvous channel in real crossbeam) is approximated by
/// capacity 1, which is sufficient for backpressure semantics here.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value in [`SendError`] if every receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.items.len() >= cap => {
                    state = match self.inner.not_full.wait(state) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.inner.not_empty.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(v) = state.items.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        let wake = state.senders == 0;
        drop(state);
        if wake {
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        let wake = state.receivers == 0;
        drop(state);
        if wake {
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_roundtrip() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        producer.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn mpmc_all_items_delivered_once() {
        let (tx, rx) = bounded(4);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..300u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
