//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads (closure receives the
//!   scope, handles are joinable), implemented over [`std::thread::scope`];
//! * [`channel`] — multi-producer multi-consumer bounded/unbounded
//!   channels over a mutex + condvars.

#![forbid(unsafe_code)]

pub mod channel;

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (`Err` if the
    /// thread panicked).
    pub fn join(self) -> std::thread::Result<T> {
        self.0.join()
    }
}

/// A scope for spawning borrowing threads; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (crossbeam
    /// convention), so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        }))
    }
}

/// Creates a scope in which threads can borrow from the enclosing stack
/// frame. All spawned threads are joined before `scope` returns.
///
/// Returns `Ok(result)` like crossbeam; a panic in an unjoined child
/// propagates as a panic (std semantics) rather than an `Err`, which is
/// strictly stricter and fine for this workspace's `.expect(..)` callers.
///
/// # Errors
///
/// Never returns `Err` (kept for crossbeam API compatibility).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let scope = Scope { inner: s };
        f(&scope)
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn() {
        let r = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
