//! No-op `Serialize` / `Deserialize` derives for the offline serde stand-in.
//!
//! For a non-generic `struct`/`enum` the derive emits an empty marker-trait
//! impl, so `T: Serialize` bounds hold; for generic types (none in this
//! workspace) it expands to nothing rather than guess at bounds.

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a `struct`/`enum`/`union` item defines, if it is
/// non-generic (no `<` follows the name).
fn non_generic_type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    _ => return None,
                };
                let generic = matches!(
                    tokens.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                return if generic { None } else { Some(name) };
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}
