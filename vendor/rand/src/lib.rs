//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides exactly the surface the workspace uses: the
//! [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`, `random_bool`), [`SeedableRng`] and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! It is API-compatible with the call sites in this repository, not with
//! upstream `rand` in general.

#![forbid(unsafe_code)]

/// Named generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

pub use std_rng::StdRng;

/// A source of random 64-bit words.
///
/// Everything else ([`RngExt`]) is derived from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from their "natural" domain: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardSample {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument accepted by [`RngExt::random_range`]. The element
/// type is a trait parameter (mirroring upstream rand) so literal ranges
/// like `0..50` infer their type from the call site's expected output.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start
                    + (((rng.next_u64() as u128) % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let width = (end as u128).wrapping_sub(start as u128) + 1;
                start + (((rng.next_u64() as u128) % width) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Convenience draws, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value uniformly from the type's natural domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_stay_inside() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = r.random_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
