//! Flat-file persistence for feedback logs.
//!
//! A deliberately boring, dependency-free line format (CSV with a header)
//! so operators can inspect, diff and splice feedback logs with standard
//! tools — and so simulation runs can be checkpointed and replayed.
//!
//! ```text
//! time,server,client,rating
//! 0,1,17,+
//! 1,1,23,-
//! ```

use crate::store::FeedbackStore;
use hp_core::{ClientId, Feedback, Rating, ServerId};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading or writing feedback logs.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number (including the header line).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

const HEADER: &str = "time,server,client,rating";

/// Writes every feedback record in `store` to `writer` in CSV form,
/// grouped by server (ascending), transaction order within each server.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_feedback<S: FeedbackStore, W: Write>(
    store: &S,
    writer: W,
) -> Result<usize, PersistError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{HEADER}")?;
    let mut written = 0;
    for server in store.servers() {
        for fb in store.history_of(server).iter() {
            writeln!(
                w,
                "{},{},{},{}",
                fb.time,
                fb.server.value(),
                fb.client.value(),
                fb.rating
            )?;
            written += 1;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Convenience wrapper writing to a file path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_feedback<S: FeedbackStore>(store: &S, path: &Path) -> Result<usize, PersistError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_feedback(store, std::fs::File::create(path)?)
}

/// Reads a feedback log and appends every record into `store`.
///
/// # Errors
///
/// * [`PersistError::Parse`] on a malformed header or record (nothing
///   read after the first bad line is applied — records before it are).
/// * [`PersistError::Io`] on I/O failure.
pub fn read_feedback<S: FeedbackStore, R: Read>(
    store: &mut S,
    reader: R,
) -> Result<usize, PersistError> {
    let mut lines = BufReader::new(reader).lines();
    match lines.next() {
        Some(header) => {
            let header = header?;
            if header.trim() != HEADER {
                return Err(PersistError::Parse {
                    line: 1,
                    reason: format!("expected header {HEADER:?}, got {header:?}"),
                });
            }
        }
        None => return Ok(0),
    }
    let mut read = 0;
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        store.append(parse_line(&line, line_no)?);
        read += 1;
    }
    Ok(read)
}

/// Convenience wrapper reading from a file path.
///
/// # Errors
///
/// As [`read_feedback`].
pub fn load_feedback<S: FeedbackStore>(store: &mut S, path: &Path) -> Result<usize, PersistError> {
    read_feedback(store, std::fs::File::open(path)?)
}

fn parse_line(line: &str, line_no: usize) -> Result<Feedback, PersistError> {
    let err = |reason: String| PersistError::Parse {
        line: line_no,
        reason,
    };
    let mut parts = line.trim().split(',');
    let mut field = |name: &str| {
        parts
            .next()
            .ok_or_else(|| err(format!("missing field {name}")))
    };
    let time: u64 = field("time")?
        .parse()
        .map_err(|e| err(format!("bad time: {e}")))?;
    let server: u64 = field("server")?
        .parse()
        .map_err(|e| err(format!("bad server: {e}")))?;
    let client: u64 = field("client")?
        .parse()
        .map_err(|e| err(format!("bad client: {e}")))?;
    let rating = match field("rating")? {
        "+" => Rating::Positive,
        "-" => Rating::Negative,
        other => return Err(err(format!("bad rating {other:?} (expected + or -)"))),
    };
    if let Some(extra) = parts.next() {
        return Err(err(format!("unexpected trailing field {extra:?}")));
    }
    Ok(Feedback::new(
        time,
        ServerId::new(server),
        ClientId::new(client),
        rating,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn sample_store() -> MemoryStore {
        let mut store = MemoryStore::new();
        for s in 0..3u64 {
            for t in 0..20u64 {
                store.append(Feedback::new(
                    t,
                    ServerId::new(s),
                    ClientId::new(t % 4),
                    Rating::from_good((t + s) % 5 != 0),
                ));
            }
        }
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_store();
        let mut buf = Vec::new();
        let written = write_feedback(&original, &mut buf).unwrap();
        assert_eq!(written, 60);

        let mut restored = MemoryStore::new();
        let read = read_feedback(&mut restored, buf.as_slice()).unwrap();
        assert_eq!(read, 60);
        for s in 0..3u64 {
            assert_eq!(
                original.history_of(ServerId::new(s)).feedbacks(),
                restored.history_of(ServerId::new(s)).feedbacks(),
                "server {s}"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hp-store-persist-test");
        let path = dir.join("log.csv");
        let original = sample_store();
        save_feedback(&original, &path).unwrap();
        let mut restored = MemoryStore::new();
        let read = load_feedback(&mut restored, &path).unwrap();
        assert_eq!(read, 60);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_reads_zero() {
        let mut store = MemoryStore::new();
        assert_eq!(read_feedback(&mut store, &b""[..]).unwrap(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn header_only_reads_zero() {
        let mut store = MemoryStore::new();
        let n = read_feedback(&mut store, &b"time,server,client,rating\n"[..]).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn rejects_bad_header() {
        let mut store = MemoryStore::new();
        let err = read_feedback(&mut store, &b"nope\n1,2,3,+\n"[..]).unwrap_err();
        assert!(matches!(err, PersistError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_malformed_records_with_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("time,server,client,rating\n1,2,3\n", "missing field"),
            ("time,server,client,rating\nx,2,3,+\n", "bad time"),
            ("time,server,client,rating\n1,2,3,?\n", "bad rating"),
            ("time,server,client,rating\n1,2,3,+,9\n", "trailing"),
        ];
        for (input, needle) in cases {
            let mut store = MemoryStore::new();
            let err = read_feedback(&mut store, input.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 2"), "{msg}");
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut store = MemoryStore::new();
        let n = read_feedback(
            &mut store,
            &b"time,server,client,rating\n1,2,3,+\n\n2,2,3,-\n"[..],
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(store.history_of(ServerId::new(2)).len(), 2);
    }

    #[test]
    fn works_through_sharded_store() {
        use crate::{ShardedStore, ShardedStoreConfig};
        let original = sample_store();
        let mut buf = Vec::new();
        write_feedback(&original, &mut buf).unwrap();
        let mut sharded = ShardedStore::new(ShardedStoreConfig::default());
        read_feedback(&mut sharded, buf.as_slice()).unwrap();
        assert_eq!(
            sharded.history_of(ServerId::new(1)).feedbacks(),
            original.history_of(ServerId::new(1)).feedbacks()
        );
    }
}
