//! # hp-store — feedback storage substrates
//!
//! The paper (§2) assumes "all the transaction feedbacks are available for
//! trust assessment (e.g., through a central server as in online auction
//! communities, or through special data organization schemes in P2P
//! systems)" and notes the scheme "can be equally applied to systems where
//! only portions of feedbacks can be retrieved". This crate provides all
//! three regimes behind one [`FeedbackStore`] trait:
//!
//! * [`MemoryStore`] — the central-server model (eBay-style),
//! * [`ShardedStore`] — a consistent-hash ring of storage nodes standing in
//!   for P-Grid-style P2P feedback organization, with replication and
//!   node-failure simulation,
//! * [`PartialStore`] — a wrapper that deterministically samples a fraction
//!   of feedback, modeling partial retrieval.
//!
//! [`MemoryStore`] and [`ShardedStore`] are thin retention/availability
//! policies over one shared columnar [`HistoryEngine`]: feedback is held
//! bit-packed per server and materialized to rows only at the query edge.
//!
//! Feedback logs can be checkpointed to and replayed from a flat CSV
//! format via [`persist`].
//!
//! ## Example
//!
//! ```
//! use hp_core::{ClientId, Feedback, Rating, ServerId};
//! use hp_store::{FeedbackStore, MemoryStore};
//!
//! let mut store = MemoryStore::new();
//! let server = ServerId::new(1);
//! store.append(Feedback::new(0, server, ClientId::new(2), Rating::Positive));
//! store.append(Feedback::new(1, server, ClientId::new(3), Rating::Negative));
//!
//! let history = store.history_of(server);
//! assert_eq!(history.len(), 2);
//! assert_eq!(history.p_hat(), Some(0.5));
//! ```

// `deny` instead of `forbid`: the cold-segment spill module scopes an
// `allow(unsafe_code)` around its raw mmap syscalls (the workspace is
// dependency-free by policy, so no libc/memmap crate). Everything else
// in the crate still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod memory;
mod partial;
pub mod persist;
mod ring;
pub mod segment;
mod sharded;
mod store;

pub use engine::HistoryEngine;
pub use memory::MemoryStore;
pub use partial::PartialStore;
pub use persist::{load_feedback, read_feedback, save_feedback, write_feedback, PersistError};
pub use ring::{HashRing, NodeId};
pub use segment::{ColdStore, SegmentError, SegmentRef};
pub use sharded::{ShardedStore, ShardedStoreConfig};
pub use store::FeedbackStore;
