//! A consistent-hash ring for sharded feedback placement.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a storage node on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A consistent-hash ring with virtual nodes.
///
/// Keys (server ids) hash to a point on a `u64` ring and are owned by the
/// next virtual node clockwise; each physical node projects `vnodes`
/// points. Consistent hashing keeps key movement minimal when nodes join
/// or leave — the property that makes it a reasonable stand-in for P-Grid-
/// style self-organizing P2P storage.
///
/// # Examples
///
/// ```
/// use hp_store::{HashRing, NodeId};
///
/// let mut ring = HashRing::new(16);
/// ring.add_node(NodeId::new(1));
/// ring.add_node(NodeId::new(2));
/// let owners = ring.nodes_for(42, 2);
/// assert_eq!(owners.len(), 2);
/// assert_ne!(owners[0], owners[1]);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// ring position → physical node
    points: BTreeMap<u64, NodeId>,
    vnodes: u32,
}

impl HashRing {
    /// Creates an empty ring with `vnodes` virtual nodes per physical
    /// node (minimum 1).
    pub fn new(vnodes: u32) -> Self {
        HashRing {
            points: BTreeMap::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// Number of physical nodes on the ring.
    pub fn node_count(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.points.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds a physical node (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        for v in 0..self.vnodes {
            let point = mix(node.value() ^ 0xD1B5_4A32_D192_ED03, v as u64);
            self.points.insert(point, node);
        }
    }

    /// Removes a physical node (idempotent).
    pub fn remove_node(&mut self, node: NodeId) {
        self.points.retain(|_, n| *n != node);
    }

    /// The first `replicas` *distinct* physical nodes clockwise from the
    /// key's ring position. Returns fewer when the ring has fewer nodes.
    pub fn nodes_for(&self, key: u64, replicas: usize) -> Vec<NodeId> {
        if self.points.is_empty() || replicas == 0 {
            return Vec::new();
        }
        let start = mix(key, 0x9E37_79B9_7F4A_7C15);
        let mut owners = Vec::with_capacity(replicas);
        for (_, node) in self.points.range(start..).chain(self.points.range(..start)) {
            if !owners.contains(node) {
                owners.push(*node);
                if owners.len() == replicas {
                    break;
                }
            }
        }
        owners
    }
}

/// SplitMix64-style mixing, the same family used by `hp_stats::derive_seed`.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring_with(nodes: u64, vnodes: u32) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for n in 0..nodes {
            ring.add_node(NodeId::new(n));
        }
        ring
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert!(ring.nodes_for(1, 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = ring_with(1, 8);
        for key in 0..100 {
            assert_eq!(ring.nodes_for(key, 2), vec![NodeId::new(0)]);
        }
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let ring = ring_with(5, 16);
        for key in 0..200 {
            let owners = ring.nodes_for(key, 3);
            assert_eq!(owners.len(), 3, "key {key}");
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct for key {key}");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = ring_with(4, 16);
        let b = ring_with(4, 16);
        for key in 0..50 {
            assert_eq!(a.nodes_for(key, 2), b.nodes_for(key, 2));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = ring_with(8, 64);
        let keys = 8000u64;
        let mut load: HashMap<NodeId, u64> = HashMap::new();
        for key in 0..keys {
            let owner = ring.nodes_for(key, 1)[0];
            *load.entry(owner).or_default() += 1;
        }
        let expected = keys as f64 / 8.0;
        for (node, count) in &load {
            let ratio = *count as f64 / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{node} carries {count} keys (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn node_removal_moves_only_its_keys() {
        let mut ring = ring_with(6, 32);
        let before: Vec<NodeId> = (0..1000).map(|k| ring.nodes_for(k, 1)[0]).collect();
        ring.remove_node(NodeId::new(3));
        let after: Vec<NodeId> = (0..1000).map(|k| ring.nodes_for(k, 1)[0]).collect();
        let mut moved_from_other = 0;
        for (k, (b, a)) in before.iter().zip(&after).enumerate() {
            if b != a {
                assert_eq!(
                    *b,
                    NodeId::new(3),
                    "key {k} moved although its owner survived"
                );
            }
            if *b != NodeId::new(3) && b != a {
                moved_from_other += 1;
            }
        }
        assert_eq!(moved_from_other, 0);
        assert_eq!(ring.node_count(), 5);
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut ring = ring_with(3, 8);
        let before = ring.nodes_for(7, 2);
        ring.add_node(NodeId::new(1));
        assert_eq!(ring.nodes_for(7, 2), before);
        assert_eq!(ring.node_count(), 3);
    }

    #[test]
    fn replicas_capped_by_node_count() {
        let ring = ring_with(2, 8);
        assert_eq!(ring.nodes_for(9, 5).len(), 2);
        assert!(ring.nodes_for(9, 0).is_empty());
    }
}
