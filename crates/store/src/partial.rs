//! Partial-visibility wrapper — "systems where only portions of feedbacks
//! can be retrieved" (§2).

use crate::store::FeedbackStore;
use hp_core::{Feedback, ServerId, TransactionHistory};

/// Wraps another store and exposes only a deterministic sample of its
/// feedback.
///
/// Sampling is per-record and keyed on `(server, time, client)`, so the
/// *same* subset is visible on every query — modeling a fixed limited
/// vantage point (e.g. the subset of feedback reachable through one's
/// overlay neighbors) rather than per-query noise.
///
/// Because honest-player screening is distribution-based, an unbiased
/// sample of an honest history is still an honest history; the
/// integration tests verify that behavior tests keep working through this
/// wrapper.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId};
/// use hp_store::{FeedbackStore, MemoryStore, PartialStore};
///
/// let mut store = PartialStore::new(MemoryStore::new(), 0.5, 7);
/// for t in 0..1000u64 {
///     store.append(Feedback::new(t, ServerId::new(1), ClientId::new(t), Rating::Positive));
/// }
/// let visible = store.history_of(ServerId::new(1)).len();
/// assert!(visible > 400 && visible < 600, "≈50% visible, got {visible}");
/// ```
#[derive(Debug, Clone)]
pub struct PartialStore<S> {
    inner: S,
    visibility: f64,
    seed: u64,
}

impl<S: FeedbackStore> PartialStore<S> {
    /// Wraps `inner`, exposing roughly `visibility ∈ [0, 1]` of its
    /// records (values are clamped into `[0, 1]`).
    pub fn new(inner: S, visibility: f64, seed: u64) -> Self {
        PartialStore {
            inner,
            visibility: visibility.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The fraction of records this wrapper exposes.
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn visible(&self, fb: &Feedback) -> bool {
        // Map the record key to a uniform point in [0,1) and compare.
        let h = hp_stats::derive_seed(
            self.seed,
            hp_stats::derive_seed(fb.server.value(), fb.time ^ (fb.client.value() << 32)),
        );
        (h as f64 / u64::MAX as f64) < self.visibility
    }
}

impl<S: FeedbackStore> FeedbackStore for PartialStore<S> {
    fn append(&mut self, feedback: Feedback) {
        self.inner.append(feedback);
    }

    fn history_of(&self, server: ServerId) -> TransactionHistory {
        self.inner
            .history_of(server)
            .iter()
            .filter(|fb| self.visible(fb))
            .copied()
            .collect()
    }

    fn len(&self) -> usize {
        // Visible record count across all servers.
        self.servers()
            .into_iter()
            .map(|s| self.history_of(s).len())
            .sum()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;
    use hp_core::{ClientId, Rating};

    fn filled(visibility: f64) -> PartialStore<MemoryStore> {
        let mut store = PartialStore::new(MemoryStore::new(), visibility, 99);
        for t in 0..2000u64 {
            store.append(Feedback::new(
                t,
                ServerId::new(1),
                ClientId::new(t % 11),
                Rating::from_good(t % 10 != 0),
            ));
        }
        store
    }

    #[test]
    fn full_visibility_is_transparent() {
        let store = filled(1.0);
        assert_eq!(store.history_of(ServerId::new(1)).len(), 2000);
    }

    #[test]
    fn zero_visibility_hides_everything() {
        let store = filled(0.0);
        assert!(store.history_of(ServerId::new(1)).is_empty());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn sampling_rate_is_respected() {
        for vis in [0.25, 0.5, 0.75] {
            let store = filled(vis);
            let n = store.history_of(ServerId::new(1)).len() as f64 / 2000.0;
            assert!(
                (n - vis).abs() < 0.06,
                "visibility {vis}: observed rate {n}"
            );
        }
    }

    #[test]
    fn sample_is_stable_across_queries() {
        let store = filled(0.5);
        let a = store.history_of(ServerId::new(1));
        let b = store.history_of(ServerId::new(1));
        assert_eq!(a.feedbacks(), b.feedbacks());
    }

    #[test]
    fn sample_is_unbiased_wrt_outcome() {
        // Good rate of the visible subset should match the underlying 0.9.
        let store = filled(0.5);
        let h = store.history_of(ServerId::new(1));
        let rate = h.p_hat().unwrap();
        assert!((rate - 0.9).abs() < 0.04, "sampled good-rate {rate}");
    }

    #[test]
    fn visibility_is_clamped() {
        let store = PartialStore::new(MemoryStore::new(), 1.7, 0);
        assert_eq!(store.visibility(), 1.0);
        let store = PartialStore::new(MemoryStore::new(), -0.2, 0);
        assert_eq!(store.visibility(), 0.0);
    }

    #[test]
    fn into_inner_recovers_all_data() {
        let store = filled(0.1);
        let inner = store.into_inner();
        assert_eq!(inner.history_of(ServerId::new(1)).len(), 2000);
    }
}
