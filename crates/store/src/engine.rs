//! The columnar history engine every store retention policy shares.
//!
//! [`MemoryStore`](crate::MemoryStore) and
//! [`ShardedStore`](crate::ShardedStore) differ only in *which* servers are
//! retrievable at a given moment (all of them, vs. those with a live
//! replica). The feedback bits themselves live here, once, in
//! [`ColumnarHistory`] form: a bit-packed outcome column plus a
//! dictionary-encoded issuer column, ~8 bytes per transaction instead of
//! the 48 of a materialized `Vec<Feedback>`.

use hp_core::{ColumnarHistory, Feedback, ServerId, TransactionHistory};
use std::collections::BTreeMap;

/// One columnar history per server, shared by every retention policy.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId};
/// use hp_store::HistoryEngine;
///
/// let mut engine = HistoryEngine::new();
/// let server = ServerId::new(3);
/// engine.ingest(Feedback::new(0, server, ClientId::new(1), Rating::Positive));
/// engine.ingest(Feedback::new(1, server, ClientId::new(2), Rating::Negative));
/// assert_eq!(engine.len(), 2);
/// assert_eq!(engine.materialize(server).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryEngine {
    histories: BTreeMap<ServerId, ColumnarHistory>,
    total: usize,
}

impl HistoryEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        HistoryEngine::default()
    }

    /// Appends one feedback to its server's columns.
    pub fn ingest(&mut self, feedback: Feedback) {
        self.histories
            .entry(feedback.server)
            .or_insert_with(ColumnarHistory::with_times)
            .push(feedback);
        self.total += 1;
    }

    /// Borrowed (zero-copy) access to a server's columns, if any.
    pub fn history(&self, server: ServerId) -> Option<&ColumnarHistory> {
        self.histories.get(&server)
    }

    /// Reconstructs a server's history as the row-oriented
    /// [`TransactionHistory`], exactly as ingested. An unknown server
    /// yields an empty history.
    pub fn materialize(&self, server: ServerId) -> TransactionHistory {
        self.histories
            .get(&server)
            .map(ColumnarHistory::materialize)
            .unwrap_or_default()
    }

    /// Total feedback records ingested.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the engine holds no feedback.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// All servers with at least one record, ascending.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.histories.keys().copied()
    }

    /// Approximate resident bytes across all servers' columns.
    pub fn resident_bytes(&self) -> usize {
        self.histories
            .values()
            .map(ColumnarHistory::resident_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{ClientId, HistoryView, Rating};

    fn fb(t: u64, server: u64, good: bool) -> Feedback {
        Feedback::new(
            t,
            ServerId::new(server),
            ClientId::new(t % 5),
            Rating::from_good(good),
        )
    }

    #[test]
    fn ingest_routes_by_server() {
        let mut engine = HistoryEngine::new();
        engine.ingest(fb(0, 1, true));
        engine.ingest(fb(1, 2, false));
        engine.ingest(fb(2, 1, true));
        assert_eq!(engine.len(), 3);
        assert_eq!(engine.materialize(ServerId::new(1)).len(), 2);
        assert_eq!(engine.materialize(ServerId::new(2)).len(), 1);
        assert!(engine.materialize(ServerId::new(3)).is_empty());
    }

    #[test]
    fn materialize_round_trips_exact_records() {
        let mut engine = HistoryEngine::new();
        let records: Vec<Feedback> = (0..130).map(|t| fb(t, 7, t % 3 != 0)).collect();
        for &f in &records {
            engine.ingest(f);
        }
        let history = engine.materialize(ServerId::new(7));
        assert_eq!(history.feedbacks(), &records[..]);
    }

    #[test]
    fn borrowed_history_answers_queries_without_materializing() {
        let mut engine = HistoryEngine::new();
        for t in 0..200 {
            engine.ingest(fb(t, 4, t % 4 != 0));
        }
        let cols = engine.history(ServerId::new(4)).unwrap();
        assert_eq!(cols.len(), 200);
        assert_eq!(cols.good_count(), 150);
        assert_eq!(cols.count_range(0, 8), 6);
    }

    #[test]
    fn resident_bytes_stays_columnar_sized() {
        let mut engine = HistoryEngine::new();
        for t in 0..10_000 {
            engine.ingest(fb(t, 1, t % 9 != 0));
        }
        // ~16.3 B/txn: 1 outcome bit + 4 B issuer code + 8 B time, plus
        // prefix/dictionary overhead — under half of the 48 B row form.
        let per_txn = engine.resident_bytes() as f64 / 10_000.0;
        assert!(per_txn < 20.0, "{per_txn} bytes/txn");
    }
}
