//! The storage abstraction behavior tests consume.

use hp_core::{Feedback, ServerId, TransactionHistory};

/// A store of feedback records, queryable per server.
///
/// Behavior tests and trust functions consume a [`TransactionHistory`];
/// any store that can materialize one per server can back the two-phase
/// pipeline, whether it is a central database, a DHT, or a lossy gossip
/// cache.
pub trait FeedbackStore {
    /// Records one feedback.
    fn append(&mut self, feedback: Feedback);

    /// The (possibly partial) transaction history of `server`, in
    /// transaction order. An unknown server yields an empty history.
    fn history_of(&self, server: ServerId) -> TransactionHistory;

    /// The most recent `limit` feedbacks of `server`, in transaction order.
    ///
    /// The default materializes the full history; implementations with a
    /// cheaper recent-window path should override this.
    fn recent_of(&self, server: ServerId, limit: usize) -> TransactionHistory {
        let full = self.history_of(server);
        let skip = full.len().saturating_sub(limit);
        full.iter().skip(skip).copied().collect()
    }

    /// Total number of feedback records currently retrievable.
    fn len(&self) -> usize;

    /// Whether the store holds no retrievable feedback.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All servers with at least one retrievable feedback.
    fn servers(&self) -> Vec<ServerId>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;
    use hp_core::{ClientId, Rating};

    #[test]
    fn default_recent_of_takes_suffix() {
        let mut store = MemoryStore::new();
        let server = ServerId::new(1);
        for t in 0..10u64 {
            store.append(Feedback::new(
                t,
                server,
                ClientId::new(0),
                Rating::from_good(t >= 5),
            ));
        }
        let recent = store.recent_of(server, 4);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.good_count(), 4, "last 4 are all good");
        assert_eq!(recent.get(0).unwrap().time, 6);
    }

    #[test]
    fn recent_of_with_larger_limit_returns_all() {
        let mut store = MemoryStore::new();
        let server = ServerId::new(1);
        store.append(Feedback::new(0, server, ClientId::new(0), Rating::Positive));
        let recent = store.recent_of(server, 100);
        assert_eq!(recent.len(), 1);
    }

    #[test]
    fn is_empty_default() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
    }
}
