//! Cold-history segment files: durable spill targets for evicted
//! server histories, read back through `mmap`.
//!
//! The online service keeps hot servers' tiered histories resident and
//! evicts cold ones to disk. A *segment* is a write-once file holding a
//! batch of evicted payloads, built with the same crash discipline as
//! the snapshot store: write to a temp file, `fsync`, rename into place,
//! `fsync` the directory. Once sealed a segment is immutable — faulting
//! a payload back never writes — so reads can go through a shared
//! read-only memory map and cost one page fault per cold page instead of
//! a buffered-read copy.
//!
//! ```text
//! segment file (seg-<seq:016x>):
//!   header:  magic "HPSG" | version u32 | shard u32 | seq u64
//!   record:  server u64 | len u32 | crc32(payload) u32 | payload
//!   ...more records...
//! ```
//!
//! Every fault revalidates the record frame *and* the payload CRC, so a
//! torn or corrupted segment surfaces as a typed
//! [`SegmentError::Corrupt`] — never as silently wrong history bytes.
//! Reclamation is coarse: once a checkpoint no longer references any
//! record in segments below a sequence floor, [`ColdStore::remove_below`]
//! deletes those files whole.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"HPSG";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 20;
const RECORD_HEADER_LEN: usize = 16;

/// A durable pointer to one spilled payload inside a sealed segment.
///
/// Self-validating on fault: the record's in-file frame must match the
/// reference (length and CRC) and the payload must match its CRC.
/// Serialized into snapshots so a restart can re-attach spilled servers
/// without rereading their history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Sequence number of the segment file holding the record.
    pub seq: u64,
    /// Byte offset of the record header inside the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 (IEEE) of the payload.
    pub crc: u32,
}

/// Errors from the cold-segment store.
#[derive(Debug)]
pub enum SegmentError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A segment file or record failed validation — torn write, bit rot,
    /// or a reference into a reclaimed segment. The payload is never
    /// returned in this case.
    Corrupt {
        /// Sequence number of the offending segment.
        seq: u64,
        /// Byte offset of the offending record (0 for header damage).
        offset: u64,
        /// What failed, in human terms.
        reason: String,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment i/o error: {e}"),
            SegmentError::Corrupt { seq, offset, reason } => {
                write!(f, "segment {seq:016x} corrupt at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            SegmentError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        SegmentError::Io(e)
    }
}

/// The cold tier: a directory of sealed segment files plus the open
/// memory maps over them.
///
/// One instance per shard; the shard id is stamped into every segment
/// header and revalidated on open, so segments can never be wired to the
/// wrong shard after an operator move.
#[derive(Debug)]
pub struct ColdStore {
    dir: PathBuf,
    shard: u32,
    next_seq: u64,
    /// Live segments: sequence → (file size, lazily opened map).
    segments: BTreeMap<u64, SegmentSlot>,
}

#[derive(Debug)]
struct SegmentSlot {
    size: u64,
    map: Option<Arc<mapped::Mapped>>,
}

impl ColdStore {
    /// Opens (creating if needed) the segment directory for `shard`,
    /// scanning existing segments to restore the sequence counter and
    /// byte accounting.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a file with a malformed name is ignored
    /// (it is not a sealed segment).
    pub fn open(dir: &Path, shard: u32) -> io::Result<ColdStore> {
        fs::create_dir_all(dir)?;
        let mut segments = BTreeMap::new();
        let mut next_seq = 0;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(seq) = parse_segment_name(&name.to_string_lossy()) else {
                continue;
            };
            let size = entry.metadata()?.len();
            next_seq = next_seq.max(seq + 1);
            segments.insert(seq, SegmentSlot { size, map: None });
        }
        Ok(ColdStore {
            dir: dir.to_path_buf(),
            shard,
            next_seq,
            segments,
        })
    }

    /// The directory holding this store's segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes of sealed segment files on disk.
    pub fn spilled_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.size).sum()
    }

    /// Number of live (not yet reclaimed) segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Lowest live segment sequence, if any segment exists.
    pub fn min_seq(&self) -> Option<u64> {
        self.segments.keys().next().copied()
    }

    /// Seals one new segment holding `records` (a `(server, payload)`
    /// batch), with the snapshot store's crash discipline: temp file →
    /// `fsync` → rename → directory `fsync`. Returns one [`SegmentRef`]
    /// per record, in input order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error no sealed segment appears (at
    /// worst a leftover temp file, removed on the next open).
    pub fn write_segment(&mut self, records: &[(u64, Vec<u8>)]) -> io::Result<Vec<SegmentRef>> {
        let seq = self.next_seq;
        let mut body = Vec::with_capacity(
            HEADER_LEN + records.iter().map(|(_, p)| RECORD_HEADER_LEN + p.len()).sum::<usize>(),
        );
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&VERSION.to_le_bytes());
        body.extend_from_slice(&self.shard.to_le_bytes());
        body.extend_from_slice(&seq.to_le_bytes());
        let mut refs = Vec::with_capacity(records.len());
        for (server, payload) in records {
            refs.push(SegmentRef {
                seq,
                offset: body.len() as u64,
                len: payload.len() as u32,
                crc: crc32(payload),
            });
            body.extend_from_slice(&server.to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(&crc32(payload).to_le_bytes());
            body.extend_from_slice(payload);
        }

        let tmp = self.dir.join(format!(".tmp-seg-{seq:016x}"));
        let path = self.dir.join(segment_name(seq));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        fsync_dir(&self.dir)?;
        self.next_seq = seq + 1;
        self.segments.insert(
            seq,
            SegmentSlot {
                size: body.len() as u64,
                map: None,
            },
        );
        Ok(refs)
    }

    /// Faults one spilled payload back from its segment, revalidating
    /// the frame against `server` and the reference, and the payload
    /// against its CRC.
    ///
    /// # Errors
    ///
    /// [`SegmentError::Corrupt`] on any mismatch (torn write, bit rot,
    /// reclaimed or unknown segment); [`SegmentError::Io`] on map
    /// failure.
    pub fn fault(&mut self, server: u64, r: &SegmentRef) -> Result<Vec<u8>, SegmentError> {
        let corrupt = |offset: u64, reason: String| SegmentError::Corrupt {
            seq: r.seq,
            offset,
            reason,
        };
        let map = self.map_segment(r.seq)?;
        let bytes = map.as_slice();
        let start = usize::try_from(r.offset)
            .ok()
            .filter(|&s| s >= HEADER_LEN && s + RECORD_HEADER_LEN <= bytes.len())
            .ok_or_else(|| corrupt(r.offset, format!("record offset out of range ({} file bytes)", bytes.len())))?;
        let frame_server = u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"));
        let frame_len = u32::from_le_bytes(bytes[start + 8..start + 12].try_into().expect("4 bytes"));
        let frame_crc = u32::from_le_bytes(bytes[start + 12..start + 16].try_into().expect("4 bytes"));
        if frame_server != server {
            return Err(corrupt(r.offset, format!("record belongs to server {frame_server}, expected {server}")));
        }
        if frame_len != r.len || frame_crc != r.crc {
            return Err(corrupt(
                r.offset,
                format!(
                    "frame (len {frame_len}, crc {frame_crc:08x}) does not match reference (len {}, crc {:08x})",
                    r.len, r.crc
                ),
            ));
        }
        let data_start = start + RECORD_HEADER_LEN;
        let data_end = data_start + r.len as usize;
        if data_end > bytes.len() {
            return Err(corrupt(r.offset, format!("payload truncated: needs {data_end} bytes, file has {}", bytes.len())));
        }
        let payload = &bytes[data_start..data_end];
        let actual = crc32(payload);
        if actual != r.crc {
            return Err(corrupt(r.offset, format!("payload crc {actual:08x}, expected {:08x}", r.crc)));
        }
        Ok(payload.to_vec())
    }

    /// Deletes every segment with sequence `< floor` (and drops its
    /// map). Returns the bytes reclaimed. Called at checkpoint once no
    /// retained snapshot references those segments.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (accounting is only updated for files
    /// actually removed).
    pub fn remove_below(&mut self, floor: u64) -> io::Result<u64> {
        let doomed: Vec<u64> = self.segments.range(..floor).map(|(&s, _)| s).collect();
        let mut freed = 0;
        for seq in doomed {
            fs::remove_file(self.dir.join(segment_name(seq)))?;
            if let Some(slot) = self.segments.remove(&seq) {
                freed += slot.size;
            }
        }
        if freed > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(freed)
    }

    fn map_segment(&mut self, seq: u64) -> Result<Arc<mapped::Mapped>, SegmentError> {
        let slot = self.segments.get_mut(&seq).ok_or(SegmentError::Corrupt {
            seq,
            offset: 0,
            reason: "segment unknown or already reclaimed".into(),
        })?;
        if let Some(map) = &slot.map {
            return Ok(Arc::clone(map));
        }
        let path = self.dir.join(segment_name(seq));
        let map = Arc::new(mapped::Mapped::open(&path)?);
        let bytes = map.as_slice();
        if bytes.len() < HEADER_LEN {
            return Err(SegmentError::Corrupt {
                seq,
                offset: 0,
                reason: format!("file too short for a header ({} bytes)", bytes.len()),
            });
        }
        if &bytes[0..4] != MAGIC {
            return Err(SegmentError::Corrupt { seq, offset: 0, reason: "bad magic".into() });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let shard = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let header_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        if version != VERSION {
            return Err(SegmentError::Corrupt { seq, offset: 0, reason: format!("unknown version {version}") });
        }
        if shard != self.shard {
            return Err(SegmentError::Corrupt {
                seq,
                offset: 0,
                reason: format!("segment belongs to shard {shard}, store is shard {}", self.shard),
            });
        }
        if header_seq != seq {
            return Err(SegmentError::Corrupt {
                seq,
                offset: 0,
                reason: format!("header sequence {header_seq:016x} does not match file name"),
            });
        }
        slot.map = Some(Arc::clone(&map));
        Ok(map)
    }
}

fn segment_name(seq: u64) -> String {
    format!("seg-{seq:016x}")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync is what makes the rename itself durable on linux;
    // harmless elsewhere.
    File::open(dir)?.sync_all()
}

/// CRC-32 (IEEE 802.3), bitwise-reflected — the same polynomial and
/// framing convention as the journal and snapshot stores
/// (`crc32(b"123456789") == 0xCBF4_3926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Read-only file mapping. On linux this is a real `mmap` through raw
/// syscalls (the workspace is dependency-free by policy), so faulting a
/// cold record costs page faults, not a full-file read; elsewhere it
/// degrades to reading the file into memory.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[allow(unsafe_code)]
mod mapped {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// An immutable `mmap` of a whole file.
    #[derive(Debug)]
    pub struct Mapped {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only and never mutated after construction.
    unsafe impl Send for Mapped {}
    unsafe impl Sync for Mapped {}

    impl Mapped {
        pub fn open(path: &Path) -> io::Result<Mapped> {
            let file = File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                // mmap(len=0) is EINVAL; an empty file maps to an empty slice.
                return Ok(Mapped { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
            }
            let ret = unsafe { sys_mmap(len, file.as_raw_fd()) };
            if (-4095..0).contains(&ret) {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(Mapped { ptr: ret as *const u8, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // Safety: the mapping is PROT_READ, MAP_PRIVATE, spans
            // exactly `len` bytes, and lives until Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            if self.len > 0 {
                // Safety: `ptr/len` came from a successful mmap and are
                // unmapped exactly once.
                unsafe { sys_munmap(self.ptr, self.len) };
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // __NR_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_munmap(ptr: *const u8, len: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") 11isize => ret, // __NR_munmap
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") 0usize => ret, // addr -> return value
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as isize,
                in("x5") 0usize,
                in("x8") 222usize, // __NR_mmap
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_munmap(ptr: *const u8, len: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") ptr => ret,
                in("x1") len,
                in("x8") 215usize, // __NR_munmap
                options(nostack)
            );
        }
        ret
    }
}

/// Portable fallback: reads the whole file (no mmap syscall available
/// without a libc dependency off linux).
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod mapped {
    use std::io;
    use std::path::Path;

    /// A file's contents, read eagerly.
    #[derive(Debug)]
    pub struct Mapped {
        bytes: Vec<u8>,
    }

    impl Mapped {
        pub fn open(path: &Path) -> io::Result<Mapped> {
            Ok(Mapped { bytes: std::fs::read(path)? })
        }

        pub fn as_slice(&self) -> &[u8] {
            &self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hp-store-segment-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn spill_and_fault_round_trip() {
        let dir = scratch("roundtrip");
        let mut store = ColdStore::open(&dir, 3).unwrap();
        let records = vec![(7u64, payload(1, 100)), (9u64, payload(2, 4097))];
        let refs = store.write_segment(&records).unwrap();
        assert_eq!(refs.len(), 2);
        assert_eq!(store.segment_count(), 1);
        assert!(store.spilled_bytes() > 4197);
        assert_eq!(store.fault(7, &refs[0]).unwrap(), records[0].1);
        assert_eq!(store.fault(9, &refs[1]).unwrap(), records[1].1);
        // Wrong server is a typed corruption, not a payload.
        assert!(matches!(store.fault(8, &refs[0]), Err(SegmentError::Corrupt { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_restores_sequence_and_accounting() {
        let dir = scratch("reopen");
        let (refs, bytes) = {
            let mut store = ColdStore::open(&dir, 0).unwrap();
            let refs = store.write_segment(&[(1, payload(3, 50))]).unwrap();
            store.write_segment(&[(2, payload(4, 60))]).unwrap();
            (refs, store.spilled_bytes())
        };
        let mut store = ColdStore::open(&dir, 0).unwrap();
        assert_eq!(store.segment_count(), 2);
        assert_eq!(store.spilled_bytes(), bytes);
        assert_eq!(store.min_seq(), Some(0));
        assert_eq!(store.fault(1, &refs[0]).unwrap(), payload(3, 50));
        // The next segment continues the sequence rather than colliding.
        let new_refs = store.write_segment(&[(3, payload(5, 10))]).unwrap();
        assert_eq!(new_refs[0].seq, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_writes_surface_as_typed_corruption() {
        let dir = scratch("torn");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        let refs = store.write_segment(&[(5, payload(6, 300))]).unwrap();
        let path = dir.join("seg-0000000000000000");

        // Truncated mid-payload (a torn write the rename discipline
        // prevents, but defense in depth for disk-level damage).
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 20]).unwrap();
        let mut reopened = ColdStore::open(&dir, 0).unwrap();
        assert!(matches!(reopened.fault(5, &refs[0]), Err(SegmentError::Corrupt { .. })));

        // A flipped payload byte fails the CRC.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        let mut reopened = ColdStore::open(&dir, 0).unwrap();
        let err = reopened.fault(5, &refs[0]).unwrap_err();
        assert!(err.to_string().contains("crc"), "{err}");

        // A damaged header refuses the whole segment.
        let mut bad_magic = full.clone();
        bad_magic[0] ^= 0xff;
        fs::write(&path, &bad_magic).unwrap();
        let mut reopened = ColdStore::open(&dir, 0).unwrap();
        assert!(matches!(reopened.fault(5, &refs[0]), Err(SegmentError::Corrupt { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_shard_is_rejected() {
        let dir = scratch("shard");
        let refs = {
            let mut store = ColdStore::open(&dir, 1).unwrap();
            store.write_segment(&[(5, payload(9, 30))]).unwrap()
        };
        let mut other = ColdStore::open(&dir, 2).unwrap();
        let err = other.fault(5, &refs[0]).unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_below_reclaims_files_and_bytes() {
        let dir = scratch("gc");
        let mut store = ColdStore::open(&dir, 0).unwrap();
        let r0 = store.write_segment(&[(1, payload(1, 100))]).unwrap();
        let r1 = store.write_segment(&[(2, payload(2, 100))]).unwrap();
        let r2 = store.write_segment(&[(3, payload(3, 100))]).unwrap();
        let before = store.spilled_bytes();
        let freed = store.remove_below(2).unwrap();
        assert!(freed > 0);
        assert_eq!(store.spilled_bytes(), before - freed);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.min_seq(), Some(2));
        // Reclaimed refs fault as typed errors; the survivor still reads.
        assert!(matches!(store.fault(1, &r0[0]), Err(SegmentError::Corrupt { .. })));
        assert!(matches!(store.fault(2, &r1[0]), Err(SegmentError::Corrupt { .. })));
        assert_eq!(store.fault(3, &r2[0]).unwrap(), payload(3, 100));
        assert!(!dir.join("seg-0000000000000000").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_handles_empty_files() {
        let dir = scratch("empty");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty-file");
        fs::write(&path, b"").unwrap();
        let map = mapped::Mapped::open(&path).unwrap();
        assert!(map.as_slice().is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
