//! The central-server store.

use crate::store::FeedbackStore;
use hp_core::{Feedback, ServerId, TransactionHistory};
use std::collections::BTreeMap;

/// An in-memory central feedback store — the "central server as in online
/// auction communities" regime of §2.
///
/// Histories are kept materialized per server, so
/// [`MemoryStore::history_of`] is a clone of pre-indexed data rather than a
/// scan.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId};
/// use hp_store::{FeedbackStore, MemoryStore};
///
/// let mut store = MemoryStore::new();
/// store.append(Feedback::new(0, ServerId::new(9), ClientId::new(1), Rating::Positive));
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.servers(), vec![ServerId::new(9)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    histories: BTreeMap<ServerId, TransactionHistory>,
    total: usize,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Direct (clone-free) access to a server's history, if any.
    pub fn history_ref(&self, server: ServerId) -> Option<&TransactionHistory> {
        self.histories.get(&server)
    }
}

impl FeedbackStore for MemoryStore {
    fn append(&mut self, feedback: Feedback) {
        self.histories
            .entry(feedback.server)
            .or_default()
            .push(feedback);
        self.total += 1;
    }

    fn history_of(&self, server: ServerId) -> TransactionHistory {
        self.histories.get(&server).cloned().unwrap_or_default()
    }

    fn len(&self) -> usize {
        self.total
    }

    fn servers(&self) -> Vec<ServerId> {
        self.histories.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{ClientId, Rating};

    fn fb(t: u64, server: u64, good: bool) -> Feedback {
        Feedback::new(
            t,
            ServerId::new(server),
            ClientId::new(t % 7),
            Rating::from_good(good),
        )
    }

    #[test]
    fn append_routes_by_server() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 1, true));
        store.append(fb(1, 2, false));
        store.append(fb(2, 1, true));
        assert_eq!(store.len(), 3);
        assert_eq!(store.history_of(ServerId::new(1)).len(), 2);
        assert_eq!(store.history_of(ServerId::new(2)).len(), 1);
        assert_eq!(store.history_of(ServerId::new(3)).len(), 0);
    }

    #[test]
    fn histories_preserve_order() {
        let mut store = MemoryStore::new();
        for t in 0..20 {
            store.append(fb(t, 1, t % 3 == 0));
        }
        let h = store.history_of(ServerId::new(1));
        let times: Vec<u64> = h.iter().map(|f| f.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn servers_listing_is_sorted_and_deduped() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 5, true));
        store.append(fb(1, 2, true));
        store.append(fb(2, 5, true));
        assert_eq!(
            store.servers(),
            vec![ServerId::new(2), ServerId::new(5)]
        );
    }

    #[test]
    fn history_ref_avoids_clone() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 1, true));
        assert!(store.history_ref(ServerId::new(1)).is_some());
        assert!(store.history_ref(ServerId::new(9)).is_none());
    }
}
