//! The central-server store.

use crate::engine::HistoryEngine;
use crate::store::FeedbackStore;
use hp_core::{ColumnarHistory, Feedback, ServerId, TransactionHistory};

/// An in-memory central feedback store — the "central server as in online
/// auction communities" regime of §2.
///
/// A thin retention policy (retain everything) over the columnar
/// [`HistoryEngine`]: feedback is held bit-packed per server, and
/// [`MemoryStore::history_of`] materializes rows on demand.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId};
/// use hp_store::{FeedbackStore, MemoryStore};
///
/// let mut store = MemoryStore::new();
/// store.append(Feedback::new(0, ServerId::new(9), ClientId::new(1), Rating::Positive));
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.servers(), vec![ServerId::new(9)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    engine: HistoryEngine,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Direct (zero-copy) access to a server's columnar history, if any.
    ///
    /// The returned [`ColumnarHistory`] implements
    /// [`HistoryView`](hp_core::HistoryView), so assessments can run on it
    /// without materializing rows.
    pub fn history_ref(&self, server: ServerId) -> Option<&ColumnarHistory> {
        self.engine.history(server)
    }

    /// Approximate resident bytes of all stored columns.
    pub fn resident_bytes(&self) -> usize {
        self.engine.resident_bytes()
    }
}

impl FeedbackStore for MemoryStore {
    fn append(&mut self, feedback: Feedback) {
        self.engine.ingest(feedback);
    }

    fn history_of(&self, server: ServerId) -> TransactionHistory {
        self.engine.materialize(server)
    }

    fn len(&self) -> usize {
        self.engine.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.engine.servers().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{ClientId, HistoryView, Rating};

    fn fb(t: u64, server: u64, good: bool) -> Feedback {
        Feedback::new(
            t,
            ServerId::new(server),
            ClientId::new(t % 7),
            Rating::from_good(good),
        )
    }

    #[test]
    fn append_routes_by_server() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 1, true));
        store.append(fb(1, 2, false));
        store.append(fb(2, 1, true));
        assert_eq!(store.len(), 3);
        assert_eq!(store.history_of(ServerId::new(1)).len(), 2);
        assert_eq!(store.history_of(ServerId::new(2)).len(), 1);
        assert_eq!(store.history_of(ServerId::new(3)).len(), 0);
    }

    #[test]
    fn histories_preserve_order() {
        let mut store = MemoryStore::new();
        for t in 0..20 {
            store.append(fb(t, 1, t % 3 == 0));
        }
        let h = store.history_of(ServerId::new(1));
        let times: Vec<u64> = h.iter().map(|f| f.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn servers_listing_is_sorted_and_deduped() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 5, true));
        store.append(fb(1, 2, true));
        store.append(fb(2, 5, true));
        assert_eq!(
            store.servers(),
            vec![ServerId::new(2), ServerId::new(5)]
        );
    }

    #[test]
    fn history_ref_avoids_clone() {
        let mut store = MemoryStore::new();
        store.append(fb(0, 1, true));
        assert!(store.history_ref(ServerId::new(1)).is_some());
        assert!(store.history_ref(ServerId::new(9)).is_none());
    }

    #[test]
    fn history_ref_assesses_without_materializing() {
        let mut store = MemoryStore::new();
        for t in 0..64 {
            store.append(fb(t, 1, t % 8 != 0));
        }
        let cols = store.history_ref(ServerId::new(1)).unwrap();
        assert_eq!(cols.good_count(), 56);
        assert_eq!(cols.p_hat(), Some(0.875));
    }

    #[test]
    fn columnar_retention_undercuts_row_storage() {
        let mut store = MemoryStore::new();
        for t in 0..10_000 {
            store.append(fb(t, 1, t % 6 != 0));
        }
        let materialized = store.history_of(ServerId::new(1));
        assert!(
            store.resident_bytes() * 2 < materialized.resident_bytes(),
            "columnar {} vs rows {}",
            store.resident_bytes(),
            materialized.resident_bytes()
        );
    }
}
