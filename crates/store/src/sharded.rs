//! A sharded, replicated feedback store — the P2P regime.

use crate::engine::HistoryEngine;
use crate::ring::{HashRing, NodeId};
use crate::store::FeedbackStore;
use hp_core::{Feedback, ServerId, TransactionHistory};
use std::collections::BTreeSet;

/// Configuration for [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStoreConfig {
    /// Number of storage nodes.
    pub nodes: u32,
    /// Replication factor: each server's feedback stream is stored on this
    /// many distinct nodes.
    pub replication: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: u32,
}

impl Default for ShardedStoreConfig {
    fn default() -> Self {
        ShardedStoreConfig {
            nodes: 8,
            replication: 2,
            vnodes: 32,
        }
    }
}

/// A feedback store sharded over a consistent-hash ring of nodes — a
/// simulation stand-in for "special data organization schemes in P2P
/// systems" (§2, citing P-Grid).
///
/// Each server's feedback stream is placed on `replication` distinct nodes.
/// Nodes can *fail* ([`ShardedStore::fail_node`]); queries then fall back
/// to surviving replicas, and only lose data once every replica of a
/// stream is down — letting integration tests exercise the paper's partial-
/// retrieval claim end to end.
///
/// Since every replica of a stream receives the identical write sequence,
/// the feedback bits are held once, in the shared columnar
/// [`HistoryEngine`]; the ring and failure set decide only whether a
/// stream is currently *retrievable*. This turns sharding into a pure
/// retention/availability policy over one storage representation.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId};
/// use hp_store::{FeedbackStore, ShardedStore, ShardedStoreConfig};
///
/// let mut store = ShardedStore::new(ShardedStoreConfig::default());
/// let server = ServerId::new(1);
/// for t in 0..10u64 {
///     store.append(Feedback::new(t, server, ClientId::new(t), Rating::Positive));
/// }
/// assert_eq!(store.history_of(server).len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedStore {
    ring: HashRing,
    replication: usize,
    engine: HistoryEngine,
    failed: BTreeSet<NodeId>,
}

impl ShardedStore {
    /// Creates a sharded store with `config.nodes` live nodes.
    pub fn new(config: ShardedStoreConfig) -> Self {
        let mut ring = HashRing::new(config.vnodes);
        for n in 0..config.nodes as u64 {
            ring.add_node(NodeId::new(n));
        }
        ShardedStore {
            ring,
            replication: config.replication.max(1),
            engine: HistoryEngine::new(),
            failed: BTreeSet::new(),
        }
    }

    /// Marks a node as failed: its replicas become unreachable until
    /// [`ShardedStore::heal_node`].
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed.insert(node);
    }

    /// Brings a failed node back (its data was retained, as for a
    /// transient partition).
    pub fn heal_node(&mut self, node: NodeId) {
        self.failed.remove(&node);
    }

    /// Currently failed nodes.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed.iter().copied()
    }

    /// The replica nodes responsible for `server` (alive or not).
    pub fn replicas_for(&self, server: ServerId) -> Vec<NodeId> {
        self.ring.nodes_for(server.value(), self.replication)
    }

    fn live_replica(&self, server: ServerId) -> Option<NodeId> {
        self.replicas_for(server)
            .into_iter()
            .find(|n| !self.failed.contains(n))
    }
}

impl FeedbackStore for ShardedStore {
    fn append(&mut self, feedback: Feedback) {
        // Every responsible replica receives the write, including currently
        // failed ones (a real system would hand off; retaining the write
        // models the post-recovery state and keeps replicas consistent) —
        // which is exactly why one canonical copy in the engine suffices.
        self.engine.ingest(feedback);
    }

    fn history_of(&self, server: ServerId) -> TransactionHistory {
        match self.live_replica(server) {
            Some(_) => self.engine.materialize(server),
            None => TransactionHistory::new(),
        }
    }

    fn len(&self) -> usize {
        self.engine.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.engine
            .servers()
            .filter(|&s| self.live_replica(s).is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{ClientId, Rating};

    fn store() -> ShardedStore {
        ShardedStore::new(ShardedStoreConfig {
            nodes: 6,
            replication: 2,
            vnodes: 32,
        })
    }

    fn fill(store: &mut ShardedStore, servers: u64, per_server: u64) {
        for s in 0..servers {
            for t in 0..per_server {
                store.append(Feedback::new(
                    t,
                    ServerId::new(s),
                    ClientId::new(t % 5),
                    Rating::from_good(t % 7 != 0),
                ));
            }
        }
    }

    #[test]
    fn histories_survive_single_node_failure() {
        let mut st = store();
        fill(&mut st, 20, 30);
        // Fail each node in turn; every server must stay fully readable
        // because replication = 2 and only one node is down.
        for n in 0..6u64 {
            st.fail_node(NodeId::new(n));
            for s in 0..20u64 {
                assert_eq!(
                    st.history_of(ServerId::new(s)).len(),
                    30,
                    "server {s} with node {n} down"
                );
            }
            st.heal_node(NodeId::new(n));
        }
    }

    #[test]
    fn history_lost_only_when_all_replicas_down() {
        let mut st = store();
        fill(&mut st, 10, 10);
        let server = ServerId::new(3);
        let replicas = st.replicas_for(server);
        assert_eq!(replicas.len(), 2);
        st.fail_node(replicas[0]);
        assert_eq!(st.history_of(server).len(), 10, "one replica survives");
        st.fail_node(replicas[1]);
        assert!(st.history_of(server).is_empty(), "all replicas down");
        st.heal_node(replicas[0]);
        assert_eq!(st.history_of(server).len(), 10, "recovery restores data");
    }

    #[test]
    fn order_preserved_across_sharding() {
        let mut st = store();
        fill(&mut st, 1, 50);
        let h = st.history_of(ServerId::new(0));
        let times: Vec<u64> = h.iter().map(|f| f.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(h.len(), 50);
    }

    #[test]
    fn servers_enumeration_respects_failures() {
        let mut st = store();
        fill(&mut st, 8, 5);
        assert_eq!(st.servers().len(), 8);
        // Fail every node: nothing is listed.
        for n in 0..6u64 {
            st.fail_node(NodeId::new(n));
        }
        assert!(st.servers().is_empty());
    }

    #[test]
    fn len_counts_logical_records_not_replicas() {
        let mut st = store();
        fill(&mut st, 2, 10);
        assert_eq!(st.len(), 20);
    }

    #[test]
    fn behaves_like_memory_store_for_queries() {
        use crate::MemoryStore;
        let mut sharded = store();
        let mut central = MemoryStore::new();
        for s in 0..5u64 {
            for t in 0..40u64 {
                let fb = Feedback::new(
                    t,
                    ServerId::new(s),
                    ClientId::new(t % 3),
                    Rating::from_good((t + s) % 5 != 0),
                );
                sharded.append(fb);
                central.append(fb);
            }
        }
        for s in 0..5u64 {
            let a = sharded.history_of(ServerId::new(s));
            let b = central.history_of(ServerId::new(s));
            assert_eq!(a.feedbacks(), b.feedbacks(), "server {s}");
        }
    }
}
