//! Detection-rate measurement (Fig. 7).
//!
//! "Suppose an attacker tries to keep his reputation value no less than
//! 0.9 while launching periodic attacks according to a certain size of
//! attack windows N = 10, 20, …, 80 … That is, attackers will launch
//! N × 0.1 attacks within every N transactions" (§5.3).

use crate::workload::periodic_history;
use hp_core::testing::{BehaviorTest, TestOutcome};
use hp_core::CoreError;

/// Configuration for [`detection_rate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Length of each simulated attacker history.
    pub history_len: usize,
    /// Fraction of attacks per window (paper: 0.1, keeping reputation at
    /// 0.9).
    pub attack_rate: f64,
    /// Number of independent attacker histories to evaluate.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses a derived sub-seed.
    pub seed: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            history_len: 1000,
            attack_rate: 0.1,
            trials: 100,
            seed: 0,
        }
    }
}

/// Fraction of windowed-periodic attackers (attack window `window`) that
/// `test` flags as suspicious.
///
/// # Errors
///
/// Propagates behavior-test failures.
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTestConfig, SingleBehaviorTest};
/// use hp_sim::detection::{detection_rate, DetectionConfig};
///
/// let config = BehaviorTestConfig::builder().calibration_trials(300).build()?;
/// let test = SingleBehaviorTest::new(config)?;
/// let cfg = DetectionConfig { trials: 20, ..Default::default() };
/// // Attack window 10: one attack every 10 transactions, metronome-like.
/// let rate = detection_rate(10, &test, &cfg)?;
/// assert!(rate > 0.9);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
pub fn detection_rate(
    window: usize,
    test: &dyn BehaviorTest,
    config: &DetectionConfig,
) -> Result<f64, CoreError> {
    let mut detected = 0usize;
    for trial in 0..config.trials {
        let seed = hp_stats::derive_seed(config.seed, (window as u64) << 32 | trial as u64);
        let history = periodic_history(config.history_len, window, config.attack_rate, seed);
        if test.evaluate(&history)?.outcome() == TestOutcome::Suspicious {
            detected += 1;
        }
    }
    Ok(detected as f64 / config.trials.max(1) as f64)
}

/// False-positive rate: fraction of *honest* players (trustworthiness
/// `p`) that `test` flags as suspicious. The complement of the specificity
/// that Fig. 7's detection rate should be read against.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn false_positive_rate(
    p: f64,
    test: &dyn BehaviorTest,
    config: &DetectionConfig,
) -> Result<f64, CoreError> {
    let mut flagged = 0usize;
    for trial in 0..config.trials {
        let seed = hp_stats::derive_seed(config.seed ^ 0xF9, trial as u64);
        let history = crate::workload::honest_history(config.history_len, p, seed);
        if test.evaluate(&history)?.outcome() == TestOutcome::Suspicious {
            flagged += 1;
        }
    }
    Ok(flagged as f64 / config.trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::testing::{BehaviorTestConfig, MultiBehaviorTest, SingleBehaviorTest};

    fn fast_test() -> SingleBehaviorTest {
        SingleBehaviorTest::new(
            BehaviorTestConfig::builder()
                .calibration_trials(400)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn cfg(trials: usize) -> DetectionConfig {
        DetectionConfig {
            trials,
            ..Default::default()
        }
    }

    #[test]
    fn tight_attack_windows_are_detected() {
        let test = fast_test();
        let rate = detection_rate(10, &test, &cfg(30)).unwrap();
        assert!(rate > 0.9, "window-10 detection rate {rate}");
    }

    #[test]
    fn detection_rate_decreases_with_window_size() {
        let test = fast_test();
        let tight = detection_rate(10, &test, &cfg(40)).unwrap();
        let loose = detection_rate(80, &test, &cfg(40)).unwrap();
        assert!(
            tight > loose,
            "detection must fall with window size: {tight} vs {loose}"
        );
    }

    #[test]
    fn honest_false_positive_rate_is_bounded() {
        let test = fast_test();
        let fpr = false_positive_rate(0.9, &test, &cfg(60)).unwrap();
        assert!(fpr < 0.15, "single-test FPR {fpr}");
    }

    #[test]
    fn multi_test_detects_at_least_as_often_on_tight_windows() {
        let config = BehaviorTestConfig::builder()
            .calibration_trials(400)
            .build()
            .unwrap();
        let single = fast_test();
        let multi = MultiBehaviorTest::new(config).unwrap();
        let c = cfg(25);
        let s = detection_rate(10, &single, &c).unwrap();
        let m = detection_rate(10, &multi, &c).unwrap();
        // Both should be near-perfect on the metronome attacker.
        assert!(s > 0.9 && m > 0.9, "single {s}, multi {m}");
    }

    #[test]
    fn deterministic_given_seed() {
        let test = fast_test();
        let a = detection_rate(20, &test, &cfg(15)).unwrap();
        let b = detection_rate(20, &test, &cfg(15)).unwrap();
        assert_eq!(a, b);
    }
}
