//! Synthetic history generators shared by tests, benches and experiments.

use crate::attacker::WindowedPeriodicAttacker;
use crate::behavior::{BehaviorContext, ServerBehavior};
use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory, TrustValue};
use rand::RngExt;

const SERVER: ServerId = ServerId::new(0);

/// An honest player's history: `n` i.i.d. Bernoulli(`p`) transactions.
///
/// # Examples
///
/// ```
/// let h = hp_sim::workload::honest_history(500, 0.9, 1);
/// assert_eq!(h.len(), 500);
/// assert!((h.p_hat().unwrap() - 0.9).abs() < 0.05);
/// ```
pub fn honest_history(n: usize, p: f64, seed: u64) -> TransactionHistory {
    let mut rng = hp_stats::seeded_rng(seed);
    let mut h = TransactionHistory::with_capacity(n);
    for t in 0..n as u64 {
        let client = ClientId::new(rng.random_range(0..50));
        let good = rng.random::<f64>() < p;
        h.push(Feedback::new(t, SERVER, client, Rating::from_good(good)));
    }
    h
}

/// A hibernating attacker's history: `prep` honest transactions at
/// trustworthiness `p`, followed by `attacks` consecutive bad ones.
pub fn hibernating_history(prep: usize, p: f64, attacks: usize, seed: u64) -> TransactionHistory {
    let mut h = honest_history(prep, p, seed);
    let mut rng = hp_stats::seeded_rng(hp_stats::derive_seed(seed, 1));
    for i in 0..attacks as u64 {
        let client = ClientId::new(rng.random_range(0..50));
        h.push(Feedback::new(
            prep as u64 + i,
            SERVER,
            client,
            Rating::Negative,
        ));
    }
    h
}

/// A windowed periodic attacker's history (the Fig. 7 workload):
/// `⌊window·rate⌋` attacks at random positions inside every `window`
/// transactions, over a total of `n`.
pub fn periodic_history(n: usize, window: usize, rate: f64, seed: u64) -> TransactionHistory {
    let mut attacker = WindowedPeriodicAttacker::new(window, rate);
    let mut rng = hp_stats::seeded_rng(seed);
    let mut h = TransactionHistory::with_capacity(n);
    for t in 0..n as u64 {
        let good = {
            let ctx = BehaviorContext {
                history: &h,
                trust: TrustValue::NEUTRAL,
                time: t,
            };
            attacker.next_outcome(&ctx, &mut rng)
        };
        let client = ClientId::new(rng.random_range(0..50));
        h.push(Feedback::new(t, SERVER, client, Rating::from_good(good)));
    }
    h
}

/// A colluder-inflated history: `prep` positive feedbacks from a clique of
/// `colluders` clients, then `tail` transactions with fresh clients at
/// honest quality `p_tail`.
pub fn colluding_history(
    prep: usize,
    colluders: u64,
    tail: usize,
    p_tail: f64,
    seed: u64,
) -> TransactionHistory {
    let mut rng = hp_stats::seeded_rng(seed);
    let mut h = TransactionHistory::with_capacity(prep + tail);
    for t in 0..prep as u64 {
        let client = ClientId::new(rng.random_range(0..colluders.max(1)));
        h.push(Feedback::new(t, SERVER, client, Rating::Positive));
    }
    for i in 0..tail as u64 {
        let t = prep as u64 + i;
        let client = ClientId::new(1_000 + rng.random_range(0..1_000u64));
        let good = rng.random::<f64>() < p_tail;
        h.push(Feedback::new(t, SERVER, client, Rating::from_good(good)));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_history_statistics() {
        let h = honest_history(5000, 0.95, 3);
        assert_eq!(h.len(), 5000);
        assert!((h.p_hat().unwrap() - 0.95).abs() < 0.01);
        assert!(h.distinct_clients() > 30);
    }

    #[test]
    fn honest_history_deterministic() {
        assert_eq!(
            honest_history(100, 0.9, 9).feedbacks(),
            honest_history(100, 0.9, 9).feedbacks()
        );
    }

    #[test]
    fn hibernating_history_shape() {
        let h = hibernating_history(200, 0.95, 20, 1);
        assert_eq!(h.len(), 220);
        let tail: Vec<bool> = h.outcomes().skip(200).collect();
        assert!(tail.iter().all(|&g| !g), "attack phase is all bad");
    }

    #[test]
    fn periodic_history_attack_rate() {
        let h = periodic_history(1000, 50, 0.1, 2);
        assert_eq!(h.len(), 1000);
        let bad = h.bad_count();
        assert_eq!(bad, 100, "exactly window·rate bad per window");
    }

    #[test]
    fn colluding_history_client_structure() {
        let h = colluding_history(300, 5, 100, 0.8, 4);
        assert_eq!(h.len(), 400);
        let freqs = h.client_frequencies();
        // The top 5 issuers are the colluders, each with ~60 feedbacks.
        let top5: usize = freqs.iter().take(5).map(|&(_, c)| c).sum();
        assert_eq!(top5, 300);
        assert!(freqs.len() > 50, "long tail of occasional clients");
    }
}
