//! The cheat-and-run attacker (§3.1).

use crate::behavior::{BehaviorContext, ServerBehavior};
use rand::rngs::StdRng;

/// Cheat-and-run: "an attacker conducts one bad transaction after several
/// honest transactions, or even upon joining the system, then leaves the
/// system and never returns."
///
/// The paper explicitly scopes this attack *out* of what reputation
/// mechanisms can prevent — admission costs (certified IDs, membership
/// fees) are the countermeasure. It is modeled here so integration tests
/// can document that boundary: behavior testing over so short a history is
/// inconclusive by design, and the short-history policy of
/// [`hp_core::TwoPhaseAssessor`] is what handles it.
///
/// # Examples
///
/// ```
/// use hp_sim::attacker::CheatAndRunAttacker;
/// use hp_sim::{BehaviorContext, ServerBehavior};
/// use hp_core::{TransactionHistory, TrustValue};
///
/// let mut attacker = CheatAndRunAttacker::new(3);
/// let history = TransactionHistory::new();
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::NEUTRAL, time: 0 };
/// let mut rng = hp_stats::seeded_rng(1);
/// let outcomes: Vec<bool> = (0..4).map(|_| attacker.next_outcome(&ctx, &mut rng)).collect();
/// assert_eq!(outcomes, vec![true, true, true, false]);
/// assert!(attacker.has_run());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheatAndRunAttacker {
    honest_before: usize,
    served: usize,
    gone: bool,
}

impl CheatAndRunAttacker {
    /// Creates an attacker that provides `honest_before` good transactions
    /// and then cheats once.
    pub fn new(honest_before: usize) -> Self {
        CheatAndRunAttacker {
            honest_before,
            served: 0,
            gone: false,
        }
    }

    /// Whether the attacker has executed its single attack (after which a
    /// real attacker has left the system; further calls keep cheating so
    /// misuse is visible in histories).
    pub fn has_run(&self) -> bool {
        self.gone
    }
}

impl ServerBehavior for CheatAndRunAttacker {
    fn next_outcome(&mut self, _ctx: &BehaviorContext<'_>, _rng: &mut StdRng) -> bool {
        if self.served < self.honest_before {
            self.served += 1;
            true
        } else {
            self.gone = true;
            false
        }
    }

    fn name(&self) -> &'static str {
        "cheat-and-run"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{TransactionHistory, TrustValue};

    #[test]
    fn cheats_immediately_with_zero_prefix() {
        let mut a = CheatAndRunAttacker::new(0);
        let h = TransactionHistory::new();
        let ctx = BehaviorContext {
            history: &h,
            trust: TrustValue::NEUTRAL,
            time: 0,
        };
        let mut rng = hp_stats::seeded_rng(1);
        assert!(!a.next_outcome(&ctx, &mut rng));
        assert!(a.has_run());
    }

    #[test]
    fn honest_prefix_then_cheat() {
        let mut a = CheatAndRunAttacker::new(5);
        let h = TransactionHistory::new();
        let ctx = BehaviorContext {
            history: &h,
            trust: TrustValue::NEUTRAL,
            time: 0,
        };
        let mut rng = hp_stats::seeded_rng(1);
        for _ in 0..5 {
            assert!(a.next_outcome(&ctx, &mut rng));
            assert!(!a.has_run());
        }
        assert!(!a.next_outcome(&ctx, &mut rng));
        assert!(a.has_run());
    }
}
