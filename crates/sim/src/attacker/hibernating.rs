//! The hibernating attacker (§3).

use crate::behavior::{BehaviorContext, ServerBehavior};
use rand::rngs::StdRng;
use rand::RngExt;

/// The hibernating attack: "An attacker first carries out some good
/// transactions to build his reputation up to a trust value T₁ … he can
/// then consecutively launch attacks towards his target users without
/// being detected."
///
/// During the build-up phase the attacker mimics an honest player with
/// trustworthiness `cover_p` (attackers that are *too* perfect stand out);
/// once its observed trust value reaches `cover_trust` it cheats on every
/// transaction.
///
/// # Examples
///
/// ```
/// use hp_sim::attacker::HibernatingAttacker;
/// use hp_sim::{BehaviorContext, ServerBehavior};
/// use hp_core::{TransactionHistory, TrustValue};
///
/// let mut attacker = HibernatingAttacker::new(0.95, 0.97);
/// let history = TransactionHistory::new();
/// // Below the cover trust: still hibernating (probabilistically good).
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::new(0.5)?, time: 0 };
/// let mut rng = hp_stats::seeded_rng(3);
/// let good = (0..100).filter(|_| attacker.next_outcome(&ctx, &mut rng)).count();
/// assert!(good > 85);
///
/// // Cover achieved: every transaction is an attack.
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::new(0.96)?, time: 100 };
/// assert!(!attacker.next_outcome(&ctx, &mut rng));
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HibernatingAttacker {
    cover_trust: f64,
    cover_p: f64,
    awakened: bool,
}

impl HibernatingAttacker {
    /// Creates a hibernating attacker that behaves like an honest player
    /// with trustworthiness `cover_p` until its trust value reaches
    /// `cover_trust`, then attacks forever.
    pub fn new(cover_trust: f64, cover_p: f64) -> Self {
        HibernatingAttacker {
            cover_trust: cover_trust.clamp(0.0, 1.0),
            cover_p: cover_p.clamp(0.0, 1.0),
            awakened: false,
        }
    }

    /// Whether the attacker has started its attack phase.
    pub fn is_awake(&self) -> bool {
        self.awakened
    }

    /// The cover reputation T₁.
    pub fn cover_trust(&self) -> f64 {
        self.cover_trust
    }
}

impl ServerBehavior for HibernatingAttacker {
    fn next_outcome(&mut self, ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool {
        if !self.awakened && ctx.trust.value() >= self.cover_trust {
            self.awakened = true;
        }
        if self.awakened {
            false
        } else {
            rng.random::<f64>() < self.cover_p
        }
    }

    fn name(&self) -> &'static str {
        "hibernating"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{TransactionHistory, TrustValue};

    #[test]
    fn stays_asleep_below_cover() {
        let mut a = HibernatingAttacker::new(0.9, 1.0);
        let h = TransactionHistory::new();
        let ctx = BehaviorContext {
            history: &h,
            trust: TrustValue::new(0.89).unwrap(),
            time: 0,
        };
        let mut rng = hp_stats::seeded_rng(1);
        assert!(a.next_outcome(&ctx, &mut rng));
        assert!(!a.is_awake());
    }

    #[test]
    fn wakes_at_cover_and_never_sleeps_again() {
        let mut a = HibernatingAttacker::new(0.9, 1.0);
        let h = TransactionHistory::new();
        let mut rng = hp_stats::seeded_rng(1);
        let high = BehaviorContext {
            history: &h,
            trust: TrustValue::new(0.95).unwrap(),
            time: 0,
        };
        assert!(!a.next_outcome(&high, &mut rng));
        assert!(a.is_awake());
        // Even if trust later collapses, the attack continues (the paper's
        // hibernator has no rebuild phase — that is the periodic attacker).
        let low = BehaviorContext {
            history: &h,
            trust: TrustValue::new(0.1).unwrap(),
            time: 1,
        };
        assert!(!a.next_outcome(&low, &mut rng));
    }

    #[test]
    fn parameters_clamped() {
        let a = HibernatingAttacker::new(7.0, -1.0);
        assert_eq!(a.cover_trust(), 1.0);
    }
}
