//! Periodic attackers (§3 and §5.3).

use crate::behavior::{BehaviorContext, ServerBehavior};
use rand::rngs::StdRng;
use rand::RngExt;

/// The periodic attack: "Every time the attacker successfully achieved a
/// cover reputation T₁, he will launch attacks until his trust value drops
/// to T₂. Then he will provide some good services again to re-build his
/// reputation."
///
/// # Examples
///
/// ```
/// use hp_sim::attacker::PeriodicAttacker;
/// use hp_sim::{BehaviorContext, ServerBehavior};
/// use hp_core::{TransactionHistory, TrustValue};
///
/// let mut attacker = PeriodicAttacker::new(0.95, 0.9, 0.98);
/// let history = TransactionHistory::new();
/// let mut rng = hp_stats::seeded_rng(1);
/// // Trust above T₁: attack.
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::new(0.96)?, time: 0 };
/// assert!(!attacker.next_outcome(&ctx, &mut rng));
/// // Trust fell to T₂: rebuild.
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::new(0.89)?, time: 1 };
/// assert!(attacker.next_outcome(&ctx, &mut rng));
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicAttacker {
    t1: f64,
    t2: f64,
    rebuild_p: f64,
    attacking: bool,
}

impl PeriodicAttacker {
    /// Creates a periodic attacker with cover reputation `t1`, attack
    /// floor `t2 < t1`, and honest-mimicry quality `rebuild_p` during
    /// rebuild phases.
    ///
    /// # Panics
    ///
    /// Panics if `t2 >= t1` — the cycle would never terminate.
    pub fn new(t1: f64, t2: f64, rebuild_p: f64) -> Self {
        assert!(t2 < t1, "periodic attacker needs T2 ({t2}) < T1 ({t1})");
        PeriodicAttacker {
            t1: t1.clamp(0.0, 1.0),
            t2: t2.clamp(0.0, 1.0),
            rebuild_p: rebuild_p.clamp(0.0, 1.0),
            attacking: false,
        }
    }

    /// Whether the attacker is currently in an attack phase.
    pub fn is_attacking(&self) -> bool {
        self.attacking
    }
}

impl ServerBehavior for PeriodicAttacker {
    fn next_outcome(&mut self, ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool {
        let trust = ctx.trust.value();
        if self.attacking {
            if trust <= self.t2 {
                self.attacking = false;
            }
        } else if trust >= self.t1 {
            self.attacking = true;
        }
        if self.attacking {
            false
        } else {
            rng.random::<f64>() < self.rebuild_p
        }
    }

    fn name(&self) -> &'static str {
        "periodic"
    }
}

/// The Fig. 7 attacker: launches exactly `⌊N·attack_rate⌋` attacks at
/// uniformly random positions inside every window of `N` transactions,
/// keeping its long-run reputation at `1 − attack_rate`.
///
/// For small `N` the pattern is rigidly regular (every `m`-window has the
/// same count) and easy to detect; as `N` grows the placement converges to
/// a Bernoulli stream and detection falls — the trade-off Fig. 7 plots.
#[derive(Debug, Clone)]
pub struct WindowedPeriodicAttacker {
    window: usize,
    attacks_per_window: usize,
    /// Positions (offsets in the current window) chosen to be attacks.
    planned: Vec<usize>,
    offset: usize,
}

impl WindowedPeriodicAttacker {
    /// Creates an attacker with attack window `window` and attack rate
    /// `attack_rate` (the paper uses 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `attack_rate ∉ [0, 1]`.
    pub fn new(window: usize, attack_rate: f64) -> Self {
        assert!(window > 0, "attack window must be positive");
        assert!(
            (0.0..=1.0).contains(&attack_rate),
            "attack rate must be a probability, got {attack_rate}"
        );
        WindowedPeriodicAttacker {
            window,
            attacks_per_window: (window as f64 * attack_rate).floor() as usize,
            planned: Vec::new(),
            offset: 0,
        }
    }

    /// The attack window size `N`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Attacks launched inside each window.
    pub fn attacks_per_window(&self) -> usize {
        self.attacks_per_window
    }

    fn plan_window(&mut self, rng: &mut StdRng) {
        self.planned.clear();
        // Sample `attacks_per_window` distinct offsets in [0, window).
        while self.planned.len() < self.attacks_per_window {
            let pos = rng.random_range(0..self.window);
            if !self.planned.contains(&pos) {
                self.planned.push(pos);
            }
        }
    }
}

impl ServerBehavior for WindowedPeriodicAttacker {
    fn next_outcome(&mut self, _ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool {
        if self.offset == 0 {
            self.plan_window(rng);
        }
        let attack = self.planned.contains(&self.offset);
        self.offset = (self.offset + 1) % self.window;
        !attack
    }

    fn name(&self) -> &'static str {
        "windowed-periodic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::{TransactionHistory, TrustValue};

    fn ctx(history: &TransactionHistory, trust: f64) -> BehaviorContext<'_> {
        BehaviorContext {
            history,
            trust: TrustValue::new(trust).unwrap(),
            time: 0,
        }
    }

    #[test]
    #[should_panic(expected = "T2")]
    fn periodic_rejects_inverted_bounds() {
        let _ = PeriodicAttacker::new(0.9, 0.95, 1.0);
    }

    #[test]
    fn periodic_cycles_between_phases() {
        let mut a = PeriodicAttacker::new(0.95, 0.9, 1.0);
        let h = TransactionHistory::new();
        let mut rng = hp_stats::seeded_rng(2);
        // Starts rebuilding.
        assert!(a.next_outcome(&ctx(&h, 0.5), &mut rng));
        assert!(!a.is_attacking());
        // Reaches T1 → attacks.
        assert!(!a.next_outcome(&ctx(&h, 0.95), &mut rng));
        assert!(a.is_attacking());
        // Still above T2 → keeps attacking.
        assert!(!a.next_outcome(&ctx(&h, 0.92), &mut rng));
        // Hits T2 → rebuilds again.
        assert!(a.next_outcome(&ctx(&h, 0.90), &mut rng));
        assert!(!a.is_attacking());
    }

    #[test]
    fn windowed_exact_attack_count_per_window() {
        let mut a = WindowedPeriodicAttacker::new(20, 0.1);
        assert_eq!(a.attacks_per_window(), 2);
        let h = TransactionHistory::new();
        let c = ctx(&h, 0.95);
        let mut rng = hp_stats::seeded_rng(3);
        for w in 0..50 {
            let bad = (0..20)
                .filter(|_| !a.next_outcome(&c, &mut rng))
                .count();
            assert_eq!(bad, 2, "window {w}");
        }
    }

    #[test]
    fn windowed_positions_vary_between_windows() {
        let mut a = WindowedPeriodicAttacker::new(40, 0.1);
        let h = TransactionHistory::new();
        let c = ctx(&h, 0.95);
        let mut rng = hp_stats::seeded_rng(4);
        let mut patterns = std::collections::HashSet::new();
        for _ in 0..20 {
            let pattern: Vec<bool> = (0..40).map(|_| a.next_outcome(&c, &mut rng)).collect();
            patterns.insert(pattern);
        }
        assert!(patterns.len() > 5, "attack placement must be randomized");
    }

    #[test]
    fn windowed_zero_rate_never_attacks() {
        let mut a = WindowedPeriodicAttacker::new(10, 0.0);
        let h = TransactionHistory::new();
        let c = ctx(&h, 0.95);
        let mut rng = hp_stats::seeded_rng(5);
        assert!((0..100).all(|_| a.next_outcome(&c, &mut rng)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn windowed_rejects_zero_window() {
        let _ = WindowedPeriodicAttacker::new(0, 0.1);
    }
}
