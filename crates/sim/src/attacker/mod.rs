//! Attacker behaviors from §3 and §4 of the paper.
//!
//! | Attacker | Strategy | Defeated by |
//! |----------|----------|-------------|
//! | [`HibernatingAttacker`] | build cover reputation T₁, then cheat continuously | multi-testing |
//! | [`PeriodicAttacker`] | cheat until trust drops to T₂, rebuild to T₁, repeat | behavior testing |
//! | [`WindowedPeriodicAttacker`] | exactly `N·r` attacks per `N`-transaction window | distribution testing (Fig. 7) |
//! | [`CheatAndRunAttacker`] | a few good transactions, one bad, then leave | admission control, not reputation (§3.1) |
//!
//! The *strategic* attacker of §5 — which consults the deployed trust
//! function **and** behavior test before every move — lives in
//! [`crate::scenario`] because it needs what-if access to the whole
//! pipeline, not just its own history.

mod cheat_and_run;
mod hibernating;
mod periodic;

pub use cheat_and_run::CheatAndRunAttacker;
pub use hibernating::HibernatingAttacker;
pub use periodic::{PeriodicAttacker, WindowedPeriodicAttacker};
