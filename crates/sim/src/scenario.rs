//! Strategic attack-cost scenarios — the drivers behind Figs. 3–6.
//!
//! The attacker model of §5.1: "attackers are strategic and aware of the
//! trust functions as well as the behavior testing algorithms. … It first
//! assumes that it will conduct a bad transaction next, and considers the
//! resulting transaction history H'. If H' is consistent with the behavior
//! model of honest players, and the trust value computed from H' is no
//! less than 0.9, then the attacker will cheat in the next transaction.
//! Otherwise, it will provide good services."
//!
//! **Threshold semantics.** We apply the behavior test to the hypothetical
//! history H' exactly as quoted, but check the trust threshold against the
//! value the *victim sees when deciding to transact* — i.e. before the
//! attack. The paper's own result narration requires this reading: under
//! the weighted function (λ = 0.5) a bad transaction always drops trust to
//! ≈ 0.5 < 0.9, so a literal trust-on-H' check would forbid every attack,
//! whereas Fig. 4 describes the attacker cheating and then paying "2~3
//! good transactions" to climb back over 0.9. Likewise Fig. 3's "the
//! attacker can always keep conducting bad transactions, until its trust
//! value hits 0.9" is a statement about the pre-transaction value.

use crate::clients::{ClientArrivalConfig, ClientPopulation};
use crate::metrics::{AttackCostResult, CollusionCostResult};
use hp_core::testing::{BehaviorTest, TestOutcome};
use hp_core::{
    ClientId, CoreError, Feedback, Rating, ServerId, TransactionHistory, TrustFunction,
};
use rand::RngExt;

/// Which behavior-testing scheme screens the attacker (phase 1).
///
/// Borrowed so one (expensively calibrated) test instance can serve a
/// whole parameter sweep.
#[derive(Clone, Copy)]
pub enum Screening<'a> {
    /// No screening: the trust function alone (the paper's baselines).
    None,
    /// Any behavior test; `Suspicious` blocks the attacker's move.
    Test(&'a dyn BehaviorTest),
}

impl std::fmt::Debug for Screening<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Screening::None => write!(f, "Screening::None"),
            Screening::Test(t) => write!(f, "Screening::Test({})", t.name()),
        }
    }
}

impl Screening<'_> {
    fn passes(&self, history: &TransactionHistory) -> Result<bool, CoreError> {
        match self {
            Screening::None => Ok(true),
            Screening::Test(test) => {
                Ok(test.evaluate(history)?.outcome() != TestOutcome::Suspicious)
            }
        }
    }

    fn window_size(&self) -> Option<usize> {
        match self {
            Screening::None => None,
            Screening::Test(test) => test.window_size().map(|m| m as usize),
        }
    }
}

/// Configuration for [`attack_cost`] (Figs. 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackCostConfig {
    /// Transactions in the preparation phase (the x-axis of Figs. 3–4).
    pub prep_size: usize,
    /// The attacker's honest-mimicry quality during preparation (paper:
    /// 0.95).
    pub prep_trust: f64,
    /// Target number of successful attacks M (paper: 20).
    pub target_attacks: usize,
    /// Clients' trust threshold (paper: 0.9).
    pub trust_threshold: f64,
    /// Attack-phase step budget; exceeding it marks the result
    /// [`AttackCostResult::exhausted`].
    pub max_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttackCostConfig {
    fn default() -> Self {
        AttackCostConfig {
            prep_size: 400,
            prep_trust: 0.95,
            target_attacks: 20,
            trust_threshold: 0.9,
            max_steps: 20_000,
            seed: 0,
        }
    }
}

const SERVER: ServerId = ServerId::new(0);

/// Runs the strategic attack-cost experiment of §5.1.
///
/// The attacker prepares `prep_size` transactions as an honest player,
/// then repeatedly: hypothesizes a bad transaction, checks the deployed
/// trust function and screening on the hypothetical history, cheats if
/// both accept, and provides a good service otherwise — until
/// `target_attacks` attacks succeed or the step budget runs out.
///
/// The attacker is not myopic: the hypothetical history it screens is H'
/// *padded with planned good transactions up to the next window boundary*.
/// Without this, a bad transaction sitting in the trailing partial window
/// is invisible to a start-aligned test at commit time, surfaces a few
/// transactions later, and permanently locks the attacker out — an
/// artifact of greedy play, not of the scheme. A strategy-aware attacker
/// (the paper's assumption) avoids exactly that trap by reasoning one
/// window ahead.
///
/// # Errors
///
/// Propagates behavior-test failures.
///
/// # Examples
///
/// ```
/// use hp_core::trust::AverageTrust;
/// use hp_sim::{attack_cost, AttackCostConfig, Screening};
///
/// // With the average function alone and a 400-transaction preparation,
/// // a hibernating attacker pays nothing (the paper's observation).
/// let result = attack_cost(
///     &AttackCostConfig { prep_size: 450, ..Default::default() },
///     &AverageTrust::default(),
///     Screening::None,
/// )?;
/// assert_eq!(result.attacks_completed, 20);
/// assert_eq!(result.good_transactions, 0);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
pub fn attack_cost(
    config: &AttackCostConfig,
    trust: &dyn TrustFunction,
    screening: Screening<'_>,
) -> Result<AttackCostResult, CoreError> {
    let mut rng = hp_stats::seeded_rng(config.seed);
    let mut history = TransactionHistory::with_capacity(config.prep_size + config.max_steps);

    // Preparation phase: behave as an honest player with p = prep_trust.
    for t in 0..config.prep_size as u64 {
        let client = ClientId::new(rng.random_range(0..50));
        let good = rng.random::<f64>() < config.prep_trust;
        history.push(Feedback::new(t, SERVER, client, Rating::from_good(good)));
    }

    // Attack phase.
    let mut good_transactions = 0usize;
    let mut attacks = 0usize;
    let mut steps = 0usize;
    while attacks < config.target_attacks && steps < config.max_steps {
        steps += 1;
        let time = (config.prep_size + steps) as u64;
        let client = ClientId::new(rng.random_range(0..50));

        // The victim transacts only if the server's *current* trust value
        // meets its threshold; the behavior test screens the hypothetical
        // history including the attack (see module docs).
        let victim_accepts = trust.trust(&history).meets(config.trust_threshold);
        history.push(Feedback::new(time, SERVER, client, Rating::Negative));
        // Pad with planned goods to the next window boundary so the
        // screen sees the bad transaction it is about to commit (see the
        // function docs on non-myopic play).
        let m = screening.window_size().unwrap_or(1);
        let pad = (m - history.len() % m) % m;
        for i in 0..pad {
            history.push(Feedback::new(
                time + 1 + i as u64,
                SERVER,
                ClientId::new(rng.random_range(0..50)),
                Rating::Positive,
            ));
        }
        let cheat_ok = victim_accepts && screening.passes(&history)?;
        for _ in 0..=pad {
            history.pop();
        }

        if cheat_ok {
            history.push(Feedback::new(time, SERVER, client, Rating::Negative));
            attacks += 1;
        } else {
            history.push(Feedback::new(time, SERVER, client, Rating::Positive));
            good_transactions += 1;
        }
    }

    Ok(AttackCostResult {
        good_transactions,
        attacks_completed: attacks,
        total_steps: steps,
        exhausted: attacks < config.target_attacks,
    })
}

/// Configuration for [`collusion_attack_cost`] (Figs. 5–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollusionConfig {
    /// Transactions in the (colluder-powered) preparation phase.
    pub prep_size: usize,
    /// Colluder feedback quality during preparation (paper builds "a
    /// reputation of 0.95").
    pub prep_trust: f64,
    /// Total potential clients (paper: 100).
    pub clients: u64,
    /// Colluders among them (paper: 5). Colluder ids are `0..colluders`.
    pub colluders: u64,
    /// Arrival-model constants a₁, a₂, a₃ (paper: 0.5, 0.9, 0.2).
    pub arrivals: ClientArrivalConfig,
    /// Target number of successful attacks M (paper: 20).
    pub target_attacks: usize,
    /// Clients' trust threshold (paper: 0.9).
    pub trust_threshold: f64,
    /// Attack-phase round budget.
    pub max_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CollusionConfig {
    fn default() -> Self {
        CollusionConfig {
            prep_size: 400,
            prep_trust: 0.95,
            clients: 100,
            colluders: 5,
            arrivals: ClientArrivalConfig::default(),
            target_attacks: 20,
            trust_threshold: 0.9,
            max_steps: 20_000,
            seed: 0,
        }
    }
}

/// Runs the collusion attack-cost experiment of §5.2.
///
/// During preparation the attacker interacts only with its colluders.
/// During the attack phase, each round it strategically chooses among
/// *cheating on a real client*, *getting a fake positive from a colluder*,
/// and *providing a genuine good service*, consulting the trust function
/// and screening before each choice. The cost metric is good services
/// delivered to non-colluders.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn collusion_attack_cost(
    config: &CollusionConfig,
    trust: &dyn TrustFunction,
    screening: Screening<'_>,
) -> Result<CollusionCostResult, CoreError> {
    let mut rng = hp_stats::seeded_rng(config.seed);
    let mut history = TransactionHistory::with_capacity(config.prep_size + config.max_steps);
    let mut population = ClientPopulation::new(config.clients, config.arrivals);
    let colluder = |c: ClientId| c.value() < config.colluders;

    // Preparation: only colluders issue (mostly fake-positive) feedback.
    for t in 0..config.prep_size as u64 {
        let client = ClientId::new(rng.random_range(0..config.colluders.max(1)));
        let good = rng.random::<f64>() < config.prep_trust;
        history.push(Feedback::new(t, SERVER, client, Rating::from_good(good)));
    }

    let mut good_to_victims = 0usize;
    let mut colluder_boosts = 0usize;
    let mut attacks = 0usize;
    let mut steps = 0usize;

    while attacks < config.target_attacks && steps < config.max_steps {
        steps += 1;
        let time = (config.prep_size + steps) as u64;
        let reputation = trust.trust(&history).value();
        let arrivals = population.arrivals(reputation, &mut rng);
        let victims: Vec<ClientId> = arrivals.iter().copied().filter(|&c| !colluder(c)).collect();

        // Choice 1: cheat on a victim, if the system would let it slide.
        // (`reputation` is the pre-transaction trust the victim acted on.)
        if let Some(&victim) = victims.first() {
            let victim_accepts = reputation >= config.trust_threshold;
            history.push(Feedback::new(time, SERVER, victim, Rating::Negative));
            let ok = victim_accepts && screening.passes(&history)?;
            if ok {
                attacks += 1;
                population.record(victim, false);
                continue;
            }
            history.pop();
        }

        // Choice 2: a free colluder boost, if it doesn't trip the screen.
        let helper = ClientId::new(rng.random_range(0..config.colluders.max(1)));
        history.push(Feedback::new(time, SERVER, helper, Rating::Positive));
        if screening.passes(&history)? {
            colluder_boosts += 1;
            continue;
        }
        history.pop();

        // Choice 3: forced to actually serve a real client well.
        if let Some(&victim) = victims.first() {
            history.push(Feedback::new(time, SERVER, victim, Rating::Positive));
            good_to_victims += 1;
            population.record(victim, true);
        }
        // No victim arrived and the boost was blocked: the round passes
        // without a transaction (time still advances).
    }

    Ok(CollusionCostResult {
        good_to_victims,
        colluder_boosts,
        attacks_completed: attacks,
        total_steps: steps,
        exhausted: attacks < config.target_attacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::testing::{
        BehaviorTestConfig, CollusionResilientTest, MultiBehaviorTest, SingleBehaviorTest,
    };
    use hp_core::trust::{AverageTrust, WeightedTrust};

    fn fast_config() -> BehaviorTestConfig {
        BehaviorTestConfig::builder()
            .calibration_trials(400)
            .build()
            .unwrap()
    }

    #[test]
    fn average_alone_hibernating_attack_is_free_with_long_prep() {
        // With ≈0.95·H good transactions in the prep phase, the attacker
        // can launch j attacks while 0.95H/(H+j) ≥ 0.9, i.e. j ≈ 0.055·H;
        // for H = 600 that comfortably covers all 20 attacks, minus a
        // little Bernoulli noise in the prep draw.
        for seed in 0..5 {
            let result = attack_cost(
                &AttackCostConfig {
                    prep_size: 600,
                    seed,
                    ..Default::default()
                },
                &AverageTrust::default(),
                Screening::None,
            )
            .unwrap();
            assert_eq!(result.attacks_completed, 20, "seed {seed}");
            assert!(
                result.good_transactions <= 5,
                "seed {seed}: hibernating attack should be nearly free, cost {}",
                result.good_transactions
            );
        }
    }

    #[test]
    fn average_alone_short_prep_costs_roughly_nine_goods_per_attack() {
        // Below the free-ride point the attacker must interleave roughly 9
        // good transactions per attack (threshold 0.9).
        let result = attack_cost(
            &AttackCostConfig {
                prep_size: 100,
                seed: 2,
                ..Default::default()
            },
            &AverageTrust::default(),
            Screening::None,
        )
        .unwrap();
        assert_eq!(result.attacks_completed, 20);
        // g ≥ 180 − 0.5·H − (bad-luck prep noise) → ≈ 130 for H = 100.
        assert!(
            result.good_transactions > 80 && result.good_transactions < 200,
            "cost {}",
            result.good_transactions
        );
    }

    #[test]
    fn weighted_alone_forces_rebuild_after_every_attack() {
        let result = attack_cost(
            &AttackCostConfig {
                prep_size: 400,
                seed: 3,
                ..Default::default()
            },
            &WeightedTrust::new(0.5).unwrap(),
            Screening::None,
        )
        .unwrap();
        assert_eq!(result.attacks_completed, 20);
        // λ=0.5: one bad halves trust to ≈0.5; the attacker needs 3 goods
        // (0.5 → 0.75 → 0.875 → 0.9375) to clear 0.9 again — the paper's
        // "2~3 good transactions" and never two consecutive attacks.
        let per_attack = result.cost_per_attack();
        assert!(
            (2.0..=4.0).contains(&per_attack),
            "per-attack cost {per_attack}"
        );
    }

    #[test]
    fn multi_testing_raises_cost_over_single_testing() {
        // Median over several seeds: a single unlucky prep draw can fail
        // the screen outright (the ~5% honest false-positive rate), which
        // is exactly why the experiment harness replicates runs.
        let config = fast_config();
        let single = SingleBehaviorTest::new(config.clone()).unwrap();
        let multi = MultiBehaviorTest::new(config).unwrap();
        let avg = AverageTrust::default();
        let mut single_costs = Vec::new();
        let mut multi_costs = Vec::new();
        for seed in 0..5 {
            let base = AttackCostConfig {
                prep_size: 700,
                seed,
                max_steps: 3_000,
                ..Default::default()
            };
            let s = attack_cost(&base, &avg, Screening::Test(&single)).unwrap();
            let m = attack_cost(&base, &avg, Screening::Test(&multi)).unwrap();
            single_costs.push(if s.exhausted { usize::MAX } else { s.good_transactions });
            multi_costs.push(if m.exhausted { usize::MAX } else { m.good_transactions });
        }
        single_costs.sort_unstable();
        multi_costs.sort_unstable();
        let single_med = single_costs[2];
        let multi_med = multi_costs[2];
        assert!(
            multi_med >= single_med,
            "median multi cost ({multi_med}) must be at least single ({multi_med} vs {single_med}); \
             single: {single_costs:?}, multi: {multi_costs:?}"
        );
    }

    #[test]
    fn collusion_without_screening_is_free() {
        let result = collusion_attack_cost(
            &CollusionConfig {
                seed: 5,
                ..Default::default()
            },
            &AverageTrust::default(),
            Screening::None,
        )
        .unwrap();
        assert_eq!(result.attacks_completed, 20);
        assert_eq!(
            result.good_to_victims, 0,
            "colluders cover everything when nobody screens"
        );
    }

    #[test]
    fn collusion_screening_forces_real_service() {
        let test = CollusionResilientTest::new(fast_config()).unwrap();
        let result = collusion_attack_cost(
            &CollusionConfig {
                seed: 6,
                max_steps: 4_000,
                ..Default::default()
            },
            &AverageTrust::default(),
            Screening::Test(&test),
        )
        .unwrap();
        // Either the attacker paid in genuine service, or it never managed
        // its 20 attacks within budget — both demonstrate the constraint.
        assert!(
            result.good_to_victims > 0 || result.exhausted,
            "{result:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = AttackCostConfig {
            prep_size: 200,
            seed: 7,
            ..Default::default()
        };
        let avg = AverageTrust::default();
        let a = attack_cost(&cfg, &avg, Screening::None).unwrap();
        let b = attack_cost(&cfg, &avg, Screening::None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn screening_debug_format() {
        let test = SingleBehaviorTest::new(fast_config()).unwrap();
        assert_eq!(format!("{:?}", Screening::None), "Screening::None");
        assert!(format!("{:?}", Screening::Test(&test)).contains("single"));
    }
}
