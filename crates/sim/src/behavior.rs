//! Server behaviors: how a service provider decides transaction quality.

use hp_core::{TransactionHistory, TrustValue};
use rand::rngs::StdRng;
use rand::RngExt;

/// What a behavior can see when deciding its next transaction's quality.
///
/// Attackers in the paper are *reputation-aware*: they watch their own
/// trust value as computed by the deployed trust function and adapt.
#[derive(Debug)]
pub struct BehaviorContext<'a> {
    /// The server's full transaction history so far.
    pub history: &'a TransactionHistory,
    /// The server's current trust value under the deployed trust function.
    pub trust: TrustValue,
    /// The logical time of the upcoming transaction.
    pub time: u64,
}

/// A server-side decision rule: given what the server knows, will the next
/// transaction be good?
pub trait ServerBehavior {
    /// Decides the quality of the next transaction.
    fn next_outcome(&mut self, ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;
}

impl<B: ServerBehavior + ?Sized> ServerBehavior for Box<B> {
    fn next_outcome(&mut self, ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool {
        (**self).next_outcome(ctx, rng)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// An honest player: every transaction is an independent Bernoulli trial
/// with success probability `p` — the paper's core model (§3.1). Failures
/// happen, but they are caused by uncontrollable factors, not strategy.
///
/// # Examples
///
/// ```
/// use hp_sim::{BehaviorContext, HonestBehavior, ServerBehavior};
/// use hp_core::{TransactionHistory, TrustValue};
///
/// let mut honest = HonestBehavior::new(0.95).unwrap();
/// let history = TransactionHistory::new();
/// let ctx = BehaviorContext { history: &history, trust: TrustValue::NEUTRAL, time: 0 };
/// let mut rng = hp_stats::seeded_rng(1);
/// let outcomes: Vec<bool> = (0..1000).map(|_| honest.next_outcome(&ctx, &mut rng)).collect();
/// let good = outcomes.iter().filter(|&&g| g).count();
/// assert!(good > 900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HonestBehavior {
    p: f64,
}

impl HonestBehavior {
    /// Creates an honest player with trustworthiness `p`.
    ///
    /// # Errors
    ///
    /// Returns [`hp_core::CoreError::InvalidTrustValue`] unless
    /// `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, hp_core::CoreError> {
        // Reuse TrustValue's validation: trustworthiness is a probability.
        let v = TrustValue::new(p)?;
        Ok(HonestBehavior { p: v.value() })
    }

    /// The underlying trustworthiness `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl ServerBehavior for HonestBehavior {
    fn next_outcome(&mut self, _ctx: &BehaviorContext<'_>, rng: &mut StdRng) -> bool {
        rng.random::<f64>() < self.p
    }

    fn name(&self) -> &'static str {
        "honest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(history: &TransactionHistory) -> BehaviorContext<'_> {
        BehaviorContext {
            history,
            trust: TrustValue::NEUTRAL,
            time: 0,
        }
    }

    #[test]
    fn validation() {
        assert!(HonestBehavior::new(-0.1).is_err());
        assert!(HonestBehavior::new(1.1).is_err());
        assert!(HonestBehavior::new(0.95).is_ok());
    }

    #[test]
    fn rate_matches_p() {
        let mut b = HonestBehavior::new(0.8).unwrap();
        let h = TransactionHistory::new();
        let c = ctx(&h);
        let mut rng = hp_stats::seeded_rng(4);
        let n = 20_000;
        let good = (0..n).filter(|_| b.next_outcome(&c, &mut rng)).count();
        let rate = good as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn degenerate_p() {
        let h = TransactionHistory::new();
        let c = ctx(&h);
        let mut rng = hp_stats::seeded_rng(4);
        let mut perfect = HonestBehavior::new(1.0).unwrap();
        let mut awful = HonestBehavior::new(0.0).unwrap();
        for _ in 0..100 {
            assert!(perfect.next_outcome(&c, &mut rng));
            assert!(!awful.next_outcome(&c, &mut rng));
        }
    }

    #[test]
    fn name() {
        assert_eq!(HonestBehavior::new(0.9).unwrap().name(), "honest");
    }
}
