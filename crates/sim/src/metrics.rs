//! Result records for the attack-cost experiments.

/// The outcome of a strategic attack-cost run (Figs. 3–4).
///
/// The paper's cost metric: "we will use the total number of good
/// transactions needed to launch M attacks as the metrics to measure the
/// strength of a scheme" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCostResult {
    /// Good transactions the attacker had to perform during the attack
    /// phase — the cost (the y-axis of Figs. 3 and 4).
    pub good_transactions: usize,
    /// Bad transactions successfully executed (≤ the target M).
    pub attacks_completed: usize,
    /// Total attack-phase steps (good + bad).
    pub total_steps: usize,
    /// Whether the run hit the step budget before completing M attacks —
    /// i.e. the scheme effectively locked the attacker out.
    pub exhausted: bool,
}

impl AttackCostResult {
    /// Good transactions per completed attack (∞ if none completed).
    pub fn cost_per_attack(&self) -> f64 {
        if self.attacks_completed == 0 {
            f64::INFINITY
        } else {
            self.good_transactions as f64 / self.attacks_completed as f64
        }
    }
}

/// The outcome of a collusion attack-cost run (Figs. 5–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollusionCostResult {
    /// Good services provided to clients *other than colluders* — "the
    /// true cost for the attacker to achieve his goal" (§5.2, the y-axis
    /// of Figs. 5 and 6).
    pub good_to_victims: usize,
    /// Fake positive feedbacks obtained from colluders (≈ free).
    pub colluder_boosts: usize,
    /// Bad transactions successfully executed.
    pub attacks_completed: usize,
    /// Total attack-phase rounds.
    pub total_steps: usize,
    /// Whether the run hit the step budget before completing its attacks.
    pub exhausted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_per_attack() {
        let r = AttackCostResult {
            good_transactions: 40,
            attacks_completed: 20,
            total_steps: 60,
            exhausted: false,
        };
        assert!((r.cost_per_attack() - 2.0).abs() < 1e-12);
        let none = AttackCostResult {
            good_transactions: 10,
            attacks_completed: 0,
            total_steps: 10,
            exhausted: true,
        };
        assert!(none.cost_per_attack().is_infinite());
    }
}
