//! A minimal discrete-event simulation loop.
//!
//! Runs one [`ServerBehavior`] for a number of rounds against a deployed
//! trust function, building the transaction history and recording the
//! trust trajectory — the raw material for examples, detection-rate
//! experiments, and the integration tests.

use crate::behavior::{BehaviorContext, ServerBehavior};
use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory, TrustFunction};
use rand::RngExt;

/// Configuration for a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of transactions to simulate.
    pub rounds: usize,
    /// The simulated server's id.
    pub server: ServerId,
    /// Size of the client pool; each round's client is drawn uniformly.
    pub clients: u64,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            rounds: 1000,
            server: ServerId::new(0),
            clients: 50,
            seed: 0,
        }
    }
}

/// The record of a finished simulation.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The server's full transaction history.
    pub history: TransactionHistory,
    /// The trust value *before* each transaction (what the behavior saw).
    pub trust_trajectory: Vec<f64>,
}

impl SimulationOutcome {
    /// The final trust value, if any rounds ran.
    pub fn final_trust(&self) -> Option<f64> {
        self.trust_trajectory.last().copied()
    }
}

/// Drives a server behavior against a trust function.
///
/// # Examples
///
/// ```
/// use hp_core::trust::AverageTrust;
/// use hp_sim::{HonestBehavior, Simulation, SimulationConfig};
///
/// let sim = Simulation::new(
///     HonestBehavior::new(0.9)?,
///     AverageTrust::default(),
///     SimulationConfig { rounds: 500, ..Default::default() },
/// );
/// let outcome = sim.run();
/// assert_eq!(outcome.history.len(), 500);
/// let p = outcome.history.p_hat().unwrap();
/// assert!((p - 0.9).abs() < 0.06);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Simulation<B, T> {
    behavior: B,
    trust: T,
    config: SimulationConfig,
}

impl<B: ServerBehavior, T: TrustFunction> Simulation<B, T> {
    /// Creates a simulation.
    pub fn new(behavior: B, trust: T, config: SimulationConfig) -> Self {
        Simulation {
            behavior,
            trust,
            config,
        }
    }

    /// Runs the simulation to completion, consuming it.
    pub fn run(mut self) -> SimulationOutcome {
        let mut rng = hp_stats::seeded_rng(self.config.seed);
        let mut history = TransactionHistory::with_capacity(self.config.rounds);
        let mut trajectory = Vec::with_capacity(self.config.rounds);
        for t in 0..self.config.rounds as u64 {
            let trust = self.trust.trust(&history);
            trajectory.push(trust.value());
            let good = {
                let ctx = BehaviorContext {
                    history: &history,
                    trust,
                    time: t,
                };
                self.behavior.next_outcome(&ctx, &mut rng)
            };
            let client = ClientId::new(rng.random_range(0..self.config.clients.max(1)));
            history.push(Feedback::new(
                t,
                self.config.server,
                client,
                Rating::from_good(good),
            ));
        }
        SimulationOutcome {
            history,
            trust_trajectory: trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{HibernatingAttacker, PeriodicAttacker};
    use crate::behavior::HonestBehavior;
    use hp_core::trust::{AverageTrust, WeightedTrust};

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            Simulation::new(
                HonestBehavior::new(0.9).unwrap(),
                AverageTrust::default(),
                SimulationConfig {
                    rounds: 200,
                    seed: 42,
                    ..Default::default()
                },
            )
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.history.feedbacks(), b.history.feedbacks());
        assert_eq!(a.trust_trajectory, b.trust_trajectory);
    }

    #[test]
    fn hibernator_collapses_trust_after_waking() {
        let outcome = Simulation::new(
            HibernatingAttacker::new(0.95, 0.98),
            AverageTrust::default(),
            SimulationConfig {
                rounds: 1000,
                seed: 3,
                ..Default::default()
            },
        )
        .run();
        // The attacker woke at some point and cheated ever after, so the
        // tail of the history is all bad.
        let tail_bad = outcome
            .history
            .feedbacks()
            .iter()
            .rev()
            .take_while(|f| !f.is_good())
            .count();
        assert!(tail_bad > 100, "hibernator attack tail: {tail_bad}");
        assert!(outcome.final_trust().unwrap() < 0.9);
    }

    #[test]
    fn periodic_attacker_oscillates_against_weighted_trust() {
        let outcome = Simulation::new(
            PeriodicAttacker::new(0.9, 0.7, 1.0),
            WeightedTrust::new(0.5).unwrap(),
            SimulationConfig {
                rounds: 600,
                seed: 4,
                ..Default::default()
            },
        )
        .run();
        let bad = outcome.history.bad_count();
        // The attacker gets repeated attack windows but must keep paying
        // rebuild costs: bad transactions exist but are a minority.
        assert!(bad > 50, "attacks happened: {bad}");
        assert!(bad < 400, "attacks bounded by rebuild phases: {bad}");
    }

    #[test]
    fn trajectory_has_one_entry_per_round() {
        let outcome = Simulation::new(
            HonestBehavior::new(1.0).unwrap(),
            AverageTrust::default(),
            SimulationConfig {
                rounds: 10,
                seed: 0,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(outcome.trust_trajectory.len(), 10);
        // First round sees the empty-history neutral value.
        assert_eq!(outcome.trust_trajectory[0], 0.5);
        assert_eq!(outcome.final_trust(), Some(1.0));
    }

    #[test]
    fn zero_rounds_gives_empty_outcome() {
        let outcome = Simulation::new(
            HonestBehavior::new(0.9).unwrap(),
            AverageTrust::default(),
            SimulationConfig {
                rounds: 0,
                ..Default::default()
            },
        )
        .run();
        assert!(outcome.history.is_empty());
        assert_eq!(outcome.final_trust(), None);
    }
}
