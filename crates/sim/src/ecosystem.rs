//! A whole-marketplace simulation: does two-phase assessment actually
//! reduce the harm clients experience?
//!
//! The paper's evaluation measures attacker *cost*; this module closes the
//! loop and measures client *welfare*: a population of honest servers of
//! varying quality and hibernating attackers compete for clients who pick
//! providers by assessed trust. Screening should (a) starve attackers of
//! victims once they wake and (b) leave honest traffic essentially
//! untouched.

use crate::attacker::PeriodicAttacker;
use crate::behavior::{BehaviorContext, HonestBehavior, ServerBehavior};
use hp_core::testing::{BehaviorTest, TestOutcome};
use hp_core::{
    ClientId, CoreError, Feedback, Rating, ServerId, TransactionHistory, TrustFunction,
};
use rand::RngExt;

/// Configuration for [`run_marketplace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcosystemConfig {
    /// Honest servers, with trustworthiness spread uniformly over
    /// `honest_p_range`.
    pub honest_servers: usize,
    /// Range of honest trustworthiness values.
    pub honest_p_range: (f64, f64),
    /// Periodic attackers cycling between trust 0.95 and 0.93 — pinned
    /// *above* every honest server in the default market, so trust-ranked
    /// selection keeps walking into them.
    pub attackers: usize,
    /// Number of clients.
    pub clients: u64,
    /// Total transactions to simulate.
    pub rounds: usize,
    /// Exploration rate: fraction of picks that ignore trust (keeps new
    /// servers discoverable; also what attackers prey on).
    pub exploration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            honest_servers: 16,
            honest_p_range: (0.80, 0.92),
            attackers: 4,
            clients: 100,
            rounds: 6000,
            exploration: 0.1,
            seed: 0,
        }
    }
}

/// The outcome of a marketplace run.
#[derive(Debug, Clone)]
pub struct EcosystemOutcome {
    /// Transactions executed.
    pub transactions: usize,
    /// Transactions that went bad for the client.
    pub bad_experiences: usize,
    /// Bad experiences caused by attacker servers specifically.
    pub attacker_harm: usize,
    /// Times a screening verdict removed a server from a client's
    /// candidate set.
    pub screened_out_picks: usize,
    /// Transactions served per server (honest first, then attackers).
    pub per_server: Vec<usize>,
}

impl EcosystemOutcome {
    /// Fraction of transactions that went bad.
    pub fn bad_rate(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.bad_experiences as f64 / self.transactions as f64
        }
    }
}

/// Runs the marketplace.
///
/// Each round one client requests service and picks, among servers not
/// flagged suspicious by `screening`, the one with the best trust value
/// (or a uniformly random server with probability `exploration`). Screen
/// verdicts are recomputed lazily every 50 transactions per server —
/// assessing on every pick would be realistic for a client-side library
/// but irrelevant to the measured outcomes.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run_marketplace(
    config: &EcosystemConfig,
    trust: &dyn TrustFunction,
    screening: Option<&dyn BehaviorTest>,
) -> Result<EcosystemOutcome, CoreError> {
    let total_servers = config.honest_servers + config.attackers;
    assert!(total_servers > 0, "need at least one server");
    let mut rng = hp_stats::seeded_rng(config.seed);

    // Build behaviors: honest servers span the quality range, attackers
    // hibernate behind near-perfect service.
    let mut behaviors: Vec<Box<dyn ServerBehavior>> = Vec::with_capacity(total_servers);
    for i in 0..config.honest_servers {
        let (lo, hi) = config.honest_p_range;
        let p = if config.honest_servers == 1 {
            (lo + hi) / 2.0
        } else {
            lo + (hi - lo) * i as f64 / (config.honest_servers - 1) as f64
        };
        behaviors.push(Box::new(HonestBehavior::new(p)?));
    }
    for _ in 0..config.attackers {
        behaviors.push(Box::new(PeriodicAttacker::new(0.95, 0.93, 1.0)));
    }

    let mut histories: Vec<TransactionHistory> =
        (0..total_servers).map(|_| TransactionHistory::new()).collect();
    let mut flagged: Vec<bool> = vec![false; total_servers];
    let mut last_screen: Vec<usize> = vec![0; total_servers];
    let mut per_server = vec![0usize; total_servers];

    let mut bad_experiences = 0usize;
    let mut attacker_harm = 0usize;
    let mut screened_out_picks = 0usize;

    for round in 0..config.rounds {
        // Refresh stale screening verdicts.
        if let Some(test) = screening {
            for s in 0..total_servers {
                if histories[s].len() >= last_screen[s] + 50 {
                    last_screen[s] = histories[s].len();
                    flagged[s] =
                        test.evaluate(&histories[s])?.outcome() == TestOutcome::Suspicious;
                }
            }
        }

        // A client arrives and picks a server.
        let client = ClientId::new(rng.random_range(0..config.clients.max(1)));
        let explore = rng.random::<f64>() < config.exploration;
        let pick = if explore {
            rng.random_range(0..total_servers)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for s in 0..total_servers {
                if flagged[s] {
                    screened_out_picks += 1;
                    continue;
                }
                let t = trust.trust(&histories[s]).value();
                if best.is_none_or(|(_, bt)| t > bt) {
                    best = Some((s, t));
                }
            }
            match best {
                Some((s, _)) => s,
                None => rng.random_range(0..total_servers),
            }
        };

        // The chosen server decides its behavior and serves.
        let trust_seen = trust.trust(&histories[pick]);
        let good = {
            let ctx = BehaviorContext {
                history: &histories[pick],
                trust: trust_seen,
                time: round as u64,
            };
            behaviors[pick].next_outcome(&ctx, &mut rng)
        };
        histories[pick].push(Feedback::new(
            round as u64,
            ServerId::new(pick as u64),
            client,
            Rating::from_good(good),
        ));
        per_server[pick] += 1;
        if !good {
            bad_experiences += 1;
            if pick >= config.honest_servers {
                attacker_harm += 1;
            }
        }
    }

    Ok(EcosystemOutcome {
        transactions: config.rounds,
        bad_experiences,
        attacker_harm,
        screened_out_picks,
        per_server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_core::testing::{BehaviorTestConfig, MultiBehaviorTest};
    use hp_core::trust::AverageTrust;

    fn screen() -> MultiBehaviorTest {
        MultiBehaviorTest::new(
            BehaviorTestConfig::builder()
                .calibration_trials(300)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn marketplace_runs_deterministically() {
        let config = EcosystemConfig {
            rounds: 800,
            ..Default::default()
        };
        let avg = AverageTrust::default();
        let a = run_marketplace(&config, &avg, None).unwrap();
        let b = run_marketplace(&config, &avg, None).unwrap();
        assert_eq!(a.bad_experiences, b.bad_experiences);
        assert_eq!(a.per_server, b.per_server);
        assert_eq!(a.transactions, 800);
    }

    #[test]
    fn screening_reduces_attacker_harm() {
        let config = EcosystemConfig {
            rounds: 6000,
            seed: 11,
            ..Default::default()
        };
        let avg = AverageTrust::default();
        let unscreened = run_marketplace(&config, &avg, None).unwrap();
        let test = screen();
        let screened = run_marketplace(&config, &avg, Some(&test)).unwrap();
        assert!(
            screened.attacker_harm < unscreened.attacker_harm,
            "screening must cut attacker harm: {} vs {}",
            screened.attacker_harm,
            unscreened.attacker_harm
        );
        assert!(screened.screened_out_picks > 0);
    }

    #[test]
    fn without_attackers_screening_is_nearly_free() {
        let config = EcosystemConfig {
            attackers: 0,
            rounds: 4000,
            seed: 5,
            ..Default::default()
        };
        let avg = AverageTrust::default();
        let unscreened = run_marketplace(&config, &avg, None).unwrap();
        let test = screen();
        let screened = run_marketplace(&config, &avg, Some(&test)).unwrap();
        // Honest-only market: bad rates within a small absolute gap.
        let gap = (screened.bad_rate() - unscreened.bad_rate()).abs();
        assert!(gap < 0.03, "screening overhead on honest market: {gap}");
    }

    #[test]
    fn traffic_concentrates_on_good_servers() {
        // Trust-greedy selection is winner-take-all, so any single seed may
        // crown one lucky server; aggregate several runs and compare the
        // better half of the market (p in [0.86, 0.92]) against the worse
        // half (p in [0.80, 0.86)) instead of one best-vs-worst pair.
        let avg = AverageTrust::default();
        let mut top_half = 0usize;
        let mut bottom_half = 0usize;
        for seed in 0..5 {
            let config = EcosystemConfig {
                attackers: 0,
                rounds: 5000,
                seed,
                ..Default::default()
            };
            let outcome = run_marketplace(&config, &avg, None).unwrap();
            bottom_half += outcome.per_server[..8].iter().sum::<usize>();
            top_half += outcome.per_server[8..].iter().sum::<usize>();
        }
        assert!(
            top_half > bottom_half,
            "better-half traffic {top_half} vs worse-half {bottom_half}"
        );
    }
}
