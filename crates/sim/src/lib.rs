//! # hp-sim — agent simulation for reputation systems
//!
//! The evaluation substrate for the honest-players paper: honest service
//! providers, the attacker strategies of §3 and §4, the probabilistic
//! client-arrival model of §5.2, and the experiment drivers behind every
//! figure in §5.
//!
//! ## Components
//!
//! * [`behavior`] — the [`behavior::ServerBehavior`] trait and honest
//!   players ([`behavior::HonestBehavior`]).
//! * [`attacker`] — hibernating, periodic, windowed-periodic and
//!   cheat-and-run attackers as pluggable behaviors, plus the *strategic*
//!   attacker drivers ([`scenario`]) that consult the deployed trust
//!   function and behavior test before every move.
//! * [`clients`] — the a₁/a₂/a₃ client-arrival model.
//! * [`engine`] — a small discrete-event loop that runs any behavior
//!   against a feedback store and records the trust trajectory.
//! * [`scenario`] — attack-cost experiments (Figs. 3–6).
//! * [`detection`] — detection-rate experiments (Fig. 7).
//! * [`ecosystem`] — a whole-marketplace welfare simulation (beyond the
//!   paper: does screening reduce the harm clients actually experience?).
//! * [`workload`] — synthetic history generators shared by tests/benches.
//!
//! ## Example: an honest player passes, a hibernator does not
//!
//! ```
//! use hp_core::testing::{BehaviorTest, BehaviorTestConfig, MultiBehaviorTest, TestOutcome};
//! use hp_sim::workload;
//!
//! let test = MultiBehaviorTest::new(BehaviorTestConfig::default())?;
//! let honest = workload::honest_history(1000, 0.95, 7);
//! assert_ne!(test.evaluate(&honest)?.outcome(), TestOutcome::Suspicious);
//!
//! let hibernator = workload::hibernating_history(1000, 0.95, 25, 7);
//! assert_eq!(test.evaluate(&hibernator)?.outcome(), TestOutcome::Suspicious);
//! # Ok::<(), hp_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod behavior;
pub mod clients;
pub mod detection;
pub mod ecosystem;
pub mod engine;
pub mod metrics;
pub mod scenario;
pub mod workload;

pub use behavior::{BehaviorContext, HonestBehavior, ServerBehavior};
pub use clients::{ClientArrivalConfig, ClientPopulation, Experience};
pub use ecosystem::{run_marketplace, EcosystemConfig, EcosystemOutcome};
pub use engine::{Simulation, SimulationConfig, SimulationOutcome};
pub use metrics::{AttackCostResult, CollusionCostResult};
pub use scenario::{attack_cost, collusion_attack_cost, AttackCostConfig, CollusionConfig, Screening};
