//! The probabilistic client-arrival model of §5.2.
//!
//! "If a client c has never gotten service from the server s before, then
//! the probability for c to request service from s is a₁·p, where a₁ is a
//! constant and p is the current reputation of s. Similarly, we have
//! parameters a₂ (and a₃) for those clients who recently got a good (or a
//! bad) service from s. In the experiment, we set a₁ = 0.5, a₂ = 0.9 and
//! a₃ = 0.2."

use hp_core::ClientId;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// A client's most recent experience with the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Experience {
    /// Never transacted with this server.
    #[default]
    Never,
    /// The last transaction was satisfactory.
    Good,
    /// The last transaction was unsatisfactory.
    Bad,
}

/// Arrival probabilities per experience class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientArrivalConfig {
    /// Multiplier on the server's reputation for first-time clients (a₁).
    pub a1: f64,
    /// Arrival probability after a good experience (a₂).
    pub a2: f64,
    /// Arrival probability after a bad experience (a₃).
    pub a3: f64,
}

impl Default for ClientArrivalConfig {
    /// The paper's values: a₁ = 0.5, a₂ = 0.9, a₃ = 0.2.
    fn default() -> Self {
        ClientArrivalConfig {
            a1: 0.5,
            a2: 0.9,
            a3: 0.2,
        }
    }
}

/// The population of potential clients and their experience state.
///
/// # Examples
///
/// ```
/// use hp_sim::{ClientArrivalConfig, ClientPopulation, Experience};
/// use hp_core::ClientId;
///
/// let mut pop = ClientPopulation::new(100, ClientArrivalConfig::default());
/// let mut rng = hp_stats::seeded_rng(1);
/// // A server with perfect reputation draws roughly a1·p = 50% of the
/// // never-served population each round.
/// let arrivals = pop.arrivals(1.0, &mut rng);
/// assert!(arrivals.len() > 30 && arrivals.len() < 70);
///
/// pop.record(ClientId::new(0), false);
/// assert_eq!(pop.experience(ClientId::new(0)), Experience::Bad);
/// ```
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    size: u64,
    config: ClientArrivalConfig,
    experience: HashMap<ClientId, Experience>,
}

impl ClientPopulation {
    /// Creates a population of clients `c0 … c(size−1)`, none of whom have
    /// transacted yet.
    pub fn new(size: u64, config: ClientArrivalConfig) -> Self {
        ClientPopulation {
            size,
            config,
            experience: HashMap::new(),
        }
    }

    /// Number of potential clients.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// All client ids in the population.
    pub fn client_ids(&self) -> impl Iterator<Item = ClientId> {
        (0..self.size).map(ClientId::new)
    }

    /// The recorded experience of `client`.
    pub fn experience(&self, client: ClientId) -> Experience {
        self.experience.get(&client).copied().unwrap_or_default()
    }

    /// Records the outcome of a transaction with `client`.
    pub fn record(&mut self, client: ClientId, good: bool) {
        self.experience.insert(
            client,
            if good { Experience::Good } else { Experience::Bad },
        );
    }

    /// The probability that `client` requests service given the server's
    /// current reputation `p`.
    pub fn arrival_probability(&self, client: ClientId, reputation: f64) -> f64 {
        match self.experience(client) {
            Experience::Never => (self.config.a1 * reputation).clamp(0.0, 1.0),
            Experience::Good => self.config.a2,
            Experience::Bad => self.config.a3,
        }
    }

    /// Samples the set of clients requesting service this round.
    pub fn arrivals(&self, reputation: f64, rng: &mut StdRng) -> Vec<ClientId> {
        self.client_ids()
            .filter(|&c| rng.random::<f64>() < self.arrival_probability(c, reputation))
            .collect()
    }

    /// Number of clients that have never been served.
    pub fn never_served(&self) -> u64 {
        self.size - self.experience.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_probability_by_class() {
        let mut pop = ClientPopulation::new(10, ClientArrivalConfig::default());
        let fresh = ClientId::new(0);
        assert!((pop.arrival_probability(fresh, 0.8) - 0.4).abs() < 1e-12);
        pop.record(fresh, true);
        assert!((pop.arrival_probability(fresh, 0.8) - 0.9).abs() < 1e-12);
        pop.record(fresh, false);
        assert!((pop.arrival_probability(fresh, 0.8) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn new_client_arrival_scales_with_reputation() {
        let pop = ClientPopulation::new(2000, ClientArrivalConfig::default());
        let mut rng = hp_stats::seeded_rng(7);
        let low = pop.arrivals(0.2, &mut rng).len() as f64 / 2000.0;
        let high = pop.arrivals(1.0, &mut rng).len() as f64 / 2000.0;
        assert!((low - 0.1).abs() < 0.03, "low-rep arrival rate {low}");
        assert!((high - 0.5).abs() < 0.04, "high-rep arrival rate {high}");
    }

    #[test]
    fn burned_clients_rarely_return() {
        let mut pop = ClientPopulation::new(500, ClientArrivalConfig::default());
        for c in pop.client_ids().collect::<Vec<_>>() {
            pop.record(c, false);
        }
        let mut rng = hp_stats::seeded_rng(8);
        let rate = pop.arrivals(1.0, &mut rng).len() as f64 / 500.0;
        assert!((rate - 0.2).abs() < 0.05, "bad-experience arrival rate {rate}");
        assert_eq!(pop.never_served(), 0);
    }

    #[test]
    fn experience_defaults_to_never() {
        let pop = ClientPopulation::new(3, ClientArrivalConfig::default());
        assert_eq!(pop.experience(ClientId::new(2)), Experience::Never);
        assert_eq!(pop.never_served(), 3);
    }
}
