//! Cross-attacker integration: every attacker archetype against every
//! scheme, verifying the detection matrix the paper's narrative implies.
//!
//! | attacker | single | multi |
//! |----------|--------|-------|
//! | honest | pass | pass |
//! | hibernating (long prep) | often missed | caught |
//! | metronome periodic | caught | caught |
//! | randomized periodic (wide window) | missed | missed (≈ honest) |

use hp_core::testing::{
    shared_calibrator, BehaviorTest, BehaviorTestConfig, MultiBehaviorTest, SingleBehaviorTest,
    TestOutcome,
};
use hp_sim::workload;
use std::sync::Arc;

struct Suite {
    single: SingleBehaviorTest,
    multi: MultiBehaviorTest,
}

fn suite() -> Suite {
    let config = BehaviorTestConfig::builder()
        .calibration_trials(500)
        .build()
        .unwrap();
    let cal = shared_calibrator(&config).unwrap();
    Suite {
        single: SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal)).unwrap(),
        multi: MultiBehaviorTest::with_calibrator(config, cal).unwrap(),
    }
}

fn rate(
    test: &dyn BehaviorTest,
    mk: impl Fn(u64) -> hp_core::TransactionHistory,
    trials: u64,
) -> f64 {
    let mut flagged = 0;
    for seed in 0..trials {
        if test.evaluate(&mk(seed)).unwrap().outcome() == TestOutcome::Suspicious {
            flagged += 1;
        }
    }
    flagged as f64 / trials as f64
}

#[test]
fn honest_players_pass_both_schemes() {
    let s = suite();
    let mk = |seed| workload::honest_history(900, 0.92, seed);
    assert!(rate(&s.single, mk, 25) < 0.2, "single FPR");
    assert!(rate(&s.multi, mk, 25) < 0.2, "multi FPR");
}

#[test]
fn long_prep_hibernator_separates_the_schemes() {
    let s = suite();
    // 4000 honest transactions dilute 25 attacks to 0.6% of the history:
    // invisible to the whole-history test, glaring in recent suffixes.
    let mk = |seed| workload::hibernating_history(4000, 0.95, 25, seed);
    let single_rate = rate(&s.single, mk, 20);
    let multi_rate = rate(&s.multi, mk, 20);
    assert!(
        multi_rate > 0.9,
        "multi must catch diluted hibernators: {multi_rate}"
    );
    assert!(
        multi_rate > single_rate,
        "multi ({multi_rate}) must beat single ({single_rate}) here"
    );
}

#[test]
fn metronome_periodic_is_caught_by_both() {
    let s = suite();
    let mk = |seed| workload::periodic_history(1000, 10, 0.1, seed);
    assert!(rate(&s.single, mk, 20) > 0.9);
    assert!(rate(&s.multi, mk, 20) > 0.9);
}

#[test]
fn wide_window_periodic_converges_to_honesty() {
    // The paper's own closing point for Fig. 7: an attacker spread thin
    // enough is statistically an honest player with lower p.
    let s = suite();
    let mk = |seed| workload::periodic_history(1000, 100, 0.1, seed);
    assert!(rate(&s.single, mk, 20) < 0.35);
    assert!(rate(&s.multi, mk, 20) < 0.35);
}

#[test]
fn colluding_history_is_only_caught_by_reordering() {
    use hp_core::testing::CollusionResilientTest;
    let config = BehaviorTestConfig::builder()
        .calibration_trials(500)
        .build()
        .unwrap();
    let collusion = CollusionResilientTest::new(config).unwrap();
    let s = suite();
    // Interleaved colluder praise: chronological stream is i.i.d.-like.
    let mk = |seed| {
        use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
        use rand::RngExt;
        let mut rng = hp_stats::seeded_rng(seed);
        let mut h = TransactionHistory::new();
        for t in 0..800u64 {
            let fb = if rng.random::<f64>() < 0.12 {
                Feedback::new(
                    t,
                    ServerId::new(1),
                    ClientId::new(10_000 + t),
                    Rating::from_good(rng.random::<f64>() < 0.15),
                )
            } else {
                Feedback::new(
                    t,
                    ServerId::new(1),
                    ClientId::new(rng.random_range(0..5)),
                    Rating::Positive,
                )
            };
            h.push(fb);
        }
        h
    };
    let chrono_rate = rate(&s.single, mk, 15);
    let mut collusion_flagged = 0;
    for seed in 0..15 {
        if collusion.evaluate(&mk(seed)).unwrap().outcome() == TestOutcome::Suspicious {
            collusion_flagged += 1;
        }
    }
    assert!(
        chrono_rate < 0.4,
        "chronological test mostly fooled: {chrono_rate}"
    );
    assert!(
        collusion_flagged >= 13,
        "reordered test catches the clique: {collusion_flagged}/15"
    );
}
