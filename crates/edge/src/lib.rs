//! hp-edge: a dependency-free HTTP/1.1 network front-end for the
//! sharded reputation service.
//!
//! `hp-service` answers assessments behind in-process channels; this
//! crate puts a socket in front of it so the paper's pipeline can be
//! operated — and load-tested — as a network service. The design goal
//! is *boring robustness* on hostile input with zero new dependencies:
//! the HTTP layer is hand-rolled over `std::net`, bounded everywhere
//! (head size, body size, head/body delivery deadlines, pending
//! connections), and every way a client can misbehave maps to a typed
//! status instead of a panicked worker or a wedged shard.
//!
//! # Endpoints
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/ingest` | POST | Feedback lines `time,server,client,±`; `429` + exact counts when shed |
//! | `/assess/{id}` | GET | One verdict; degraded + staleness-stamped past the deadline |
//! | `/assess_traced/{id}` | GET | Verdict + audit record (phase-1 statistics, raw bits) |
//! | `/assess` | POST | Batched verdicts, one server id per line |
//! | `/metrics` | GET | Service Prometheus exposition + `hp_edge_*` socket counters + `hp_slo_*` burn rates |
//! | `/healthz` | GET | `warming`/`ready`/`degraded`/`draining` + shard state (degraded on a burning fast SLO window) |
//! | `/version` | GET | Build identity: crate version, git hash, trust model, shard count |
//! | `/debug/slow` | GET | Slowest captured span trees per route |
//! | `/debug/trace/{id}` | GET | One span tree by trace ID (from an `x-hp-trace` echo or a histogram exemplar) |
//!
//! Service requests carry a trace ID (client-supplied `x-hp-trace`
//! header or edge-generated), echoed back on the response; span trees
//! attribute the request's time across admission wait, edge read, shard
//! queue wait, compute, and response write.
//!
//! # Quick start
//!
//! ```
//! use hp_edge::{EdgeConfig, EdgeServer};
//! use hp_service::{ReputationService, ServiceConfig};
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//!
//! let service_config = ServiceConfig::default()
//!     .with_shards(2)
//!     .with_test(
//!         hp_core::testing::BehaviorTestConfig::builder()
//!             .calibration_trials(200)
//!             .build()?,
//!     )
//!     .with_prewarm_grid(vec![], vec![]);
//! let service = Arc::new(ReputationService::new(service_config)?);
//! let edge = EdgeServer::serve(service, EdgeConfig::default().with_workers(2))?;
//!
//! let mut conn = std::net::TcpStream::connect(edge.local_addr())?;
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")?;
//! let mut response = String::new();
//! conn.read_to_string(&mut response)?;
//! assert!(response.starts_with("HTTP/1.1 200"));
//! edge.drain();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// `signals` registers a SIGTERM handler through the raw C `signal`
// symbol (the crate is std-only); that module is the only unsafe code.
#![deny(unsafe_op_in_unsafe_fn)]

mod config;
pub mod http;
pub mod metrics;
mod server;
pub mod signals;
pub mod wire;

pub use config::EdgeConfig;
pub use metrics::EdgeMetrics;
pub use server::EdgeServer;
