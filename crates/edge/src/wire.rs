//! Wire formats: the feedback line format for ingest bodies and the
//! JSON renderers for every response the edge emits.
//!
//! The crate is dependency-free, so both directions are hand-rolled and
//! deliberately small:
//!
//! * **Ingest bodies** are newline-separated `time,server,client,rating`
//!   records (`rating` ∈ `+ - 1 0`). One line parses to one
//!   [`Feedback`]; a body carries any number of lines, which is how the
//!   load harness sustains hundreds of thousands of feedbacks per second
//!   over a few hundred requests.
//! * **Responses** are flat JSON objects rendered by string building.
//!   Trust values and phase-1 statistics additionally carry their raw
//!   IEEE-754 bits (`*_bits` fields, hex) so clients — and the e2e
//!   equivalence suite — can compare verdicts *bit-exactly*, which a
//!   decimal float round-trip cannot guarantee.
//!
//! The tiny `json_*` field extractors at the bottom exist for the tests
//! and `hp-load`, which need to read those flat objects back without a
//! JSON dependency. They are scanners for the exact shapes this module
//! produces, not a JSON parser.

use hp_core::twophase::Assessment;
use hp_core::{ClientId, Feedback, Rating, ServerId};
use hp_service::obs::{format_trace_id, SpanTree};
use hp_service::{
    BootStatus, CalibrationReadiness, DegradedAssessment, DegradedReason, IngestOutcome,
    TracedAssessment,
};
use std::sync::Arc;

/// Why an ingest body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub reason: &'static str,
}

/// Parses a newline-separated feedback body.
///
/// Each line is `time,server,client,rating` with `rating` one of
/// `+`/`1` (good) or `-`/`0` (bad). Blank lines and `#` comments are
/// skipped. The whole body is rejected on the first bad record —
/// partial ingest of a malformed batch would make the shed/accepted
/// accounting ambiguous.
///
/// # Errors
///
/// [`ParseError`] pinpointing the first offending line.
pub fn parse_feedback_body(body: &[u8]) -> Result<Vec<Feedback>, ParseError> {
    let text = std::str::from_utf8(body).map_err(|_| ParseError {
        line: 0,
        reason: "body is not UTF-8",
    })?;
    let mut feedbacks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason| ParseError {
            line: idx + 1,
            reason,
        };
        let mut fields = line.split(',');
        let time = fields
            .next()
            .and_then(|f| f.trim().parse::<u64>().ok())
            .ok_or_else(|| err("bad time field"))?;
        let server = fields
            .next()
            .and_then(|f| f.trim().parse::<u64>().ok())
            .ok_or_else(|| err("bad server field"))?;
        let client = fields
            .next()
            .and_then(|f| f.trim().parse::<u64>().ok())
            .ok_or_else(|| err("bad client field"))?;
        let rating = match fields.next().map(str::trim) {
            Some("+") | Some("1") => Rating::from_good(true),
            Some("-") | Some("0") => Rating::from_good(false),
            _ => return Err(err("bad rating field (want + - 1 0)")),
        };
        if fields.next().is_some() {
            return Err(err("trailing fields"));
        }
        feedbacks.push(Feedback::new(
            time,
            ServerId::new(server),
            ClientId::new(client),
            rating,
        ));
    }
    Ok(feedbacks)
}

/// Renders one feedback in the ingest line format (the inverse of
/// [`parse_feedback_body`]); used by the load generator.
pub fn render_feedback_line(out: &mut String, feedback: &Feedback) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{},{},{},{}",
        feedback.time,
        feedback.server.value(),
        feedback.client.value(),
        if feedback.is_good() { '+' } else { '-' }
    );
}

/// `{"accepted":N,"shed":M}`
pub fn render_ingest(outcome: &IngestOutcome) -> String {
    format!(
        "{{\"accepted\":{},\"shed\":{}}}",
        outcome.accepted, outcome.shed
    )
}

fn push_f64_with_bits(out: &mut String, name: &str, value: f64) {
    use std::fmt::Write;
    let _ = write!(
        out,
        ",\"{name}\":{value},\"{name}_bits\":\"{:016x}\"",
        value.to_bits()
    );
}

fn verdict_name(assessment: &Assessment) -> &'static str {
    match assessment {
        Assessment::Accepted { .. } => "accepted",
        Assessment::Rejected { .. } => "rejected",
        Assessment::NeedsReview { .. } => "needs_review",
    }
}

/// Renders a (fresh) assessment:
/// `{"server":S,"verdict":"accepted","degraded":false,"trust":…,"trust_bits":"…"}`
/// (`trust` is absent for rejections, which produce no trust value).
pub fn render_assessment(server: ServerId, assessment: &Assessment) -> String {
    let mut out = format!(
        "{{\"server\":{},\"verdict\":\"{}\",\"degraded\":false",
        server.value(),
        verdict_name(assessment)
    );
    if let Some(trust) = assessment.trust() {
        push_f64_with_bits(&mut out, "trust", trust.value());
    }
    out.push('}');
    out
}

/// Renders a degraded assessment: the verdict fields of
/// [`render_assessment`] plus `"degraded":true`, the exact staleness in
/// feedbacks, and why the fresh path did not answer.
pub fn render_degraded(server: ServerId, degraded: &DegradedAssessment) -> String {
    let reason = match degraded.reason {
        DegradedReason::DeadlineExceeded => "deadline_exceeded",
        DegradedReason::WorkerRestarting => "worker_restarting",
        DegradedReason::ShardUnavailable => "shard_unavailable",
    };
    let mut out = format!(
        "{{\"server\":{},\"verdict\":\"{}\",\"degraded\":true,\"staleness\":{},\"computed_at_version\":{},\"latest_version\":{},\"reason\":\"{}\"",
        server.value(),
        verdict_name(&degraded.assessment),
        degraded.staleness(),
        degraded.computed_at_version,
        degraded.latest_version,
        reason,
    );
    if let Some(trust) = degraded.assessment.trust() {
        push_f64_with_bits(&mut out, "trust", trust.value());
    }
    out.push('}');
    out
}

/// Renders a traced assessment: the fields of [`render_assessment`]
/// plus the audit record (scheme, phase-1 statistics with raw bits,
/// cache provenance).
pub fn render_traced(traced: &TracedAssessment) -> String {
    use std::fmt::Write;
    let trace = &traced.trace;
    let mut out = format!(
        "{{\"server\":{},\"verdict\":\"{}\",\"degraded\":false,\"scheme\":\"{}\",\"outcome\":\"{}\",\"transactions\":{},\"windows\":{},\"suffixes_tested\":{},\"confidence\":{},\"from_cache\":{}",
        trace.server.value(),
        verdict_name(&traced.assessment),
        trace.scheme,
        trace.outcome,
        trace.transactions,
        trace.windows,
        trace.suffixes_tested,
        trace.confidence,
        trace.from_cache,
    );
    if let Some(len) = trace.binding_suffix_len {
        let _ = write!(out, ",\"binding_suffix_len\":{len}");
    }
    if let Some(trust) = trace.trust {
        push_f64_with_bits(&mut out, "trust", trust);
    }
    if let Some(p_hat) = trace.p_hat {
        push_f64_with_bits(&mut out, "p_hat", p_hat);
    }
    if let Some(distance) = trace.distance {
        push_f64_with_bits(&mut out, "distance", distance);
    }
    if let Some(threshold) = trace.threshold {
        push_f64_with_bits(&mut out, "threshold", threshold);
    }
    if let Some(margin) = trace.margin {
        push_f64_with_bits(&mut out, "margin", margin);
    }
    out.push('}');
    out
}

/// Renders the batch-assess response: a JSON array of per-server
/// objects, errors rendered in place so one failed server does not
/// sink the batch.
pub fn render_batch(
    answers: &[(ServerId, Result<std::sync::Arc<Assessment>, hp_core::CoreError>)],
) -> String {
    let mut out = String::from("[");
    for (idx, (server, answer)) in answers.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        match answer {
            Ok(assessment) => out.push_str(&render_assessment(*server, assessment)),
            Err(e) => out.push_str(&render_error_for(*server, &e.to_string())),
        }
    }
    out.push(']');
    out
}

/// `{"server":S,"error":"…"}`
fn render_error_for(server: ServerId, message: &str) -> String {
    format!(
        "{{\"server\":{},\"error\":\"{}\"}}",
        server.value(),
        escape(message)
    )
}

/// `{"error":"…","detail":"…"}`
pub fn render_error(error: &str, detail: &str) -> String {
    format!(
        "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(error),
        escape(detail)
    )
}

/// `{"status":"…","shards":N,"failed_shards":M,…}` for `/healthz`.
/// `history_bytes` is the per-tier residency `(hot_suffix, summary,
/// spilled)` — the runbook signal for sizing `--spill-budget-bytes`
/// (spilled counts fault-in cost, not disk usage). `calibration`
/// (absent while draining) reports whether the interpolated threshold
/// surface is configured and serving — the runbook signal for
/// `--calibration-surface` deployments: `surface_configured` true with
/// `surface_ready` false means thresholds fall back to the oracle path.
pub fn render_health(
    status: &str,
    shards: usize,
    failed_shards: u64,
    shard_restarts: u64,
    tracked_servers: usize,
    history_bytes: (u64, u64, u64),
    calibration: Option<CalibrationReadiness>,
) -> String {
    use std::fmt::Write;
    let (hot_suffix, summary, spilled) = history_bytes;
    let mut out = format!(
        "{{\"status\":\"{status}\",\"shards\":{shards},\"failed_shards\":{failed_shards},\"shard_restarts\":{shard_restarts},\"tracked_servers\":{tracked_servers},\"history_bytes\":{{\"hot_suffix\":{hot_suffix},\"summary\":{summary},\"spilled\":{spilled}}}"
    );
    if let Some(cal) = calibration {
        let _ = write!(
            out,
            ",\"calibration\":{{\"surface_configured\":{},\"surface_ready\":{},\"cache_entries\":{}}}",
            cal.surface_configured, cal.surface_ready, cal.cache_entries,
        );
    }
    out.push('}');
    out
}

/// `/healthz` body while the service is still booting: recovery
/// progress, so an operator can tell a hung boot from a long journal
/// replay. `snapshot_loaded` says whether any shard recovered from a
/// snapshot (vs. full replay); `replayed_records`/`journal_records` is
/// the replay progress fraction.
pub fn render_warming_health(status: &str, boot: &BootStatus) -> String {
    format!(
        "{{\"status\":\"{status}\",\"snapshot_loaded\":{},\"snapshots_loaded\":{},\"replayed_records\":{},\"journal_records\":{},\"shards_ready\":{},\"shards_total\":{}}}",
        boot.snapshots_loaded > 0,
        boot.snapshots_loaded,
        boot.replayed_records,
        boot.journal_records,
        boot.shards_ready,
        boot.shards_total,
    )
}

/// Renders one span tree:
/// `{"trace":"…","endpoint":"/assess","seq":N,"total_ns":N,"stage_sum_ns":N,"detail":"…","spans":[…]}`.
/// Each span is `{"name":"…","start_ns":N,"duration_ns":N,"detail":"…"}`
/// with `start_ns` the offset from the request start; `detail` carries
/// verdict and cache/threshold provenance.
pub fn render_span_tree(tree: &SpanTree) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "{{\"trace\":\"{}\",\"endpoint\":\"{}\",\"seq\":{},\"total_ns\":{},\"stage_sum_ns\":{},\"detail\":\"{}\",\"spans\":[",
        format_trace_id(tree.trace),
        escape(tree.endpoint),
        tree.seq,
        tree.total_ns,
        tree.stage_sum_ns(),
        escape(&tree.detail),
    );
    for (idx, span) in tree.spans.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{},\"detail\":\"{}\"}}",
            escape(span.name),
            span.start_ns,
            span.duration_ns,
            escape(&span.detail),
        );
    }
    out.push_str("]}");
    out
}

/// Renders the `/debug/slow` body: the slowest captured span trees per
/// endpoint, slowest first.
pub fn render_slow(slowest: &[(&'static str, Vec<Arc<SpanTree>>)]) -> String {
    let mut out = String::from("{\"endpoints\":[");
    for (idx, (endpoint, trees)) in slowest.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"endpoint\":\"{}\",\"slowest\":[", escape(endpoint)));
        for (tdx, tree) in trees.iter().enumerate() {
            if tdx > 0 {
                out.push(',');
            }
            out.push_str(&render_span_tree(tree));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the `/version` body. `service` carries the service's build
/// labels (trust model, shard count) once it is constructed; while
/// warming only the edge's own build identity is known.
pub fn render_version(state: &str, service: Option<(&str, usize)>) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "{{\"name\":\"hp-edge\",\"version\":\"{}\",\"git\":\"{}\",\"state\":\"{}\"",
        env!("CARGO_PKG_VERSION"),
        option_env!("HP_GIT_HASH").unwrap_or("unknown"),
        escape(state),
    );
    if let Some((trust, shards)) = service {
        let _ = write!(out, ",\"trust\":\"{}\",\"shards\":{shards}", escape(trust));
    }
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---- flat-JSON field extraction (for tests and hp-load) ----

/// Extracts the raw value text of `"key":<value>` from a flat JSON
/// object rendered by this module. Not a JSON parser: it relies on the
/// renderers never nesting objects or embedding `,"key":` inside
/// strings.
pub fn json_raw<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest
            .find([',', '}', ']'])
            .unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// `json_raw` parsed as `u64`.
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    json_raw(body, key)?.parse().ok()
}

/// The raw-bits twin of an `f64` field, decoded back to the exact
/// float: reads `"<key>_bits":"…"` as hex and transmutes.
pub fn json_f64_bits(body: &str, key: &str) -> Option<f64> {
    let bits = json_raw(body, &format!("{key}_bits"))?;
    u64::from_str_radix(bits, 16).ok().map(f64::from_bits)
}

/// `json_raw` as a string field.
pub fn json_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    json_raw(body, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_body_round_trips() {
        let feedbacks = vec![
            Feedback::new(0, ServerId::new(1), ClientId::new(2), Rating::from_good(true)),
            Feedback::new(1, ServerId::new(1), ClientId::new(3), Rating::from_good(false)),
        ];
        let mut body = String::from("# header comment\n\n");
        for f in &feedbacks {
            render_feedback_line(&mut body, f);
        }
        assert_eq!(parse_feedback_body(body.as_bytes()).unwrap(), feedbacks);
    }

    #[test]
    fn accepts_numeric_ratings() {
        let parsed = parse_feedback_body(b"5,1,2,1\n6,1,2,0\n").unwrap();
        assert!(parsed[0].is_good());
        assert!(!parsed[1].is_good());
    }

    #[test]
    fn rejects_bad_records_with_line_numbers() {
        for (body, line) in [
            (&b"1,2,3,+\nbanana"[..], 2),
            (b"1,2,3,*", 1),
            (b"1,2,3", 1),
            (b"1,2,3,+,9", 1),
            (b"x,2,3,+", 1),
        ] {
            let err = parse_feedback_body(body).unwrap_err();
            assert_eq!(err.line, line, "body {:?}", std::str::from_utf8(body));
        }
        assert_eq!(parse_feedback_body(b"\xff\xfe").unwrap_err().line, 0);
    }

    #[test]
    fn json_extraction_reads_back_rendered_fields() {
        let outcome = IngestOutcome {
            accepted: 12,
            shed: 3,
        };
        let body = render_ingest(&outcome);
        assert_eq!(json_u64(&body, "accepted"), Some(12));
        assert_eq!(json_u64(&body, "shed"), Some(3));

        let health = render_health(
            "ready",
            4,
            0,
            1,
            900,
            (4096, 512, 8192),
            Some(CalibrationReadiness {
                surface_configured: true,
                surface_ready: true,
                cache_entries: 615,
            }),
        );
        assert_eq!(json_str(&health, "status"), Some("ready"));
        assert_eq!(json_u64(&health, "shards"), Some(4));
        assert_eq!(json_u64(&health, "shard_restarts"), Some(1));
        assert_eq!(json_u64(&health, "hot_suffix"), Some(4096));
        assert_eq!(json_u64(&health, "summary"), Some(512));
        assert_eq!(json_u64(&health, "spilled"), Some(8192));
        assert_eq!(json_str(&health, "surface_configured"), Some("true"));
        assert_eq!(json_str(&health, "surface_ready"), Some("true"));
        assert_eq!(json_u64(&health, "cache_entries"), Some(615));

        let draining = render_health("draining", 0, 0, 0, 0, (0, 0, 0), None);
        assert!(!draining.contains("calibration"), "{draining}");

        let warming = render_warming_health(
            "warming",
            &BootStatus {
                journal_records: 1000,
                replayed_records: 400,
                snapshots_loaded: 1,
                shards_total: 2,
                shards_ready: 1,
            },
        );
        assert_eq!(json_str(&warming, "status"), Some("warming"));
        assert_eq!(json_str(&warming, "snapshot_loaded"), Some("true"));
        assert_eq!(json_u64(&warming, "replayed_records"), Some(400));
        assert_eq!(json_u64(&warming, "journal_records"), Some(1000));
        assert_eq!(json_u64(&warming, "shards_ready"), Some(1));
        assert_eq!(json_u64(&warming, "shards_total"), Some(2));
    }

    #[test]
    fn trust_bits_round_trip_exactly() {
        // A value with no short decimal representation.
        let trust = 0.1f64 + 0.2f64.powi(3);
        let body = format!(
            "{{\"trust\":{trust},\"trust_bits\":\"{:016x}\"}}",
            trust.to_bits()
        );
        assert_eq!(json_f64_bits(&body, "trust"), Some(trust));
        assert_eq!(json_f64_bits(&body, "trust").unwrap().to_bits(), trust.to_bits());
    }

    #[test]
    fn error_rendering_escapes_quotes() {
        let body = render_error("bad request", "line 3: got \"banana\"");
        assert!(body.contains("\\\"banana\\\""));
        assert_eq!(json_str(&body, "error"), Some("bad request"));
    }

    #[test]
    fn span_trees_render_with_hex_trace_and_stage_sum() {
        use hp_service::obs::SpanRecord;
        let tree = SpanTree {
            trace: 0xab,
            seq: 7,
            endpoint: "/assess",
            total_ns: 5_000,
            detail: "verdict=accepted cache_hit=true".into(),
            spans: vec![
                SpanRecord {
                    name: "edge_read",
                    start_ns: 0,
                    duration_ns: 1_000,
                    detail: "".into(),
                },
                SpanRecord {
                    name: "queue_wait",
                    start_ns: 1_000,
                    duration_ns: 3_000,
                    detail: "shard=1".into(),
                },
            ],
        };
        let body = render_span_tree(&tree);
        assert_eq!(json_str(&body, "trace"), Some("00000000000000ab"));
        assert_eq!(json_u64(&body, "total_ns"), Some(5_000));
        assert_eq!(json_u64(&body, "stage_sum_ns"), Some(4_000));
        assert!(body.contains("\"name\":\"queue_wait\""), "{body}");
        assert!(body.contains("\"detail\":\"shard=1\""), "{body}");

        let slow = render_slow(&[("/assess", vec![Arc::new(tree)]), ("/ingest", vec![])]);
        assert!(slow.contains("\"endpoint\":\"/assess\""), "{slow}");
        assert!(slow.contains("\"slowest\":[]"), "{slow}");
    }

    #[test]
    fn version_renders_edge_and_service_identity() {
        let body = render_version("ready", Some(("weighted(λ=0.9)", 4)));
        assert_eq!(json_str(&body, "name"), Some("hp-edge"));
        assert_eq!(json_str(&body, "state"), Some("ready"));
        assert_eq!(json_u64(&body, "shards"), Some(4));
        assert!(body.contains("\"version\":\""));
        let warming = render_version("warming", None);
        assert!(!warming.contains("shards"), "{warming}");
    }
}
