//! The edge server: acceptor, worker pool, router, and lifecycle.
//!
//! ```text
//!            ┌──────────┐   bounded channel    ┌──────────┐
//!  TCP ───▶ │ acceptor  │ ───(admission)────▶ │ worker×N  │ ──▶ ReputationService
//!            └──────────┘   Full ⇒ canned 503  └──────────┘      (sharded core)
//! ```
//!
//! One acceptor thread accepts connections and offers them to a
//! *bounded* channel — connection-level admission control. When every
//! worker is busy and the pending queue is full, the acceptor answers
//! `503` itself and closes, so overload produces fast typed refusals
//! instead of unbounded queueing. Each worker serves one connection at
//! a time through a keep-alive loop; requests inside the service are
//! still batched per shard by the service's own channels, so socket
//! concurrency and shard concurrency stay independently bounded.
//!
//! # Lifecycle
//!
//! `start` binds the listener *first*, then builds the service (shard
//! spawn + calibration pre-warm) on a builder thread. Until the service
//! is ready the edge answers `/healthz` with `503 {"status":"warming"}`
//! and refuses work with the same body, so orchestration can point
//! traffic at the port immediately and gate on health. `serve` skips
//! warming by adopting an already-running service. [`EdgeServer::drain`]
//! (triggered by SIGTERM in the binary) stops the acceptor, lets
//! workers finish in-flight requests, then shuts the service down —
//! which takes a final snapshot (when enabled) and persists the
//! calibration cache. With `checkpoint_interval` set, a background
//! thread additionally checkpoints the ready service periodically so a
//! SIGKILL loses at most one interval of recovery time.

use crate::config::EdgeConfig;
use crate::http::{self, Method, ReadLimits, RecvError, Request};
use crate::metrics::EdgeMetrics;
use crate::wire;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use hp_core::ServerId;
use hp_service::{AssessOutcome, BootProgress, ReputationService, ServiceConfig, ServiceError};
use parking_lot::RwLock;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

const STATE_WARMING: u8 = 0;
const STATE_READY: u8 = 1;
const STATE_DRAINING: u8 = 2;

/// State shared by the acceptor, workers, and the handle.
struct Shared {
    /// `None` while warming; set exactly once by the builder thread.
    service: RwLock<Option<Arc<ReputationService>>>,
    /// One of the `STATE_*` constants.
    state: AtomicU8,
    /// Tells the acceptor to stop accepting (drain).
    stop_accepting: AtomicBool,
    /// Recovery progress published by the builder thread's service
    /// construction; `/healthz` renders it while warming.
    boot: Arc<BootProgress>,
    metrics: EdgeMetrics,
    config: EdgeConfig,
}

impl Shared {
    fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Acquire) {
            STATE_WARMING => "warming",
            STATE_READY => "ready",
            _ => "draining",
        }
    }

    fn service(&self) -> Option<Arc<ReputationService>> {
        self.service.read().clone()
    }

    fn limits(&self) -> ReadLimits {
        ReadLimits {
            max_head_bytes: self.config.max_head_bytes,
            max_body_bytes: self.config.max_body_bytes,
            header_timeout: self.config.header_timeout,
            body_timeout: self.config.body_timeout,
        }
    }
}

/// A running edge front-end. Dropping the handle without calling
/// [`EdgeServer::drain`] detaches the threads (the binary always
/// drains; tests may detach deliberately).
pub struct EdgeServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    builder: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
}

impl EdgeServer {
    /// Serves an already-constructed service: the edge is `ready` the
    /// moment this returns (no warming phase).
    ///
    /// # Errors
    ///
    /// Configuration validation and bind errors.
    pub fn serve(service: Arc<ReputationService>, config: EdgeConfig) -> io::Result<EdgeServer> {
        let server = EdgeServer::bind(config)?;
        *server.shared.service.write() = Some(service);
        server.shared.state.store(STATE_READY, Ordering::Release);
        Ok(server)
    }

    /// Binds the listener immediately and builds the service on a
    /// background thread. Until construction (shard spawn, journal
    /// recovery, calibration pre-warm — possibly served from the
    /// persisted cache) finishes, `/healthz` answers
    /// `503 {"status":"warming"}`.
    ///
    /// # Errors
    ///
    /// Configuration validation and bind errors. Service construction
    /// errors surface later through [`EdgeServer::warming_error`] and a
    /// permanently-warming health endpoint.
    pub fn start(service_config: ServiceConfig, config: EdgeConfig) -> io::Result<EdgeServer> {
        let mut server = EdgeServer::bind(config)?;
        let shared = Arc::clone(&server.shared);
        server.builder = Some(
            thread::Builder::new()
                .name("hp-edge-builder".into())
                .spawn(move || {
                    let boot = Arc::clone(&shared.boot);
                    match ReputationService::new_with_progress(service_config, Some(boot)) {
                        Ok(service) => {
                            *shared.service.write() = Some(Arc::new(service));
                            // Readiness only moves forward if a drain has
                            // not already been requested.
                            let _ = shared.state.compare_exchange(
                                STATE_WARMING,
                                STATE_READY,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                        }
                        Err(e) => {
                            eprintln!("hp-edge: service construction failed: {e}");
                        }
                    }
                })?,
        );
        Ok(server)
    }

    fn bind(config: EdgeConfig) -> io::Result<EdgeServer> {
        config
            .validate()
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidInput, reason))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            service: RwLock::new(None),
            state: AtomicU8::new(STATE_WARMING),
            stop_accepting: AtomicBool::new(false),
            boot: Arc::new(BootProgress::new()),
            metrics: EdgeMetrics::default(),
            config,
        });

        let (conn_tx, conn_rx) = channel::bounded::<TcpStream>(shared.config.effective_pending());
        let workers = (0..shared.config.effective_workers())
            .map(|idx| {
                let rx = conn_rx.clone();
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hp-edge-worker-{idx}"))
                    .spawn(move || worker_loop(&rx, &shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        drop(conn_rx);

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("hp-edge-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &conn_tx, &shared))?
        };

        let checkpointer = match shared.config.checkpoint_interval {
            Some(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("hp-edge-checkpointer".into())
                        .spawn(move || checkpoint_loop(&shared, interval))?,
                )
            }
            None => None,
        };

        Ok(EdgeServer {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            builder: None,
            checkpointer,
        })
    }

    /// The bound address (resolves `:0` to the chosen ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current lifecycle state: `"warming"`, `"ready"`, or `"draining"`.
    pub fn state(&self) -> &'static str {
        self.shared.state_name()
    }

    /// Socket-level counters (shared with the serving threads).
    pub fn metrics(&self) -> &EdgeMetrics {
        &self.shared.metrics
    }

    /// The served service, once warming finished.
    pub fn service(&self) -> Option<Arc<ReputationService>> {
        self.shared.service()
    }

    /// Blocks until warming finishes (service constructed) or the
    /// timeout passes. Returns readiness.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.shared.state.load(Ordering::Acquire) == STATE_READY {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.shared.state.load(Ordering::Acquire) == STATE_READY
    }

    /// Graceful drain: stop accepting, finish in-flight requests, join
    /// every worker, then shut the service down (persisting the
    /// calibration cache). Idempotent-adjacent: a second call is a
    /// no-op because the threads are already joined.
    pub fn drain(mut self) {
        self.shared.state.store(STATE_DRAINING, Ordering::Release);
        self.shared.stop_accepting.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(builder) = self.builder.take() {
            let _ = builder.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        if let Some(service) = self.shared.service.write().take() {
            match Arc::try_unwrap(service) {
                // Sole owner: the full shutdown path (drain shards, close
                // journals, persist calibration).
                Ok(service) => service.shutdown(),
                // The caller kept a handle (tests, `serve` embedders):
                // checkpoint the calibration cache and leave the service
                // to the remaining owner.
                Err(service) => {
                    let _ = service.save_calibration();
                }
            }
        }
    }
}

/// Accepts connections and applies admission control.
fn acceptor_loop(listener: &TcpListener, conn_tx: &Sender<TcpStream>, shared: &Shared) {
    while !shared.stop_accepting.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send(stream) {
                    Ok(()) => {
                        shared
                            .metrics
                            .connections_accepted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(mut stream)) => {
                        // Admission refused: answer directly so the client
                        // sees a typed 503, not a hang.
                        shared
                            .metrics
                            .connections_refused
                            .fetch_add(1, Ordering::Relaxed);
                        shared.metrics.record_response(503);
                        let body = wire::render_error(
                            "overloaded",
                            "all workers busy and the pending-connection queue is full",
                        );
                        let _ = http::write_response(
                            &mut stream,
                            503,
                            body.as_bytes(),
                            "application/json",
                            false,
                            &[],
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One worker: serve connections off the channel until it closes.
fn worker_loop(conn_rx: &Receiver<TcpStream>, shared: &Shared) {
    while let Ok(stream) = conn_rx.recv() {
        serve_connection(stream, shared);
    }
}

/// Periodic checkpointer: once the service is READY, calls
/// [`ReputationService::checkpoint`] every `interval` — each shard
/// writes a durable snapshot and the calibration cache is persisted, so
/// a SIGKILL between graceful drains loses at most one interval of
/// recovery time. Sleeps in short ticks so a drain is observed promptly
/// even under long intervals.
fn checkpoint_loop(shared: &Shared, interval: Duration) {
    let tick = interval.min(Duration::from_millis(50));
    let mut next = std::time::Instant::now() + interval;
    loop {
        thread::sleep(tick);
        match shared.state.load(Ordering::Acquire) {
            STATE_DRAINING => return,
            STATE_READY => {}
            // Still warming: the first interval starts at readiness.
            _ => {
                next = std::time::Instant::now() + interval;
                continue;
            }
        }
        if std::time::Instant::now() < next {
            continue;
        }
        next = std::time::Instant::now() + interval;
        if let Some(service) = shared.service() {
            if let Err(e) = service.checkpoint() {
                eprintln!("hp-edge: periodic checkpoint failed: {e}");
            }
        }
    }
}

/// A response about to be written.
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: "application/json",
        }
    }

    fn error(status: u16, error: &str, detail: &str) -> Reply {
        Reply::json(status, wire::render_error(error, detail))
    }
}

/// The keep-alive loop for one connection. Every exit path either wrote
/// a response or determined the client is gone; nothing here panics on
/// hostile input — protocol errors become typed statuses and the
/// connection closes.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let limits = shared.limits();
    loop {
        let draining = || shared.state.load(Ordering::Acquire) == STATE_DRAINING;
        match http::wait_for_request(&stream, shared.config.keep_alive_timeout, draining) {
            Ok(()) => {}
            Err(_) => return, // idle bound, drain, peer gone, transport error
        }
        let request = match http::read_request(&mut stream, &limits) {
            Ok(request) => request,
            Err(e) => {
                let reply = match e {
                    RecvError::Closed | RecvError::Idle | RecvError::Io(_) => return,
                    RecvError::Timeout => Reply::error(
                        408,
                        "timeout",
                        "request head or body not delivered in time",
                    ),
                    RecvError::HeadTooLarge => {
                        Reply::error(431, "head_too_large", "request head exceeds the cap")
                    }
                    RecvError::BodyTooLarge => {
                        Reply::error(413, "body_too_large", "request body exceeds the cap")
                    }
                    RecvError::Malformed(reason) => Reply::error(400, "malformed", reason),
                };
                shared.metrics.protocol_rejects.fetch_add(1, Ordering::Relaxed);
                write_reply(&mut stream, shared, &reply, false);
                return;
            }
        };

        let reply = route(&request, shared);
        let keep_alive = request.keep_alive && !draining();
        if draining() {
            shared
                .metrics
                .served_while_draining
                .fetch_add(1, Ordering::Relaxed);
        }
        if !write_reply(&mut stream, shared, &reply, keep_alive) || !keep_alive {
            return;
        }
    }
}

fn write_reply(stream: &mut TcpStream, shared: &Shared, reply: &Reply, keep_alive: bool) -> bool {
    shared.metrics.record_response(reply.status);
    http::write_response(
        stream,
        reply.status,
        reply.body.as_bytes(),
        reply.content_type,
        keep_alive,
        &[],
    )
    .is_ok()
}

/// Dispatches one parsed request.
fn route(request: &Request, shared: &Shared) -> Reply {
    match (request.method, request.path.as_str()) {
        (Method::Get, "/healthz") => health(shared),
        (Method::Get, "/metrics") => metrics(shared),
        (Method::Post, "/ingest") => with_service(shared, |s| ingest(request, shared, &s)),
        (Method::Post, "/assess") => with_service(shared, |s| assess_batch(request, &s)),
        (Method::Get, path) if path.starts_with("/assess_traced/") => {
            with_service(shared, |s| assess_traced(path, &s))
        }
        (Method::Get, path) if path.starts_with("/assess/") => {
            with_service(shared, |s| assess_one(path, shared, &s))
        }
        // Known paths with the wrong method get 405, the rest 404.
        (_, "/healthz" | "/metrics" | "/ingest" | "/assess") => {
            Reply::error(405, "method_not_allowed", "see the endpoint table in DESIGN.md")
        }
        (_, path) if path.starts_with("/assess") => {
            Reply::error(405, "method_not_allowed", "assessments are GET requests")
        }
        _ => Reply::error(404, "not_found", "unknown endpoint"),
    }
}

/// Runs `f` against the service, answering `503 warming` before the
/// builder thread has finished constructing it.
fn with_service(shared: &Shared, f: impl FnOnce(Arc<ReputationService>) -> Reply) -> Reply {
    match shared.service() {
        Some(service) => f(service),
        None => Reply::error(503, "warming", "service is still calibrating; poll /healthz"),
    }
}

fn health(shared: &Shared) -> Reply {
    let state = shared.state_name();
    match shared.service() {
        Some(service) if state == "ready" => {
            let stats = service.stats();
            let shards = service.config().shards();
            let status = if stats.failed_shards > 0 {
                "degraded"
            } else {
                "ready"
            };
            Reply::json(
                200,
                wire::render_health(
                    status,
                    shards,
                    stats.failed_shards,
                    stats.shard_restarts,
                    stats.tracked_servers,
                ),
            )
        }
        // Warming: not ready, but say how far recovery has come so a
        // hung boot is distinguishable from a long journal replay.
        _ if state == "warming" => {
            Reply::json(503, wire::render_warming_health(state, &shared.boot.status()))
        }
        // Draining: not ready for traffic, says so.
        _ => Reply::json(503, wire::render_health(state, 0, 0, 0, 0)),
    }
}

fn metrics(shared: &Shared) -> Reply {
    let mut text = shared
        .service()
        .map(|s| s.render_prometheus())
        .unwrap_or_default();
    text.push_str(&shared.metrics.render_prometheus(shared.state_name()));
    Reply {
        status: 200,
        body: text,
        content_type: "text/plain; version=0.0.4",
    }
}

fn ingest(request: &Request, shared: &Shared, service: &ReputationService) -> Reply {
    let feedbacks = match wire::parse_feedback_body(&request.body) {
        Ok(feedbacks) => feedbacks,
        Err(e) => {
            shared.metrics.protocol_rejects.fetch_add(1, Ordering::Relaxed);
            return Reply::error(
                400,
                "bad_feedback",
                &format!("line {}: {}", e.line, e.reason),
            );
        }
    };
    match service.ingest_batch(feedbacks) {
        Ok(outcome) => {
            // Shedding under Shed/TryFor backpressure is not an internal
            // error — it is the admission contract, reported as 429 with
            // the exact accepted/shed split the service recorded.
            let status = if outcome.shed > 0 { 429 } else { 200 };
            Reply::json(status, wire::render_ingest(&outcome))
        }
        Err(e) => service_error_reply(&e),
    }
}

fn parse_server(path: &str, prefix: &str) -> Result<ServerId, Reply> {
    path.strip_prefix(prefix)
        .and_then(|raw| raw.parse::<u64>().ok())
        .map(ServerId::new)
        .ok_or_else(|| Reply::error(400, "bad_server_id", "want /assess/<u64>"))
}

fn assess_one(path: &str, shared: &Shared, service: &ReputationService) -> Reply {
    let server = match parse_server(path, "/assess/") {
        Ok(server) => server,
        Err(reply) => return reply,
    };
    match shared.config.assess_deadline {
        Some(deadline) => match service.assess_within(server, deadline) {
            Ok(AssessOutcome::Fresh(assessment)) => {
                Reply::json(200, wire::render_assessment(server, &assessment))
            }
            Ok(AssessOutcome::Degraded(degraded)) => {
                Reply::json(200, wire::render_degraded(server, &degraded))
            }
            Err(e) => service_error_reply(&e),
        },
        None => match service.assess(server) {
            Ok(assessment) => Reply::json(200, wire::render_assessment(server, &assessment)),
            Err(e) => service_error_reply(&e),
        },
    }
}

fn assess_traced(path: &str, service: &ReputationService) -> Reply {
    let server = match parse_server(path, "/assess_traced/") {
        Ok(server) => server,
        Err(reply) => return reply,
    };
    match service.assess_traced(server) {
        Ok(traced) => Reply::json(200, wire::render_traced(&traced)),
        Err(e) => service_error_reply(&e),
    }
}

fn assess_batch(request: &Request, service: &ReputationService) -> Reply {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Reply::error(400, "bad_batch", "body is not UTF-8"),
    };
    let mut servers = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse::<u64>() {
            Ok(id) => servers.push(ServerId::new(id)),
            Err(_) => {
                return Reply::error(
                    400,
                    "bad_batch",
                    &format!("line {}: want one u64 server id per line", idx + 1),
                )
            }
        }
    }
    match service.assess_many(&servers) {
        Ok(answers) => Reply::json(200, wire::render_batch(&answers)),
        Err(e) => service_error_reply(&e),
    }
}

/// Maps service-level failures to statuses: saturation and restarts are
/// `503` (retryable), a missed deadline with nothing to degrade to is
/// `504`, domain errors are `422`, and journal faults are `500`.
fn service_error_reply(e: &ServiceError) -> Reply {
    match e {
        ServiceError::ShardUnavailable { .. } => {
            Reply::error(503, "shard_unavailable", &e.to_string())
        }
        ServiceError::Interrupted { .. } => Reply::error(503, "interrupted", &e.to_string()),
        ServiceError::DeadlineExceeded { .. } => {
            Reply::error(504, "deadline_exceeded", &e.to_string())
        }
        ServiceError::Core(_) => Reply::error(422, "assessment_error", &e.to_string()),
        ServiceError::Journal { .. } => Reply::error(500, "journal_error", &e.to_string()),
    }
}
