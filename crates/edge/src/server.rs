//! The edge server: acceptor, worker pool, router, and lifecycle.
//!
//! ```text
//!            ┌──────────┐   bounded channel    ┌──────────┐
//!  TCP ───▶ │ acceptor  │ ───(admission)────▶ │ worker×N  │ ──▶ ReputationService
//!            └──────────┘   Full ⇒ canned 503  └──────────┘      (sharded core)
//! ```
//!
//! One acceptor thread accepts connections and offers them to a
//! *bounded* channel — connection-level admission control. When every
//! worker is busy and the pending queue is full, the acceptor answers
//! `503` itself and closes, so overload produces fast typed refusals
//! instead of unbounded queueing. Each worker serves one connection at
//! a time through a keep-alive loop; requests inside the service are
//! still batched per shard by the service's own channels, so socket
//! concurrency and shard concurrency stay independently bounded.
//!
//! # Lifecycle
//!
//! `start` binds the listener *first*, then builds the service (shard
//! spawn + calibration pre-warm) on a builder thread. Until the service
//! is ready the edge answers `/healthz` with `503 {"status":"warming"}`
//! and refuses work with the same body, so orchestration can point
//! traffic at the port immediately and gate on health. `serve` skips
//! warming by adopting an already-running service. [`EdgeServer::drain`]
//! (triggered by SIGTERM in the binary) stops the acceptor, lets
//! workers finish in-flight requests, then shuts the service down —
//! which takes a final snapshot (when enabled) and persists the
//! calibration cache. With `checkpoint_interval` set, a background
//! thread additionally checkpoints the ready service periodically so a
//! SIGKILL loses at most one interval of recovery time.
//!
//! # Request tracing
//!
//! Every service request (ingest, assess, traced assess, batch) gets a
//! nonzero trace ID — from the client's `x-hp-trace` header or freshly
//! drawn — echoed back in the response's `x-hp-trace` header. When spans
//! are enabled the worker assembles a [`hp_service::obs::SpanTree`] per
//! request (admission wait, edge read, shard queue wait, compute, write)
//! from instants it already holds plus the stage timings the shard sends
//! back on the reply channel, and the same ID is stamped onto shard-side
//! trace events and latency-histogram exemplars. Completed trees land in
//! the [`SpanStore`] behind `GET /debug/slow` and
//! `GET /debug/trace/{id}`. With spans disabled, the per-request cost of
//! the subsystem is one relaxed atomic load.

use crate::config::EdgeConfig;
use crate::http::{self, Method, ReadLimits, RecvError, Request};
use crate::metrics::{EdgeMetrics, ROUTES};
use crate::wire;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use hp_core::twophase::Assessment;
use hp_core::ServerId;
use hp_service::obs::{
    format_trace_id, next_trace_id, parse_trace_id, SloMonitor, SpanBuilder, SpanStore,
};
use hp_service::{
    AssessOutcome, AssessTimings, AssessmentTrace, BootProgress, ReputationService, ServiceConfig,
    ServiceError, TracedAssessment,
};
use parking_lot::RwLock;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const STATE_WARMING: u8 = 0;
const STATE_READY: u8 = 1;
const STATE_DRAINING: u8 = 2;

/// State shared by the acceptor, workers, and the handle.
struct Shared {
    /// `None` while warming; set exactly once by the builder thread.
    service: RwLock<Option<Arc<ReputationService>>>,
    /// One of the `STATE_*` constants.
    state: AtomicU8,
    /// Tells the acceptor to stop accepting (drain).
    stop_accepting: AtomicBool,
    /// Recovery progress published by the builder thread's service
    /// construction; `/healthz` renders it while warming.
    boot: Arc<BootProgress>,
    metrics: EdgeMetrics,
    /// Per-request span trees: slow-capture rings per route plus the
    /// recent ring behind `/debug/trace/{id}`.
    spans: SpanStore,
    /// SLO burn-rate accounting; a burning fast window flips `/healthz`
    /// to `degraded`.
    slo: SloMonitor,
    config: EdgeConfig,
}

impl Shared {
    fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Acquire) {
            STATE_WARMING => "warming",
            STATE_READY => "ready",
            _ => "draining",
        }
    }

    fn service(&self) -> Option<Arc<ReputationService>> {
        self.service.read().clone()
    }

    fn limits(&self) -> ReadLimits {
        ReadLimits {
            max_head_bytes: self.config.max_head_bytes,
            max_body_bytes: self.config.max_body_bytes,
            header_timeout: self.config.header_timeout,
            body_timeout: self.config.body_timeout,
        }
    }
}

/// A running edge front-end. Dropping the handle without calling
/// [`EdgeServer::drain`] detaches the threads (the binary always
/// drains; tests may detach deliberately).
pub struct EdgeServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    builder: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
}

impl EdgeServer {
    /// Serves an already-constructed service: the edge is `ready` the
    /// moment this returns (no warming phase).
    ///
    /// # Errors
    ///
    /// Configuration validation and bind errors.
    pub fn serve(service: Arc<ReputationService>, config: EdgeConfig) -> io::Result<EdgeServer> {
        let server = EdgeServer::bind(config)?;
        *server.shared.service.write() = Some(service);
        server.shared.state.store(STATE_READY, Ordering::Release);
        Ok(server)
    }

    /// Binds the listener immediately and builds the service on a
    /// background thread. Until construction (shard spawn, journal
    /// recovery, calibration pre-warm — possibly served from the
    /// persisted cache) finishes, `/healthz` answers
    /// `503 {"status":"warming"}`.
    ///
    /// # Errors
    ///
    /// Configuration validation and bind errors. Service construction
    /// errors surface later through [`EdgeServer::warming_error`] and a
    /// permanently-warming health endpoint.
    pub fn start(service_config: ServiceConfig, config: EdgeConfig) -> io::Result<EdgeServer> {
        let mut server = EdgeServer::bind(config)?;
        let shared = Arc::clone(&server.shared);
        server.builder = Some(
            thread::Builder::new()
                .name("hp-edge-builder".into())
                .spawn(move || {
                    let boot = Arc::clone(&shared.boot);
                    match ReputationService::new_with_progress(service_config, Some(boot)) {
                        Ok(service) => {
                            *shared.service.write() = Some(Arc::new(service));
                            // Readiness only moves forward if a drain has
                            // not already been requested.
                            let _ = shared.state.compare_exchange(
                                STATE_WARMING,
                                STATE_READY,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                        }
                        Err(e) => {
                            eprintln!("hp-edge: service construction failed: {e}");
                        }
                    }
                })?,
        );
        Ok(server)
    }

    fn bind(config: EdgeConfig) -> io::Result<EdgeServer> {
        config
            .validate()
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidInput, reason))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            service: RwLock::new(None),
            state: AtomicU8::new(STATE_WARMING),
            stop_accepting: AtomicBool::new(false),
            boot: Arc::new(BootProgress::new()),
            metrics: EdgeMetrics::default(),
            spans: SpanStore::new(
                &ROUTES,
                config.slow_capture,
                config.recent_traces,
                config.spans,
            ),
            slo: SloMonitor::new(config.slo),
            config,
        });

        // Connections travel with their accept instant so the first
        // request on each can attribute its admission-channel wait.
        let (conn_tx, conn_rx) =
            channel::bounded::<(TcpStream, Instant)>(shared.config.effective_pending());
        let workers = (0..shared.config.effective_workers())
            .map(|idx| {
                let rx = conn_rx.clone();
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hp-edge-worker-{idx}"))
                    .spawn(move || worker_loop(&rx, &shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        drop(conn_rx);

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("hp-edge-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &conn_tx, &shared))?
        };

        let checkpointer = match shared.config.checkpoint_interval {
            Some(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("hp-edge-checkpointer".into())
                        .spawn(move || checkpoint_loop(&shared, interval))?,
                )
            }
            None => None,
        };

        Ok(EdgeServer {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            builder: None,
            checkpointer,
        })
    }

    /// The bound address (resolves `:0` to the chosen ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current lifecycle state: `"warming"`, `"ready"`, or `"draining"`.
    pub fn state(&self) -> &'static str {
        self.shared.state_name()
    }

    /// Socket-level counters (shared with the serving threads).
    pub fn metrics(&self) -> &EdgeMetrics {
        &self.shared.metrics
    }

    /// The span store backing `/debug/slow` and `/debug/trace/{id}`.
    pub fn span_store(&self) -> &SpanStore {
        &self.shared.spans
    }

    /// The SLO monitor backing the `hp_slo_*` gauges and the `/healthz`
    /// `degraded` flip.
    pub fn slo(&self) -> &SloMonitor {
        &self.shared.slo
    }

    /// The served service, once warming finished.
    pub fn service(&self) -> Option<Arc<ReputationService>> {
        self.shared.service()
    }

    /// Blocks until warming finishes (service constructed) or the
    /// timeout passes. Returns readiness.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.shared.state.load(Ordering::Acquire) == STATE_READY {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.shared.state.load(Ordering::Acquire) == STATE_READY
    }

    /// Graceful drain: stop accepting, finish in-flight requests, join
    /// every worker, then shut the service down (persisting the
    /// calibration cache). Idempotent-adjacent: a second call is a
    /// no-op because the threads are already joined.
    pub fn drain(mut self) {
        self.shared.state.store(STATE_DRAINING, Ordering::Release);
        self.shared.stop_accepting.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(builder) = self.builder.take() {
            let _ = builder.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
        if let Some(service) = self.shared.service.write().take() {
            match Arc::try_unwrap(service) {
                // Sole owner: the full shutdown path (drain shards, close
                // journals, persist calibration).
                Ok(service) => service.shutdown(),
                // The caller kept a handle (tests, `serve` embedders):
                // checkpoint the calibration cache and leave the service
                // to the remaining owner.
                Err(service) => {
                    let _ = service.save_calibration();
                }
            }
        }
    }
}

/// Accepts connections and applies admission control.
fn acceptor_loop(
    listener: &TcpListener,
    conn_tx: &Sender<(TcpStream, Instant)>,
    shared: &Shared,
) {
    while !shared.stop_accepting.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send((stream, Instant::now())) {
                    Ok(()) => {
                        shared
                            .metrics
                            .connections_accepted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full((mut stream, _accepted_at))) => {
                        // Admission refused: answer directly so the client
                        // sees a typed 503, not a hang.
                        shared
                            .metrics
                            .connections_refused
                            .fetch_add(1, Ordering::Relaxed);
                        shared.metrics.record_response(503);
                        let body = wire::render_error(
                            "overloaded",
                            "all workers busy and the pending-connection queue is full",
                        );
                        let _ = http::write_response(
                            &mut stream,
                            503,
                            body.as_bytes(),
                            "application/json",
                            false,
                            &[],
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One worker: serve connections off the channel until it closes.
fn worker_loop(conn_rx: &Receiver<(TcpStream, Instant)>, shared: &Shared) {
    while let Ok(conn) = conn_rx.recv() {
        serve_connection(conn, shared);
    }
}

/// Periodic checkpointer: once the service is READY, calls
/// [`ReputationService::checkpoint`] every `interval` — each shard
/// writes a durable snapshot and the calibration cache is persisted, so
/// a SIGKILL between graceful drains loses at most one interval of
/// recovery time. Sleeps in short ticks so a drain is observed promptly
/// even under long intervals.
fn checkpoint_loop(shared: &Shared, interval: Duration) {
    let tick = interval.min(Duration::from_millis(50));
    let mut next = std::time::Instant::now() + interval;
    loop {
        thread::sleep(tick);
        match shared.state.load(Ordering::Acquire) {
            STATE_DRAINING => return,
            STATE_READY => {}
            // Still warming: the first interval starts at readiness.
            _ => {
                next = std::time::Instant::now() + interval;
                continue;
            }
        }
        if std::time::Instant::now() < next {
            continue;
        }
        next = std::time::Instant::now() + interval;
        if let Some(service) = shared.service() {
            if let Err(e) = service.checkpoint() {
                eprintln!("hp-edge: periodic checkpoint failed: {e}");
            }
        }
    }
}

/// A response about to be written.
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: "application/json",
        }
    }

    fn error(status: u16, error: &str, detail: &str) -> Reply {
        Reply::json(status, wire::render_error(error, detail))
    }
}

/// The route class of a request: the [`ROUTES`] entry it lands on, or
/// `None` for endpoints that are not traced (`/healthz`, `/metrics`,
/// `/debug/*`, `/version`, protocol errors).
fn route_class(request: &Request) -> Option<&'static str> {
    match (request.method, request.path.as_str()) {
        (Method::Post, "/ingest") => Some("/ingest"),
        (Method::Post, "/assess") => Some("/assess_batch"),
        (Method::Get, path) if path.starts_with("/assess_traced/") => Some("/assess_traced"),
        (Method::Get, path) if path.starts_with("/assess/") => Some("/assess"),
        _ => None,
    }
}

/// Per-request observability, threaded through the router: the trace ID,
/// the span tree under construction, and what to record once the
/// response bytes are on the wire. When spans are disabled and the
/// client sent no trace header, all of this degrades to route/latency
/// bookkeeping with `trace == 0` and no builder.
struct RequestObs {
    route: Option<&'static str>,
    trace: u64,
    /// Request start: connection accept for the first request on a
    /// connection, first header byte for keep-alive successors.
    started: Instant,
    builder: Option<SpanBuilder>,
    /// Verdict provenance, recorded as the finished tree's detail.
    verdict: String,
    /// Whether this request counts against the assess-latency SLO.
    slo_assess: bool,
}

impl RequestObs {
    /// Starts the per-request context once the head is parsed. A client
    /// trace ID wins; otherwise one is generated iff spans are on.
    fn begin(
        request: &Request,
        shared: &Shared,
        admitted: Option<(Instant, Instant)>,
        first_byte: Instant,
        read_done: Instant,
    ) -> RequestObs {
        let route = route_class(request);
        let spans_on = shared.spans.enabled();
        let trace = match route {
            Some(_) if request.trace != 0 => request.trace,
            Some(_) if spans_on => next_trace_id(),
            _ => 0,
        };
        let started = admitted.map_or(first_byte, |(accepted, _)| accepted);
        let mut builder = match route {
            Some(endpoint) if spans_on && trace != 0 => {
                Some(SpanBuilder::new_at(trace, endpoint, started))
            }
            _ => None,
        };
        if let Some(b) = builder.as_mut() {
            if let Some((accepted, dequeued)) = admitted {
                b.add("admission_wait", accepted, dequeued, "bounded connection channel");
            }
            b.add(
                "edge_read",
                first_byte,
                read_done,
                format!("body_bytes={}", request.body.len()),
            );
        }
        RequestObs {
            route,
            trace,
            started,
            builder,
            verdict: String::new(),
            slo_assess: false,
        }
    }

    /// Whether a span tree is being built (spans on, traced route).
    fn tracing(&self) -> bool {
        self.builder.is_some()
    }

    /// Records one edge-measured stage.
    fn span(
        &mut self,
        name: &'static str,
        start: Instant,
        end: Instant,
        detail: impl Into<std::borrow::Cow<'static, str>>,
    ) {
        if let Some(b) = self.builder.as_mut() {
            b.add(name, start, end, detail);
        }
    }

    /// Attributes a fresh assess's service-call window using the stage
    /// timings the shard sent back on the reply channel: queue wait and
    /// compute positioned inside the window, the residual (channel
    /// send/recv and scheduling) as `reply_path`. A degraded answer never
    /// entered the shard queue, so it gets a single `degraded_serve`
    /// stage instead.
    fn observe_assess(
        &mut self,
        shard: usize,
        call_start: Instant,
        call_end: Instant,
        timings: Option<&AssessTimings>,
    ) {
        self.slo_assess = true;
        let Some(b) = self.builder.as_mut() else { return };
        match timings {
            Some(t) => {
                let call_ns = call_end.saturating_duration_since(call_start).as_nanos() as u64;
                let start = b.offset_ns(call_start);
                b.add_ns("queue_wait", start, t.queue_wait_ns, format!("shard={shard}"));
                b.add_ns(
                    "compute",
                    start + t.queue_wait_ns,
                    t.compute_ns,
                    format!("shard={shard} cache_hit={}", t.from_cache),
                );
                let attributed = t.queue_wait_ns + t.compute_ns;
                b.add_ns(
                    "reply_path",
                    start + attributed.min(call_ns),
                    call_ns.saturating_sub(attributed),
                    "channel send/recv and scheduling",
                );
            }
            None => {
                b.add(
                    "degraded_serve",
                    call_start,
                    call_end,
                    "served from the published-verdict cache",
                );
            }
        }
    }

    /// Closes out the request after the response bytes are written:
    /// per-route latency histogram (exemplar-linked), SLO observation,
    /// and the finished span tree into the store.
    fn finish(mut self, shared: &Shared, status: u16, write_start: Instant, write_end: Instant) {
        let Some(route) = self.route else { return };
        let total_ns = write_end.saturating_duration_since(self.started).as_nanos() as u64;
        shared.metrics.record_route(route, total_ns, self.trace);
        if self.slo_assess {
            shared.slo.record_assess(Duration::from_nanos(total_ns));
        }
        if let Some(mut builder) = self.builder.take() {
            builder.add("write", write_start, write_end, format!("status={status}"));
            // The tracer's monotone sequence orders this tree against
            // shard trace events carrying the same trace ID.
            let seq = shared
                .service()
                .map_or(0, |service| service.metrics().tracer().stamp());
            shared.spans.record(builder.finish(seq, self.verdict));
        }
    }
}

/// The keep-alive loop for one connection. Every exit path either wrote
/// a response or determined the client is gone; nothing here panics on
/// hostile input — protocol errors become typed statuses and the
/// connection closes.
fn serve_connection(conn: (TcpStream, Instant), shared: &Shared) {
    let (mut stream, accepted_at) = conn;
    let dequeued_at = Instant::now();
    // The admission-channel wait is attributable only to the first
    // request on the connection; keep-alive successors start at their
    // own first header byte.
    let mut admitted = Some((accepted_at, dequeued_at));
    let limits = shared.limits();
    loop {
        let draining = || shared.state.load(Ordering::Acquire) == STATE_DRAINING;
        match http::wait_for_request(&stream, shared.config.keep_alive_timeout, draining) {
            Ok(()) => {}
            Err(_) => return, // idle bound, drain, peer gone, transport error
        }
        let first_byte = Instant::now();
        let request = match http::read_request(&mut stream, &limits) {
            Ok(request) => request,
            Err(e) => {
                let reply = match e {
                    RecvError::Closed | RecvError::Idle | RecvError::Io(_) => return,
                    RecvError::Timeout => Reply::error(
                        408,
                        "timeout",
                        "request head or body not delivered in time",
                    ),
                    RecvError::HeadTooLarge => {
                        Reply::error(431, "head_too_large", "request head exceeds the cap")
                    }
                    RecvError::BodyTooLarge => {
                        Reply::error(413, "body_too_large", "request body exceeds the cap")
                    }
                    RecvError::Malformed(reason) => Reply::error(400, "malformed", reason),
                };
                shared.metrics.protocol_rejects.fetch_add(1, Ordering::Relaxed);
                write_reply(&mut stream, shared, &reply, false, &[]);
                return;
            }
        };

        let mut obs = RequestObs::begin(&request, shared, admitted.take(), first_byte, Instant::now());
        let reply = route(&request, shared, &mut obs);
        let keep_alive = request.keep_alive && !draining();
        if draining() {
            shared
                .metrics
                .served_while_draining
                .fetch_add(1, Ordering::Relaxed);
        }
        // Echo the trace ID so clients can correlate their observation
        // with `/debug/trace/{id}` and the shard trace events.
        let extra: Vec<(&str, String)> = if obs.trace != 0 {
            vec![("x-hp-trace", format_trace_id(obs.trace))]
        } else {
            Vec::new()
        };
        let write_start = Instant::now();
        let ok = write_reply(&mut stream, shared, &reply, keep_alive, &extra);
        let status = reply.status;
        obs.finish(shared, status, write_start, Instant::now());
        if !ok || !keep_alive {
            return;
        }
    }
}

fn write_reply(
    stream: &mut TcpStream,
    shared: &Shared,
    reply: &Reply,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> bool {
    shared.metrics.record_response(reply.status);
    http::write_response(
        stream,
        reply.status,
        reply.body.as_bytes(),
        reply.content_type,
        keep_alive,
        extra_headers,
    )
    .is_ok()
}

/// Dispatches one parsed request.
fn route(request: &Request, shared: &Shared, obs: &mut RequestObs) -> Reply {
    match (request.method, request.path.as_str()) {
        (Method::Get, "/healthz") => health(shared),
        (Method::Get, "/metrics") => metrics(shared),
        (Method::Get, "/version") => version(shared),
        (Method::Get, "/debug/slow") => debug_slow(shared),
        (Method::Get, path) if path.starts_with("/debug/trace/") => debug_trace(path, shared),
        (Method::Post, "/ingest") => with_service(shared, |s| ingest(request, shared, &s, obs)),
        (Method::Post, "/assess") => with_service(shared, |s| assess_batch(request, &s, obs)),
        (Method::Get, path) if path.starts_with("/assess_traced/") => {
            with_service(shared, |s| assess_traced(path, &s, obs))
        }
        (Method::Get, path) if path.starts_with("/assess/") => {
            with_service(shared, |s| assess_one(path, shared, &s, obs))
        }
        // Known paths with the wrong method get 405, the rest 404.
        (_, "/healthz" | "/metrics" | "/ingest" | "/assess" | "/version" | "/debug/slow") => {
            Reply::error(405, "method_not_allowed", "see the endpoint table in DESIGN.md")
        }
        (_, path) if path.starts_with("/assess") || path.starts_with("/debug/trace/") => {
            Reply::error(405, "method_not_allowed", "assessments and traces are GET requests")
        }
        _ => Reply::error(404, "not_found", "unknown endpoint"),
    }
}

/// Runs `f` against the service, answering `503 warming` before the
/// builder thread has finished constructing it.
fn with_service(shared: &Shared, f: impl FnOnce(Arc<ReputationService>) -> Reply) -> Reply {
    match shared.service() {
        Some(service) => f(service),
        None => Reply::error(503, "warming", "service is still calibrating; poll /healthz"),
    }
}

fn health(shared: &Shared) -> Reply {
    let state = shared.state_name();
    match shared.service() {
        Some(service) if state == "ready" => {
            let stats = service.stats();
            let shards = service.config().shards();
            // Degraded when shards are gone — or when the fast SLO
            // window is burning budget faster than it accrues (the
            // objective is being missed right now). HTTP status stays
            // 200: the edge is serving, just not to its promises.
            let status = if stats.failed_shards > 0 || shared.slo.burns().fast_burning() {
                "degraded"
            } else {
                "ready"
            };
            Reply::json(
                200,
                wire::render_health(
                    status,
                    shards,
                    stats.failed_shards,
                    stats.shard_restarts,
                    stats.tracked_servers,
                    (
                        stats.tier_hot_suffix_bytes,
                        stats.tier_summary_bytes,
                        stats.tier_spilled_bytes,
                    ),
                    Some(service.calibration_readiness()),
                ),
            )
        }
        // Warming: not ready, but say how far recovery has come so a
        // hung boot is distinguishable from a long journal replay.
        _ if state == "warming" => {
            Reply::json(503, wire::render_warming_health(state, &shared.boot.status()))
        }
        // Draining: not ready for traffic, says so.
        _ => Reply::json(503, wire::render_health(state, 0, 0, 0, 0, (0, 0, 0), None)),
    }
}

fn metrics(shared: &Shared) -> Reply {
    use std::fmt::Write;
    let mut text = shared
        .service()
        .map(|s| s.render_prometheus())
        .unwrap_or_default();
    text.push_str(&shared.metrics.render_prometheus(shared.state_name()));
    shared.slo.render_prometheus(&mut text);
    text.push_str(
        "# HELP hp_edge_spans_recorded_total Completed span trees recorded.\n# TYPE hp_edge_spans_recorded_total counter\n",
    );
    let _ = writeln!(text, "hp_edge_spans_recorded_total {}", shared.spans.recorded());
    text.push_str(
        "# HELP hp_edge_spans_evicted_total Span trees evicted from the recent ring.\n# TYPE hp_edge_spans_evicted_total counter\n",
    );
    let _ = writeln!(text, "hp_edge_spans_evicted_total {}", shared.spans.evicted());
    Reply {
        status: 200,
        body: text,
        content_type: "text/plain; version=0.0.4",
    }
}

fn version(shared: &Shared) -> Reply {
    let service = shared.service();
    let labels = service
        .as_ref()
        .map(|s| (s.config().trust().label(), s.config().shards()));
    Reply::json(
        200,
        wire::render_version(
            shared.state_name(),
            labels.as_ref().map(|(trust, shards)| (trust.as_str(), *shards)),
        ),
    )
}

fn debug_slow(shared: &Shared) -> Reply {
    Reply::json(200, wire::render_slow(&shared.spans.slowest()))
}

fn debug_trace(path: &str, shared: &Shared) -> Reply {
    let raw = path.strip_prefix("/debug/trace/").unwrap_or("");
    let Some(id) = parse_trace_id(raw) else {
        return Reply::error(400, "bad_trace_id", "want /debug/trace/<hex trace id>");
    };
    match shared.spans.find(id) {
        Some(tree) => Reply::json(200, wire::render_span_tree(&tree)),
        None => Reply::error(
            404,
            "trace_not_found",
            "not in the recent or slow rings (evicted, untraced, or never seen)",
        ),
    }
}

fn ingest(
    request: &Request,
    shared: &Shared,
    service: &ReputationService,
    obs: &mut RequestObs,
) -> Reply {
    let parse_start = Instant::now();
    let feedbacks = match wire::parse_feedback_body(&request.body) {
        Ok(feedbacks) => feedbacks,
        Err(e) => {
            shared.metrics.protocol_rejects.fetch_add(1, Ordering::Relaxed);
            return Reply::error(
                400,
                "bad_feedback",
                &format!("line {}: {}", e.line, e.reason),
            );
        }
    };
    let parse_done = Instant::now();
    obs.span("parse", parse_start, parse_done, format!("feedbacks={}", feedbacks.len()));
    match service.ingest_batch_traced(feedbacks, obs.trace) {
        Ok(outcome) => {
            shared
                .slo
                .record_ingest(outcome.accepted as u64, outcome.shed as u64);
            // Journal append, fsync, and batch apply happen behind the
            // shard channel after this span closes; they surface as
            // shard trace events stamped with this request's trace ID.
            obs.span(
                "dispatch",
                parse_done,
                Instant::now(),
                "shard channel send; journal/fsync/apply are async under this trace id",
            );
            obs.verdict = format!("accepted={} shed={}", outcome.accepted, outcome.shed);
            // Shedding under Shed/TryFor backpressure is not an internal
            // error — it is the admission contract, reported as 429 with
            // the exact accepted/shed split the service recorded.
            let status = if outcome.shed > 0 { 429 } else { 200 };
            Reply::json(status, wire::render_ingest(&outcome))
        }
        Err(e) => service_error_reply(&e),
    }
}

fn verdict_label(assessment: &Assessment) -> &'static str {
    match assessment {
        Assessment::Accepted { .. } => "accepted",
        Assessment::Rejected { .. } => "rejected",
        Assessment::NeedsReview { .. } => "needs_review",
    }
}

/// Verdict provenance for a fresh assessment's span tree: verdict,
/// cache-hit status, and — when phase 1 ran a calibrated screen — the
/// threshold that decided it.
fn fresh_verdict_detail(server: ServerId, assessment: &Assessment, from_cache: bool) -> String {
    let audit = AssessmentTrace::from_assessment(server, assessment, from_cache);
    let mut detail = format!(
        "verdict={} cache_hit={from_cache} scheme={}",
        verdict_label(assessment),
        audit.scheme,
    );
    if let Some(threshold) = audit.threshold {
        detail.push_str(&format!(" threshold={threshold}"));
    }
    detail
}

fn parse_server(path: &str, prefix: &str) -> Result<ServerId, Reply> {
    path.strip_prefix(prefix)
        .and_then(|raw| raw.parse::<u64>().ok())
        .map(ServerId::new)
        .ok_or_else(|| Reply::error(400, "bad_server_id", "want /assess/<u64>"))
}

fn assess_one(
    path: &str,
    shared: &Shared,
    service: &ReputationService,
    obs: &mut RequestObs,
) -> Reply {
    let server = match parse_server(path, "/assess/") {
        Ok(server) => server,
        Err(reply) => return reply,
    };
    let call_start = Instant::now();
    match service.assess_observed(server, shared.config.assess_deadline, obs.trace) {
        Ok((outcome, timings)) => {
            obs.observe_assess(
                service.shard_of(server),
                call_start,
                Instant::now(),
                timings.as_ref(),
            );
            match outcome {
                AssessOutcome::Fresh(assessment) => {
                    if obs.tracing() {
                        obs.verdict = fresh_verdict_detail(
                            server,
                            &assessment,
                            timings.is_some_and(|t| t.from_cache),
                        );
                    }
                    Reply::json(200, wire::render_assessment(server, &assessment))
                }
                AssessOutcome::Degraded(degraded) => {
                    if obs.tracing() {
                        obs.verdict = format!(
                            "verdict={} degraded=true staleness={}",
                            verdict_label(&degraded.assessment),
                            degraded.staleness(),
                        );
                    }
                    Reply::json(200, wire::render_degraded(server, &degraded))
                }
            }
        }
        Err(e) => service_error_reply(&e),
    }
}

fn assess_traced(path: &str, service: &ReputationService, obs: &mut RequestObs) -> Reply {
    let server = match parse_server(path, "/assess_traced/") {
        Ok(server) => server,
        Err(reply) => return reply,
    };
    let call_start = Instant::now();
    match service.assess_observed(server, None, obs.trace) {
        Ok((outcome, timings)) => {
            obs.observe_assess(
                service.shard_of(server),
                call_start,
                Instant::now(),
                timings.as_ref(),
            );
            match outcome {
                AssessOutcome::Fresh(assessment) => {
                    let from_cache = timings.is_some_and(|t| t.from_cache);
                    if obs.tracing() {
                        obs.verdict = fresh_verdict_detail(server, &assessment, from_cache);
                    }
                    let trace =
                        AssessmentTrace::from_assessment(server, assessment.as_ref(), from_cache);
                    Reply::json(
                        200,
                        wire::render_traced(&TracedAssessment { assessment, trace }),
                    )
                }
                // Unreachable without a deadline, but a degraded answer
                // is still a correct one to serve.
                AssessOutcome::Degraded(degraded) => {
                    Reply::json(200, wire::render_degraded(server, &degraded))
                }
            }
        }
        Err(e) => service_error_reply(&e),
    }
}

fn assess_batch(request: &Request, service: &ReputationService, obs: &mut RequestObs) -> Reply {
    let parse_start = Instant::now();
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Reply::error(400, "bad_batch", "body is not UTF-8"),
    };
    let mut servers = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse::<u64>() {
            Ok(id) => servers.push(ServerId::new(id)),
            Err(_) => {
                return Reply::error(
                    400,
                    "bad_batch",
                    &format!("line {}: want one u64 server id per line", idx + 1),
                )
            }
        }
    }
    let parse_done = Instant::now();
    obs.span("parse", parse_start, parse_done, format!("servers={}", servers.len()));
    match service.assess_many_traced(&servers, obs.trace) {
        Ok(answers) => {
            obs.span(
                "service_call",
                parse_done,
                Instant::now(),
                "fan-out: one command per involved shard",
            );
            obs.verdict = format!("servers={}", servers.len());
            Reply::json(200, wire::render_batch(&answers))
        }
        Err(e) => service_error_reply(&e),
    }
}

/// Maps service-level failures to statuses: saturation and restarts are
/// `503` (retryable), a missed deadline with nothing to degrade to is
/// `504`, domain errors are `422`, and journal faults are `500`.
fn service_error_reply(e: &ServiceError) -> Reply {
    match e {
        ServiceError::ShardUnavailable { .. } => {
            Reply::error(503, "shard_unavailable", &e.to_string())
        }
        ServiceError::Interrupted { .. } => Reply::error(503, "interrupted", &e.to_string()),
        ServiceError::DeadlineExceeded { .. } => {
            Reply::error(504, "deadline_exceeded", &e.to_string())
        }
        ServiceError::Core(_) => Reply::error(422, "assessment_error", &e.to_string()),
        ServiceError::Journal { .. } => Reply::error(500, "journal_error", &e.to_string()),
    }
}
