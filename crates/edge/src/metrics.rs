//! Edge-side counters, appended to the service's Prometheus exposition.
//!
//! The service already accounts for everything behind the shard
//! channels (ingested, shed, degraded, restarts…); this layer counts
//! what happens *at the socket*: connections accepted and refused,
//! responses by status code, protocol-defense trips (timeouts,
//! oversized requests, malformed heads), and per-route request
//! latency — first header byte to last response byte, the
//! client-observed duration the service-side histograms cannot see.
//! Shed/degraded accounting remains the service's single source of
//! truth — the edge does not duplicate those counters, it only adds the
//! network-visible ones.

use hp_service::obs::{render_latency_family, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Status codes the edge can emit, in exposition order.
pub const STATUSES: [u16; 12] = [200, 400, 404, 405, 408, 413, 422, 429, 431, 500, 503, 504];

/// The service routes with a per-route latency histogram, in exposition
/// order. `/assess` is the single-server GET, `/assess_batch` the POST
/// batch endpoint.
pub const ROUTES: [&str; 4] = ["/ingest", "/assess", "/assess_traced", "/assess_batch"];

/// Socket-level counters. All relaxed atomics: they are monotone
/// counters scraped for trends, not synchronization points.
#[derive(Debug, Default)]
pub struct EdgeMetrics {
    /// Connections accepted and handed to a worker.
    pub connections_accepted: AtomicU64,
    /// Connections refused by admission control (all workers busy and
    /// the pending queue full) with an immediate `503`.
    pub connections_refused: AtomicU64,
    /// Responses sent, by status code (indexed as [`STATUSES`]).
    responses: [AtomicU64; STATUSES.len()],
    /// Requests that tripped a protocol defense (timeout, size cap,
    /// malformed head) — a subset of the 4xx/408 responses, kept
    /// separately so probes of hostile traffic don't require summing
    /// status codes.
    pub protocol_rejects: AtomicU64,
    /// Requests answered after the drain began (politely, with
    /// `connection: close`).
    pub served_while_draining: AtomicU64,
    /// Per-route request latency, first header byte to last response
    /// byte (indexed as [`ROUTES`]). Exemplar-linked: buckets remember
    /// the most recent traced request that landed in them.
    route_latency: [LatencyHistogram; ROUTES.len()],
}

impl EdgeMetrics {
    /// Records one response with `status`.
    pub fn record_response(&self, status: u16) {
        if let Some(idx) = STATUSES.iter().position(|&s| s == status) {
            self.responses[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one served request on `route` with its client-observed
    /// duration, linking `trace` as the bucket's exemplar when nonzero.
    /// Unknown routes are ignored (only [`ROUTES`] carry histograms).
    pub fn record_route(&self, route: &str, ns: u64, trace: u64) {
        if let Some(idx) = ROUTES.iter().position(|&r| r == route) {
            self.route_latency[idx].record_ns_traced(ns, trace);
        }
    }

    /// Requests recorded on `route` so far.
    pub fn route_count(&self, route: &str) -> u64 {
        ROUTES
            .iter()
            .position(|&r| r == route)
            .map_or(0, |idx| self.route_latency[idx].snapshot().count)
    }

    /// Responses sent with `status` so far.
    pub fn responses_with(&self, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|&s| s == status)
            .map_or(0, |idx| self.responses[idx].load(Ordering::Relaxed))
    }

    /// Renders the edge counters in Prometheus text exposition format
    /// (appended after the service's own `render_prometheus` output).
    pub fn render_prometheus(&self, state: &str) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP hp_edge_connections_accepted_total Connections accepted and served.\n# TYPE hp_edge_connections_accepted_total counter\n");
        let _ = writeln!(
            out,
            "hp_edge_connections_accepted_total {}",
            self.connections_accepted.load(Ordering::Relaxed)
        );
        out.push_str("# HELP hp_edge_connections_refused_total Connections refused by admission control.\n# TYPE hp_edge_connections_refused_total counter\n");
        let _ = writeln!(
            out,
            "hp_edge_connections_refused_total {}",
            self.connections_refused.load(Ordering::Relaxed)
        );
        out.push_str("# HELP hp_edge_responses_total Responses sent, by status code.\n# TYPE hp_edge_responses_total counter\n");
        for (idx, status) in STATUSES.iter().enumerate() {
            let _ = writeln!(
                out,
                "hp_edge_responses_total{{status=\"{status}\"}} {}",
                self.responses[idx].load(Ordering::Relaxed)
            );
        }
        out.push_str("# HELP hp_edge_protocol_rejects_total Requests refused by a protocol defense (timeout, size cap, malformed).\n# TYPE hp_edge_protocol_rejects_total counter\n");
        let _ = writeln!(
            out,
            "hp_edge_protocol_rejects_total {}",
            self.protocol_rejects.load(Ordering::Relaxed)
        );
        out.push_str("# HELP hp_edge_served_while_draining_total Requests answered after drain began.\n# TYPE hp_edge_served_while_draining_total counter\n");
        let _ = writeln!(
            out,
            "hp_edge_served_while_draining_total {}",
            self.served_while_draining.load(Ordering::Relaxed)
        );
        let snapshots: Vec<_> = self.route_latency.iter().map(LatencyHistogram::snapshot).collect();
        let labels: Vec<String> = ROUTES.iter().map(|r| format!("route=\"{r}\"")).collect();
        let series: Vec<(&str, &hp_service::obs::LatencySnapshot)> = labels
            .iter()
            .map(String::as_str)
            .zip(snapshots.iter())
            .collect();
        render_latency_family(
            &mut out,
            "hp_edge_request_duration_seconds",
            "Client-observed request duration by route, first header byte to last response byte",
            &series,
        );
        out.push_str(
            "# HELP hp_edge_build_info Edge build information (constant 1).\n# TYPE hp_edge_build_info gauge\n",
        );
        let _ = writeln!(
            out,
            "hp_edge_build_info{{version=\"{}\",git=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION"),
            option_env!("HP_GIT_HASH").unwrap_or("unknown"),
        );
        out.push_str(
            "# HELP hp_edge_state Edge lifecycle state (0=warming, 1=ready, 2=draining).\n# TYPE hp_edge_state gauge\n",
        );
        let numeric = match state {
            "warming" => 0,
            "ready" => 1,
            _ => 2,
        };
        let _ = writeln!(out, "hp_edge_state {numeric}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_counters_index_by_status() {
        let m = EdgeMetrics::default();
        m.record_response(200);
        m.record_response(200);
        m.record_response(429);
        assert_eq!(m.responses_with(200), 2);
        assert_eq!(m.responses_with(429), 1);
        assert_eq!(m.responses_with(503), 0);
        // Unknown statuses are ignored, not a panic.
        m.record_response(999);
    }

    #[test]
    fn exposition_contains_every_status_series() {
        let m = EdgeMetrics::default();
        m.record_response(503);
        let text = m.render_prometheus("ready");
        for status in STATUSES {
            assert!(text.contains(&format!("status=\"{status}\"")));
        }
        assert!(text.contains("hp_edge_responses_total{status=\"503\"} 1"));
        assert!(text.contains("hp_edge_state 1"));
        assert!(m.render_prometheus("warming").contains("hp_edge_state 0"));
        assert!(m.render_prometheus("draining").contains("hp_edge_state 2"));
    }

    #[test]
    fn route_histograms_render_with_exemplars_and_lint_clean() {
        let m = EdgeMetrics::default();
        m.record_route("/assess", 100_000, 0xfeed);
        m.record_route("/ingest", 50_000, 0);
        m.record_route("/not-a-route", 1, 0); // ignored, not a panic
        assert_eq!(m.route_count("/assess"), 1);
        assert_eq!(m.route_count("/ingest"), 1);
        assert_eq!(m.route_count("/not-a-route"), 0);
        let text = m.render_prometheus("ready");
        assert!(
            text.contains("hp_edge_request_duration_seconds_bucket{route=\"/assess\""),
            "{text}"
        );
        assert!(
            text.contains("# {trace_id=\"000000000000feed\"} 0.0001"),
            "exemplar missing:\n{text}"
        );
        assert!(text.contains("hp_edge_build_info{version=\""), "{text}");
        let problems = hp_service::obs::lint_prometheus(&text);
        assert!(problems.is_empty(), "lint: {problems:?}");
    }
}
