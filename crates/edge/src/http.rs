//! A lean, defensive HTTP/1.1 request reader and response writer.
//!
//! This is deliberately not a general HTTP implementation: it reads the
//! subset the edge serves (request line, headers it understands,
//! `Content-Length` bodies) and maps every way a client can misbehave to
//! a typed [`RecvError`] so the worker loop can answer with the right
//! status code and never panics or wedges on hostile input:
//!
//! * drip-fed or stalled heads ([`RecvError::Timeout`] → `408`) — the
//!   head has one *overall* deadline, so a slow-loris cannot reset it by
//!   sending a byte per poll;
//! * oversized heads (`431`) and bodies (`413`), both bounded before
//!   allocation ever follows attacker-controlled lengths;
//! * malformed request lines, header lines, or `Content-Length` values
//!   (`400`);
//! * connections closed mid-request ([`RecvError::Closed`]), served
//!   silently — the client is gone.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Request methods the edge distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// Anything else (answered `405`).
    Other,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target, without any query string.
    pub path: String,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub keep_alive: bool,
    /// Trace ID from an `x-hp-trace` header (1–16 hex digits), or 0 when
    /// the header was absent or malformed — a bad trace header never
    /// rejects an otherwise valid request, it just goes untraced.
    pub trace: u64,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed (or reset) the connection cleanly between
    /// requests; not an error worth answering.
    Closed,
    /// The idle keep-alive bound expired with no new request.
    Idle,
    /// The head or body was not delivered within its deadline.
    Timeout,
    /// The request head exceeded the configured cap (`431`).
    HeadTooLarge,
    /// The declared body exceeded the configured cap (`413`).
    BodyTooLarge,
    /// The bytes received do not form an HTTP/1.1 request (`400`).
    Malformed(&'static str),
    /// A transport error other than timeout/close.
    Io(io::Error),
}

/// Caps and deadlines for reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Request-head byte cap.
    pub max_head_bytes: usize,
    /// Body byte cap.
    pub max_body_bytes: usize,
    /// Overall head delivery deadline (counted from the first byte).
    pub header_timeout: Duration,
    /// Overall body delivery deadline.
    pub body_timeout: Duration,
}

/// Poll slice for interruptible waits: short enough that idle/drain
/// checks are prompt, long enough to stay off the scheduler's back.
const POLL: Duration = Duration::from_millis(50);

/// Waits for the first byte of the next request, polling in short slices
/// so the caller can abandon an idle connection when `give_up` turns
/// true (drain) or `idle_for` expires (keep-alive bound).
///
/// # Errors
///
/// [`RecvError::Closed`] when the peer hung up, [`RecvError::Idle`] when
/// the idle bound expired or `give_up` fired, [`RecvError::Io`] on
/// transport errors.
pub fn wait_for_request(
    stream: &TcpStream,
    idle_for: Duration,
    give_up: impl Fn() -> bool,
) -> Result<(), RecvError> {
    let start = Instant::now();
    let mut probe = [0u8; 1];
    loop {
        if give_up() || start.elapsed() >= idle_for {
            return Err(RecvError::Idle);
        }
        stream.set_read_timeout(Some(POLL)).map_err(RecvError::Io)?;
        match stream.peek(&mut probe) {
            Ok(0) => return Err(RecvError::Closed),
            Ok(_) => return Ok(()),
            Err(e) if is_timeout(&e) => continue,
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                return Err(RecvError::Closed)
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
}

/// Reads one full request (head + body) within the configured caps and
/// deadlines. Call [`wait_for_request`] first so idle time does not
/// count against the header deadline.
///
/// # Errors
///
/// See [`RecvError`]; every variant maps to one response (or a silent
/// close) in the worker loop.
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_deadline = Instant::now() + limits.header_timeout;
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(RecvError::HeadTooLarge);
        }
        read_some(stream, &mut buf, head_deadline)?;
    };

    let (request, declared_len) = parse_head(&buf[..head_end])?;
    if declared_len > limits.max_body_bytes {
        return Err(RecvError::BodyTooLarge);
    }

    // Whatever followed the head in the buffer is the body's first bytes.
    let mut body = buf.split_off(head_end + head_terminator_len(&buf, head_end));
    if body.len() > declared_len {
        // Pipelined extra bytes would desynchronize the keep-alive loop;
        // refuse rather than serve a corrupted stream.
        return Err(RecvError::Malformed("bytes beyond declared content-length"));
    }
    let body_deadline = Instant::now() + limits.body_timeout;
    while body.len() < declared_len {
        read_some(stream, &mut body, body_deadline)?;
        if body.len() > declared_len {
            return Err(RecvError::Malformed("bytes beyond declared content-length"));
        }
    }

    Ok(Request { body, ..request })
}

/// One bounded read append against an overall deadline. A peer that
/// closes mid-request gets no response — it is gone either way.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), RecvError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(RecvError::Timeout);
    }
    stream
        .set_read_timeout(Some(remaining.min(POLL)))
        .map_err(RecvError::Io)?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(RecvError::Closed),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e) if is_timeout(&e) => Ok(()), // loop re-checks the deadline
        Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Err(RecvError::Closed),
        Err(e) => Err(RecvError::Io(e)),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Index just past the head (before the blank-line terminator), if the
/// terminator has arrived. Accepts `\r\n\r\n` and bare `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

fn head_terminator_len(buf: &[u8], end: usize) -> usize {
    if buf[end..].starts_with(b"\r\n\r\n") {
        4
    } else {
        2
    }
}

/// Parses the request line and the headers the edge understands.
fn parse_head(head: &[u8]) -> Result<(Request, usize), RecvError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| RecvError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().ok_or(RecvError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(m) if !m.is_empty() && m.chars().all(|c| c.is_ascii_uppercase()) => Method::Other,
        _ => return Err(RecvError::Malformed("bad request line")),
    };
    let target = parts.next().ok_or(RecvError::Malformed("missing target"))?;
    if target.is_empty() || !target.starts_with('/') {
        return Err(RecvError::Malformed("bad request target"));
    }
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(RecvError::Malformed("bad HTTP version")),
    }
    if parts.next().is_some() {
        return Err(RecvError::Malformed("bad request line"));
    }

    let mut declared_len = 0usize;
    let mut keep_alive = true;
    let mut trace = 0u64;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("bad header line"))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            declared_len = value
                .parse::<usize>()
                .map_err(|_| RecvError::Malformed("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-hp-trace") {
            trace = hp_service::obs::parse_trace_id(value).unwrap_or(0);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope; refusing beats guessing.
            return Err(RecvError::Malformed("transfer-encoding unsupported"));
        }
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok((
        Request {
            method,
            path,
            body: Vec::new(),
            keep_alive,
            trace,
        },
        declared_len,
    ))
}

/// Writes one response with the standard edge headers.
///
/// # Errors
///
/// Propagates transport errors; the caller treats them as a dead client.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Canonical reason phrases for the statuses the edge emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(head: &str) -> Result<(Request, usize), RecvError> {
        parse_head(head.as_bytes())
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, len) = parse("GET /healthz HTTP/1.1\r\nhost: x").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(len, 0);
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_post_with_length_and_close() {
        let (req, len) =
            parse("POST /ingest HTTP/1.1\r\ncontent-length: 42\r\nConnection: close").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(len, 42);
        assert!(!req.keep_alive);
    }

    #[test]
    fn strips_query_strings() {
        let (req, _) = parse("GET /assess/7?verbose=1 HTTP/1.1").unwrap();
        assert_eq!(req.path, "/assess/7");
    }

    #[test]
    fn rejects_malformed_heads() {
        for head in [
            "",
            "GARBAGE",
            "GET HTTP/1.1",
            "GET /x HTTP/2",
            "get /x HTTP/1.1",
            "GET /x HTTP/1.1 extra",
            "GET x HTTP/1.1",
            "POST /ingest HTTP/1.1\r\ncontent-length: banana",
            "POST /ingest HTTP/1.1\r\nno-colon-header",
            "POST /ingest HTTP/1.1\r\ntransfer-encoding: chunked",
        ] {
            assert!(
                matches!(parse(head), Err(RecvError::Malformed(_))),
                "should reject: {head:?}"
            );
        }
    }

    #[test]
    fn trace_headers_parse_and_bad_ones_degrade_to_untraced() {
        let (req, _) = parse("GET /assess/7 HTTP/1.1\r\nx-hp-trace: 00000000000000ab").unwrap();
        assert_eq!(req.trace, 0xab);
        let (req, _) = parse("GET /assess/7 HTTP/1.1\r\nX-HP-Trace: DEADBEEF").unwrap();
        assert_eq!(req.trace, 0xdead_beef, "header name and hex are case-insensitive");
        // Malformed or zero trace IDs never reject the request.
        for bad in ["banana", "0", "", "00000000000000000ab"] {
            let (req, _) = parse(&format!("GET / HTTP/1.1\r\nx-hp-trace: {bad}")).unwrap();
            assert_eq!(req.trace, 0, "bad trace {bad:?} must degrade to untraced");
        }
        let (req, _) = parse("GET / HTTP/1.1\r\nhost: x").unwrap();
        assert_eq!(req.trace, 0);
    }

    #[test]
    fn unknown_methods_are_distinguished_not_rejected() {
        let (req, _) = parse("DELETE /assess/1 HTTP/1.1").unwrap();
        assert_eq!(req.method, Method::Other);
    }

    #[test]
    fn find_head_end_handles_both_terminators() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nBODY"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nBODY"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
