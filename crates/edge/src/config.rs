//! Edge front-end configuration.

use hp_service::obs::SloObjectives;
use std::time::Duration;

/// Configuration for [`crate::EdgeServer`].
///
/// Every knob has an operational default; the two that deployments most
/// often touch are `addr` (bind address, `:0` picks an ephemeral port)
/// and `workers` (maximum concurrently served connections).
///
/// # Examples
///
/// ```
/// use hp_edge::EdgeConfig;
///
/// let config = EdgeConfig::default().with_addr("127.0.0.1:0").with_workers(4);
/// assert_eq!(config.workers, 4);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads, each serving one connection at a time through its
    /// keep-alive loop. `0` resolves to the machine's available
    /// parallelism at start.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// acceptor starts refusing with an immediate `503` (connection-level
    /// admission control). `0` resolves to `2 × workers`.
    pub pending_connections: usize,
    /// Largest accepted request head (request line + headers); beyond it
    /// the request is refused with `431`.
    pub max_head_bytes: usize,
    /// Largest accepted request body; beyond it the request is refused
    /// with `413` and the connection closed.
    pub max_body_bytes: usize,
    /// Total time a client may take to deliver the request head. A
    /// partial head older than this (slow-loris) gets `408` and the
    /// connection closed.
    pub header_timeout: Duration,
    /// Same bound for delivering a declared body.
    pub body_timeout: Duration,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive_timeout: Duration,
    /// When set, assessments run through
    /// [`assess_within`](hp_service::ReputationService::assess_within):
    /// past the deadline the response is the last published verdict,
    /// stamped degraded with its exact staleness, instead of waiting out
    /// a saturated shard.
    pub assess_deadline: Option<Duration>,
    /// When set, a background thread calls
    /// [`checkpoint`](hp_service::ReputationService::checkpoint) at this
    /// interval once the service is READY: every shard writes a durable
    /// snapshot and the calibration cache is persisted, bounding both
    /// recovery time and calibration loss after a SIGKILL. Meaningful
    /// only when the service config enables snapshots (the calibration
    /// persistence part works regardless).
    pub checkpoint_interval: Option<Duration>,
    /// Whether per-request span trees are collected (`/debug/slow`,
    /// `/debug/trace/{id}`, histogram exemplars). When off, the
    /// per-request cost of the tracing subsystem is a single relaxed
    /// atomic load.
    pub spans: bool,
    /// Slowest span trees kept per endpoint for `GET /debug/slow`.
    pub slow_capture: usize,
    /// Most recent span trees kept for `GET /debug/trace/{id}` lookup
    /// (histogram exemplars point into this ring).
    pub recent_traces: usize,
    /// Service-level objectives driving the `hp_slo_*` burn-rate gauges
    /// and the `/healthz` `degraded` flip on a burning fast window.
    pub slo: SloObjectives,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            pending_connections: 0,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            header_timeout: Duration::from_secs(5),
            body_timeout: Duration::from_secs(10),
            keep_alive_timeout: Duration::from_secs(30),
            assess_deadline: None,
            checkpoint_interval: None,
            spans: true,
            slow_capture: 8,
            recent_traces: 512,
            slo: SloObjectives::default(),
        }
    }
}

impl EdgeConfig {
    /// Bind address (builder style).
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker thread count (builder style); `0` = available parallelism.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Pending-connection admission bound (builder style); `0` = `2 ×
    /// workers`.
    #[must_use]
    pub fn with_pending_connections(mut self, pending: usize) -> Self {
        self.pending_connections = pending;
        self
    }

    /// Body size cap in bytes (builder style).
    #[must_use]
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Request-head delivery deadline (builder style).
    #[must_use]
    pub fn with_header_timeout(mut self, timeout: Duration) -> Self {
        self.header_timeout = timeout;
        self
    }

    /// Idle keep-alive bound (builder style).
    #[must_use]
    pub fn with_keep_alive_timeout(mut self, timeout: Duration) -> Self {
        self.keep_alive_timeout = timeout;
        self
    }

    /// Assessment latency budget (builder style); see `assess_deadline`.
    #[must_use]
    pub fn with_assess_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.assess_deadline = deadline;
        self
    }

    /// Periodic checkpoint interval (builder style); see
    /// `checkpoint_interval`.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: Option<Duration>) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Span-tree collection on/off (builder style); see `spans`.
    #[must_use]
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Slow-capture ring depth per endpoint (builder style).
    #[must_use]
    pub fn with_slow_capture(mut self, capacity: usize) -> Self {
        self.slow_capture = capacity;
        self
    }

    /// Recent-trace ring depth (builder style).
    #[must_use]
    pub fn with_recent_traces(mut self, capacity: usize) -> Self {
        self.recent_traces = capacity;
        self
    }

    /// Service-level objectives (builder style); see `slo`.
    #[must_use]
    pub fn with_slo(mut self, slo: SloObjectives) -> Self {
        self.slo = slo;
        self
    }

    /// The worker count with `0` resolved to available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }

    /// The admission bound with `0` resolved to `2 × workers`.
    pub fn effective_pending(&self) -> usize {
        if self.pending_connections > 0 {
            self.pending_connections
        } else {
            2 * self.effective_workers()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for a zero size cap or a zero
    /// timeout (both would refuse every request).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_head_bytes == 0 || self.max_body_bytes == 0 {
            return Err("head/body size caps must be nonzero".to_string());
        }
        if self.header_timeout.is_zero()
            || self.body_timeout.is_zero()
            || self.keep_alive_timeout.is_zero()
        {
            return Err("edge timeouts must be nonzero".to_string());
        }
        if self.assess_deadline.is_some_and(|d| d.is_zero()) {
            return Err("assess deadline must be nonzero when set".to_string());
        }
        if self.checkpoint_interval.is_some_and(|d| d.is_zero()) {
            return Err("checkpoint interval must be nonzero when set".to_string());
        }
        if self.slow_capture == 0 || self.recent_traces == 0 {
            return Err("span ring capacities must be nonzero".to_string());
        }
        self.slo.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_resolves() {
        let c = EdgeConfig::default();
        c.validate().unwrap();
        assert!(c.effective_workers() >= 1);
        assert_eq!(c.effective_pending(), 2 * c.effective_workers());
    }

    #[test]
    fn zero_caps_and_timeouts_rejected() {
        assert!(EdgeConfig { max_body_bytes: 0, ..Default::default() }
            .validate()
            .is_err());
        assert!(EdgeConfig { header_timeout: Duration::ZERO, ..Default::default() }
            .validate()
            .is_err());
        assert!(EdgeConfig::default()
            .with_assess_deadline(Some(Duration::ZERO))
            .validate()
            .is_err());
        assert!(EdgeConfig::default().with_slow_capture(0).validate().is_err());
        assert!(EdgeConfig::default().with_recent_traces(0).validate().is_err());
        assert!(EdgeConfig::default()
            .with_slo(SloObjectives {
                max_shed_ratio: 0.0,
                ..SloObjectives::default()
            })
            .validate()
            .is_err());
    }

    #[test]
    fn builders_round_trip() {
        let c = EdgeConfig::default()
            .with_addr("0.0.0.0:8080")
            .with_workers(3)
            .with_pending_connections(9)
            .with_max_body_bytes(1024);
        assert_eq!(c.addr, "0.0.0.0:8080");
        assert_eq!(c.effective_workers(), 3);
        assert_eq!(c.effective_pending(), 9);
        assert_eq!(c.max_body_bytes, 1024);
    }
}
