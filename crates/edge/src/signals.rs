//! SIGTERM wiring for graceful drain, without a libc dependency.
//!
//! The crate is std-only, so the handler is registered through the raw
//! C `signal(2)` symbol that std itself links against. The handler body
//! is a single relaxed store to a process-global `AtomicBool` — the one
//! operation that is unconditionally async-signal-safe — and the main
//! loop polls the flag. On non-Unix targets registration is a no-op and
//! drain is driven by [`crate::EdgeServer::drain`] directly.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM (or [`request_termination`]) has been observed.
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::Relaxed)
}

/// Sets the termination flag directly — what the signal handler does,
/// callable from tests and from non-signal shutdown paths.
pub fn request_termination() {
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

/// Clears the flag (test isolation only).
#[doc(hidden)]
pub fn reset_termination() {
    TERM_REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod unix {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    extern "C" {
        // `signal(2)`: always present in the C runtime std links. Used
        // instead of sigaction to avoid replicating its struct layout.
        #[link_name = "signal"]
        fn c_signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe operation here: one atomic store.
        TERM_REQUESTED.store(true, Ordering::Relaxed);
    }

    /// Installs `on_term` for SIGTERM and SIGINT.
    pub fn install() {
        unsafe {
            c_signal(SIGTERM, on_term as *const () as usize);
            c_signal(SIGINT, on_term as *const () as usize);
        }
    }
}

/// Registers the SIGTERM/SIGINT handler (idempotent; no-op off Unix).
pub fn install_term_handler() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset_termination();
        assert!(!termination_requested());
        request_termination();
        assert!(termination_requested());
        reset_termination();
    }
}
