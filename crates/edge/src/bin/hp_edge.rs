//! The `hp-edge` binary: serve the reputation service over HTTP/1.1.
//!
//! ```text
//! hp-edge [--addr HOST:PORT] [--workers N] [--shards N]
//!         [--calibration-cache PATH] [--assess-deadline-ms N]
//! ```
//!
//! The listener binds immediately; `/healthz` reports `warming` until
//! shard spawn and calibration pre-warm finish (instant on a warm
//! restart with a persisted calibration cache). SIGTERM or SIGINT
//! triggers the graceful drain: stop accepting, finish in-flight
//! requests, shut the shards down, persist the calibration cache.

use hp_edge::{signals, EdgeConfig, EdgeServer};
use hp_service::ServiceConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hp-edge [--addr HOST:PORT] [--workers N] [--shards N]\n\
         \x20              [--calibration-cache PATH] [--assess-deadline-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut edge_config = EdgeConfig::default().with_addr("127.0.0.1:7300");
    let mut service_config = ServiceConfig::default();

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => edge_config = edge_config.with_addr(value()),
            "--workers" => {
                edge_config =
                    edge_config.with_workers(value().parse().unwrap_or_else(|_| usage()));
            }
            "--shards" => {
                service_config =
                    service_config.with_shards(value().parse().unwrap_or_else(|_| usage()));
            }
            "--calibration-cache" => {
                service_config = service_config.with_calibration_cache(value());
            }
            "--assess-deadline-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                edge_config =
                    edge_config.with_assess_deadline(Some(Duration::from_millis(millis)));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    signals::install_term_handler();
    let edge = match EdgeServer::start(service_config, edge_config) {
        Ok(edge) => edge,
        Err(e) => {
            eprintln!("hp-edge: {e}");
            std::process::exit(1);
        }
    };
    println!("hp-edge listening on {} (state: {})", edge.local_addr(), edge.state());

    while !signals::termination_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("hp-edge: termination requested, draining");
    edge.drain();
    println!("hp-edge: drained");
}
