//! The `hp-edge` binary: serve the reputation service over HTTP/1.1.
//!
//! ```text
//! hp-edge [--addr HOST:PORT] [--workers N] [--shards N]
//!         [--calibration-cache PATH] [--assess-deadline-ms N]
//!         [--calibration-trials N]
//!         [--calibration-surface] [--calibration-tolerance F]
//!         [--journal-dir PATH] [--fsync never|batch|every:N]
//!         [--snapshot-interval-records N] [--snapshot-retain N]
//!         [--snapshot-no-compact] [--checkpoint-interval-ms N]
//!         [--history-horizon N] [--spill-budget-bytes N]
//!         [--no-spans] [--slo-assess-p99-ms N] [--slo-max-shed-ratio F]
//! ```
//!
//! The listener binds immediately; `/healthz` reports `warming` (with
//! recovery progress: snapshot loaded, records replayed / journal
//! total) until shard spawn, journal recovery, and calibration pre-warm
//! finish. SIGTERM or SIGINT triggers the graceful drain: stop
//! accepting, finish in-flight requests, shut the shards down (taking a
//! final snapshot when snapshots are enabled), persist the calibration
//! cache.

use hp_edge::{signals, EdgeConfig, EdgeServer};
use hp_service::{
    Durability, FsyncPolicy, ServiceConfig, SnapshotPolicy, SurfaceParams, TieringPolicy,
};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hp-edge [--addr HOST:PORT] [--workers N] [--shards N]\n\
         \x20              [--calibration-cache PATH] [--assess-deadline-ms N]\n\
         \x20              [--calibration-trials N]\n\
         \x20              [--calibration-surface] [--calibration-tolerance F]\n\
         \x20              [--journal-dir PATH] [--fsync never|batch|every:N]\n\
         \x20              [--snapshot-interval-records N] [--snapshot-retain N]\n\
         \x20              [--snapshot-no-compact] [--checkpoint-interval-ms N]\n\
         \x20              [--history-horizon N] [--spill-budget-bytes N]\n\
         \x20              [--no-spans] [--slo-assess-p99-ms N] [--slo-max-shed-ratio F]"
    );
    std::process::exit(2);
}

fn parse_fsync(raw: &str) -> Option<FsyncPolicy> {
    match raw {
        "never" => Some(FsyncPolicy::Never),
        "batch" => Some(FsyncPolicy::EveryBatch),
        _ => raw
            .strip_prefix("every:")
            .and_then(|n| n.parse().ok())
            .map(FsyncPolicy::EveryN),
    }
}

fn main() {
    let mut edge_config = EdgeConfig::default().with_addr("127.0.0.1:7300");
    let mut service_config = ServiceConfig::default();
    let mut journal_dir: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::default();
    let mut snapshot_policy: Option<SnapshotPolicy> = None;
    let mut tiering: Option<TieringPolicy> = None;
    let mut surface: Option<SurfaceParams> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => edge_config = edge_config.with_addr(value()),
            "--workers" => {
                edge_config =
                    edge_config.with_workers(value().parse().unwrap_or_else(|_| usage()));
            }
            "--shards" => {
                service_config =
                    service_config.with_shards(value().parse().unwrap_or_else(|_| usage()));
            }
            "--calibration-cache" => {
                service_config = service_config.with_calibration_cache(value());
            }
            // Cheaper calibration (and no pre-warm grid) for soak tests
            // that need fast boots; verdicts stay deterministic for a
            // given trial count.
            "--calibration-trials" => {
                let trials: usize = value().parse().unwrap_or_else(|_| usage());
                let test = hp_core::testing::BehaviorTestConfig::builder()
                    .calibration_trials(trials)
                    .build()
                    .unwrap_or_else(|e| {
                        eprintln!("hp-edge: bad calibration trials: {e}");
                        std::process::exit(2);
                    });
                service_config = service_config
                    .with_test(test)
                    .with_prewarm_grid(vec![], vec![]);
            }
            // Build the interpolated threshold surface at boot (or load
            // it from --calibration-cache): cold assessments then serve
            // thresholds in O(1) instead of waiting on Monte Carlo.
            // Applied after the flag loop — --calibration-trials
            // replaces the whole test config, and the surface must
            // survive that in either flag order.
            "--calibration-surface" => {
                surface = Some(surface.unwrap_or_default());
            }
            // Surface error tolerance (absolute, on the threshold).
            // Implies --calibration-surface.
            "--calibration-tolerance" => {
                let tolerance: f64 = value().parse().unwrap_or_else(|_| usage());
                surface = Some(SurfaceParams {
                    tolerance,
                    ..surface.unwrap_or_default()
                });
            }
            "--assess-deadline-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                edge_config =
                    edge_config.with_assess_deadline(Some(Duration::from_millis(millis)));
            }
            "--journal-dir" => journal_dir = Some(PathBuf::from(value())),
            "--fsync" => fsync = parse_fsync(&value()).unwrap_or_else(|| usage()),
            "--snapshot-interval-records" => {
                let interval: u64 = value().parse().unwrap_or_else(|_| usage());
                snapshot_policy = Some(SnapshotPolicy {
                    interval_records: interval,
                    ..snapshot_policy.unwrap_or_default()
                });
            }
            "--snapshot-retain" => {
                let retain: usize = value().parse().unwrap_or_else(|_| usage());
                snapshot_policy = Some(SnapshotPolicy {
                    retain,
                    ..snapshot_policy.unwrap_or_default()
                });
            }
            "--snapshot-no-compact" => {
                snapshot_policy = Some(SnapshotPolicy {
                    compact_journal: false,
                    ..snapshot_policy.unwrap_or_default()
                });
            }
            // Fold history older than N outcomes into summary counts
            // (and cap the suffix sweep there, keeping verdicts
            // bit-identical to the untiered service).
            "--history-horizon" => {
                let horizon: usize = value().parse().unwrap_or_else(|_| usage());
                tiering = Some(TieringPolicy {
                    horizon,
                    ..tiering.unwrap_or_default()
                });
            }
            // Spill the coldest servers' histories to mmap-backed
            // segments once resident history bytes exceed N per shard.
            "--spill-budget-bytes" => {
                let budget: u64 = value().parse().unwrap_or_else(|_| usage());
                tiering = Some(TieringPolicy {
                    spill_budget_bytes: Some(budget),
                    ..tiering.unwrap_or_default()
                });
            }
            "--checkpoint-interval-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                edge_config =
                    edge_config.with_checkpoint_interval(Some(Duration::from_millis(millis)));
            }
            // Span-tree collection is on by default; turning it off
            // reduces the tracing subsystem's per-request cost to a
            // single relaxed atomic load.
            "--no-spans" => edge_config = edge_config.with_spans(false),
            "--slo-assess-p99-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                let slo = hp_service::obs::SloObjectives {
                    assess_p99: Duration::from_millis(millis),
                    ..edge_config.slo
                };
                edge_config = edge_config.with_slo(slo);
            }
            "--slo-max-shed-ratio" => {
                let ratio: f64 = value().parse().unwrap_or_else(|_| usage());
                let slo = hp_service::obs::SloObjectives {
                    max_shed_ratio: ratio,
                    ..edge_config.slo
                };
                edge_config = edge_config.with_slo(slo);
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if surface.is_some() {
        service_config = service_config.with_calibration_surface(surface);
    }
    if let Some(dir) = journal_dir {
        service_config = service_config.with_durability(Durability::Durable { dir, fsync });
        if let Some(policy) = snapshot_policy {
            service_config = service_config.with_snapshots(policy);
        }
    } else if snapshot_policy.is_some() {
        eprintln!("hp-edge: snapshot flags require --journal-dir");
        std::process::exit(2);
    }
    if let Some(policy) = tiering {
        if policy.spill_budget_bytes.is_some() && snapshot_policy.is_none() {
            eprintln!(
                "hp-edge: --spill-budget-bytes requires --journal-dir and snapshots \
                 (cold segments are garbage-collected at checkpoints)"
            );
            std::process::exit(2);
        }
        service_config = service_config.with_tiering(policy);
    }

    signals::install_term_handler();
    let edge = match EdgeServer::start(service_config, edge_config) {
        Ok(edge) => edge,
        Err(e) => {
            eprintln!("hp-edge: {e}");
            std::process::exit(1);
        }
    };
    println!("hp-edge listening on {} (state: {})", edge.local_addr(), edge.state());

    while !signals::termination_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("hp-edge: termination requested, draining");
    edge.drain();
    println!("hp-edge: drained");
}
