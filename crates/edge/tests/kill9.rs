//! Kill-9 soak: SIGKILL the real `hp-edge` binary mid-ingest, restart
//! it on the same journal/snapshot directory, and prove the recovered
//! service (a) becomes ready within a bound and (b) serves verdicts
//! bit-identical to an offline fold of the journal — the single source
//! of truth for what survived the kill.
//!
//! Run explicitly (CI does, release mode):
//!
//! ```text
//! cargo test --release -p hp-edge --test kill9 -- --ignored
//! ```

mod support;

use hp_core::twophase::Assessment;
use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
use hp_edge::wire;
use hp_service::journal::read_journal;
use hp_service::replay::OfflineReference;
use hp_service::ServiceConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use support::TestClient;

const SHARDS: usize = 2;
const SERVERS: u64 = 32;
const CALIBRATION_TRIALS: usize = 300;
/// Restart must reach ready well inside this bound: with snapshots the
/// recovery cost is O(journal tail), not O(history), and calibration is
/// served from the persisted cache.
const READY_BOUND: Duration = Duration::from_secs(30);

/// Spawns `hp-edge` on an ephemeral port against `dir` and returns the
/// child plus the address it printed.
fn spawn_edge(dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hp-edge"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--shards",
            &SHARDS.to_string(),
            "--calibration-trials",
            &CALIBRATION_TRIALS.to_string(),
            "--calibration-cache",
            dir.join("calibration.hpcal").to_str().unwrap(),
            "--journal-dir",
            dir.to_str().unwrap(),
            "--fsync",
            "never",
            "--snapshot-interval-records",
            "20000",
            "--snapshot-retain",
            "2",
            // The soak recomputes ground truth from the full journal, so
            // checkpoints must not discard the prefix.
            "--snapshot-no-compact",
            "--checkpoint-interval-ms",
            "100",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hp-edge");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("hp-edge printed nothing")
        .expect("read hp-edge stdout");
    let addr = first
        .strip_prefix("hp-edge listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|raw| raw.parse().ok())
        .unwrap_or_else(|| panic!("unexpected banner: {first:?}"));
    (child, addr)
}

/// Polls `/healthz` until `status` is `ready`, panicking past `bound`.
fn wait_ready(addr: SocketAddr, bound: Duration) -> Duration {
    let t0 = Instant::now();
    loop {
        // Fresh connection per poll: the edge may not be accepting yet.
        if let Ok(stream) = TcpStream::connect(addr) {
            drop(stream);
            let (_status, body) = TestClient::connect(addr).get("/healthz");
            if wire::json_str(&body, "status") == Some("ready") {
                return t0.elapsed();
            }
        }
        assert!(
            t0.elapsed() < bound,
            "edge not ready within {bound:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The deterministic soak workload: `SERVERS` interleaved streams.
fn soak_batch(start_t: u64, len: usize) -> Vec<Feedback> {
    (0..len as u64)
        .map(|i| {
            let t = start_t + i;
            Feedback::new(
                t,
                ServerId::new(t % SERVERS),
                ClientId::new(t % 101),
                Rating::from_good(!t.is_multiple_of(19)),
            )
        })
        .collect()
}

/// Everything both shard journals hold, replayed offline into
/// per-server verdicts — the ground truth a recovered service must
/// match bit-for-bit. Also returns the total journaled record count.
fn offline_verdicts(dir: &Path) -> (Vec<(ServerId, Assessment)>, u64) {
    let config = ServiceConfig::default().with_shards(SHARDS).with_test(
        hp_core::testing::BehaviorTestConfig::builder()
            .calibration_trials(CALIBRATION_TRIALS)
            .build()
            .unwrap(),
    );
    let reference = OfflineReference::from_config(&config).expect("reference builds");
    let mut histories: std::collections::HashMap<ServerId, TransactionHistory> =
        std::collections::HashMap::new();
    let mut journaled = 0u64;
    for shard in 0..SHARDS {
        let path = dir.join(format!("shard-{shard}.hpj"));
        let recovered =
            read_journal(&path, Some((shard as u32, SHARDS as u32))).expect("read journal");
        journaled += recovered.feedbacks.len() as u64;
        for feedback in recovered.feedbacks {
            histories.entry(feedback.server).or_default().push(feedback);
        }
    }
    let mut verdicts: Vec<(ServerId, Assessment)> = histories
        .into_iter()
        .map(|(server, history)| (server, reference.assess(&history).expect("offline assess")))
        .collect();
    verdicts.sort_by_key(|(server, _)| server.value());
    (verdicts, journaled)
}

fn verdict_name(assessment: &Assessment) -> &'static str {
    match assessment {
        Assessment::Accepted { .. } => "accepted",
        Assessment::Rejected { .. } => "rejected",
        Assessment::NeedsReview { .. } => "needs_review",
    }
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hp-edge-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
#[ignore = "process-level soak; run explicitly (CI runs it in release)"]
fn sigkill_mid_ingest_recovers_bit_identical_within_bound() {
    let dir = scratch_dir();

    // First life: boot, ingest steadily, then SIGKILL with a request
    // still in flight.
    let (mut child, addr) = spawn_edge(&dir);
    // First boot calibrates from scratch; no bound asserted here.
    wait_ready(addr, Duration::from_secs(120));

    let mut client = TestClient::connect(addr);
    let batch_len = 2_000usize;
    let batches = 60usize;
    let mut t = 0u64;
    for i in 0..batches {
        let mut body = String::new();
        for feedback in soak_batch(t, batch_len) {
            wire::render_feedback_line(&mut body, &feedback);
        }
        t += batch_len as u64;
        if i + 1 < batches {
            let (status, reply) = client.post("/ingest", body.as_bytes());
            assert_eq!(status, 200, "ingest refused: {reply}");
            assert_eq!(wire::json_u64(&reply, "shed"), Some(0));
        } else {
            // Final batch: fire the request and SIGKILL without reading
            // the response — the crash lands mid-ingest.
            let head = format!(
                "POST /ingest HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(head.as_bytes()).unwrap();
            raw.write_all(body.as_bytes()).unwrap();
        }
    }
    child.kill().expect("SIGKILL hp-edge");
    let _ = child.wait();

    // The journal (what reached the kernel before the kill) is the
    // truth; with `--fsync never` a SIGKILL keeps the page cache.
    let (truth, journaled) = offline_verdicts(&dir);
    assert!(!truth.is_empty(), "no records survived — soak is vacuous");
    // Everything acked before the in-flight batch must have survived.
    assert!(
        journaled >= ((batches - 1) * batch_len) as u64,
        "acked records lost: journaled {journaled}"
    );

    // Second life: restart on the same directory. Recovery must be
    // bounded (snapshot + tail, cached calibration) and bit-identical.
    let (mut child, addr) = spawn_edge(&dir);
    let elapsed = wait_ready(addr, READY_BOUND);
    println!("restart ready in {elapsed:?} ({journaled} records journaled)");

    let mut client = TestClient::connect(addr);
    for (server, expected) in &truth {
        let (status, body) = client.get(&format!("/assess/{}", server.value()));
        assert_eq!(status, 200, "assess {server:?}: {body}");
        assert_eq!(
            wire::json_str(&body, "verdict"),
            Some(verdict_name(expected)),
            "verdict diverged for {server:?}: {body}"
        );
        match expected.trust() {
            Some(trust) => {
                let got = wire::json_f64_bits(&body, "trust").expect("trust bits");
                assert_eq!(
                    got.to_bits(),
                    trust.value().to_bits(),
                    "trust diverged for {server:?}: {body}"
                );
            }
            None => assert!(!body.contains("\"trust\""), "unexpected trust: {body}"),
        }
    }

    // Tracing survives the process restart: a traced assess against the
    // recovered service echoes its ID and resolves to a span tree whose
    // stages attribute the recovered shard's queue wait and compute.
    let (status, head, body) = client.request_with_headers(
        "GET",
        &format!("/assess/{}", truth[0].0.value()),
        &[("x-hp-trace", "dead9")],
        b"",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        support::response_header(&head, "x-hp-trace").as_deref(),
        Some("00000000000dead9"),
        "trace echo lost across restart"
    );
    let (status, tree) = client.get("/debug/trace/dead9");
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains("\"trace\":\"00000000000dead9\""), "{tree}");
    assert!(tree.contains("\"name\":\"queue_wait\""), "{tree}");

    child.kill().expect("stop restarted hp-edge");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
