//! Protocol robustness: hostile, malformed, oversized, slow, and
//! half-finished requests must never panic a worker, wedge a shard, or
//! leave the edge unresponsive — every suite ends by proving the same
//! edge still serves clean traffic.

mod support;

use hp_edge::EdgeConfig;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use support::{boot, boot_default, fast_service_config, raw_roundtrip, TestClient};

#[test]
fn malformed_requests_get_400_and_leave_the_edge_alive() {
    let (edge, addr) = boot_default();
    for bad in [
        &b"GARBAGE\r\n\r\n"[..],
        b"GET  HTTP/1.1\r\n\r\n",
        b"GET /x HTTP/2\r\n\r\n",
        b"get /x HTTP/1.1\r\n\r\n",
        b"POST /ingest HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        b"POST /ingest HTTP/1.1\r\nno-colon\r\n\r\n",
        b"POST /ingest HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
    ] {
        let response = raw_roundtrip(addr, bad);
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "expected 400 for {:?}, got {:?}",
            String::from_utf8_lossy(bad),
            response.lines().next()
        );
    }
    // Every worker survived the abuse.
    let (status, body) = TestClient::connect(addr).get("/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(edge.metrics().protocol_rejects.load(std::sync::atomic::Ordering::Relaxed) >= 7);
    edge.drain();
}

#[test]
fn truncated_and_dropped_requests_do_not_wedge_workers() {
    let (edge, addr) = boot_default();

    // Half a request head, then the client vanishes.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /inge").unwrap();
    drop(conn);

    // A declared body the client never finishes sending.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /ingest HTTP/1.1\r\ncontent-length: 1000\r\n\r\n0,1,2,").unwrap();
    drop(conn);

    // A client that closes immediately after the request (drop
    // mid-response on the server's side of the write).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
    drop(conn);

    // All workers must still answer.
    let mut client = TestClient::connect(addr);
    for _ in 0..4 {
        let (status, _) = client.get("/healthz");
        assert_eq!(status, 200);
    }
    edge.drain();
}

#[test]
fn oversized_body_gets_413_and_oversized_head_431() {
    let (edge, addr) = boot(
        fast_service_config(),
        EdgeConfig::default().with_workers(2).with_max_body_bytes(1024),
    );
    let response = raw_roundtrip(
        addr,
        b"POST /ingest HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    let mut huge_head = b"GET /healthz HTTP/1.1\r\nx-filler: ".to_vec();
    huge_head.extend(std::iter::repeat_n(b'a', 20 * 1024));
    huge_head.extend_from_slice(b"\r\n\r\n");
    let response = raw_roundtrip(addr, &huge_head);
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    let (status, _) = TestClient::connect(addr).get("/healthz");
    assert_eq!(status, 200);
    edge.drain();
}

#[test]
fn slow_loris_is_cut_off_by_the_overall_header_deadline() {
    let (edge, addr) = boot(
        fast_service_config(),
        EdgeConfig::default()
            .with_workers(2)
            .with_header_timeout(Duration::from_millis(400)),
    );
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let start = Instant::now();
    // Drip one byte at a time; a per-read timeout would reset on every
    // byte and never fire — the overall deadline must cut this off.
    let head = b"GET /healthz HTTP/1.1\r\n";
    let mut got = String::new();
    for &byte in head.iter().cycle() {
        if conn.write_all(&[byte]).is_err() {
            break; // server already closed on us
        }
        std::thread::sleep(Duration::from_millis(50));
        if start.elapsed() > Duration::from_secs(5) {
            panic!("server never cut off the slow-loris");
        }
        // Poll for the 408 without blocking the drip.
        conn.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
        let mut chunk = [0u8; 1024];
        match std::io::Read::read(&mut conn, &mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                got.push_str(&String::from_utf8_lossy(&chunk[..n]));
                if got.contains("\r\n\r\n") {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    assert!(got.starts_with("HTTP/1.1 408"), "{got}");
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "took {:?}",
        start.elapsed()
    );
    let (status, _) = TestClient::connect(addr).get("/healthz");
    assert_eq!(status, 200);
    edge.drain();
}

#[test]
fn routing_unknown_paths_404_wrong_methods_405() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.get("/nope").0, 404);
    assert_eq!(client.post("/healthz", b"").0, 405);
    assert_eq!(client.post("/metrics", b"").0, 405);
    assert_eq!(client.get("/ingest").0, 405);
    assert_eq!(client.post("/assess/7", b"").0, 405);
    assert_eq!(client.get("/assess/banana").0, 400);
    edge.drain();
}

#[test]
fn bad_feedback_bodies_are_rejected_with_line_numbers() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    let (status, body) = client.post("/ingest", b"1,2,3,+\n4,5,6,*\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("line 2"), "{body}");
    // The malformed batch was rejected atomically: nothing was ingested.
    let (status, body) = client.get("/metrics");
    assert_eq!(status, 200);
    let ingested: f64 = body
        .lines()
        .filter(|l| l.starts_with("hp_feedbacks_ingested_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum();
    assert_eq!(ingested, 0.0);
    edge.drain();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    let (status, _) = client.post("/ingest", b"0,9,1,+\n1,9,2,+\n2,9,3,-\n");
    assert_eq!(status, 200);
    for _ in 0..10 {
        let (status, body) = client.get("/assess/9");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"server\":9"), "{body}");
    }
    // One connection carried all of it.
    assert_eq!(
        edge.metrics()
            .connections_accepted
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    edge.drain();
}

#[test]
fn admission_control_answers_503_when_saturated() {
    // One worker, one pending slot: the third concurrent connection
    // must be refused with an immediate canned 503.
    let (edge, addr) = boot(
        fast_service_config(),
        EdgeConfig::default().with_workers(1).with_pending_connections(1),
    );
    // Occupy the single worker with a held keep-alive connection.
    let mut held = TestClient::connect(addr);
    assert_eq!(held.get("/healthz").0, 200);
    // Fill the pending slot (never read from it; it just sits queued).
    let _queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Subsequent connections bounce off admission control.
    let mut refused = 0;
    for _ in 0..5 {
        let response = raw_roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        if response.starts_with("HTTP/1.1 503") {
            refused += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(refused > 0, "no connection was refused");
    assert!(
        edge.metrics()
            .connections_refused
            .load(std::sync::atomic::Ordering::Relaxed)
            >= refused
    );
    // The held connection still works: saturation refused new
    // connections without harming accepted ones.
    assert_eq!(held.get("/healthz").0, 200);
    edge.drain();
}

#[test]
fn drain_finishes_in_flight_work_and_stops_accepting() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,3,1,+\n1,3,2,+\n").0, 200);
    edge.drain();
    // After the drain the listener is gone.
    assert!(TcpStream::connect(addr).is_err() || {
        // Connect may succeed briefly on some platforms (backlog); a
        // request on it must fail.
        let response = raw_roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        response.is_empty()
    });
}
