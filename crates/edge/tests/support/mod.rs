//! Shared helpers for the edge integration suites: a tiny raw HTTP
//! client (the tests deliberately speak bytes, not a client library,
//! so they can also send *broken* requests) and service fixtures.

// Each integration binary uses a different subset of these helpers.
#![allow(dead_code)]

use hp_core::testing::BehaviorTestConfig;
use hp_edge::{EdgeConfig, EdgeServer};
use hp_service::{ReputationService, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A fast service config for edge tests: 2 shards, cheap calibration,
/// no pre-warm.
pub fn fast_service_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_shards(2)
        .with_test(
            BehaviorTestConfig::builder()
                .calibration_trials(300)
                .build()
                .expect("valid test config"),
        )
        .with_prewarm_grid(vec![], vec![])
}

/// Boots an edge over a fresh service with the given configs.
pub fn boot(service_config: ServiceConfig, edge_config: EdgeConfig) -> (EdgeServer, SocketAddr) {
    let service = Arc::new(ReputationService::new(service_config).expect("service boots"));
    let edge = EdgeServer::serve(service, edge_config).expect("edge binds");
    let addr = edge.local_addr();
    (edge, addr)
}

/// Boots an edge with default-ish test configs.
pub fn boot_default() -> (EdgeServer, SocketAddr) {
    boot(
        fast_service_config(),
        EdgeConfig::default().with_workers(2),
    )
}

/// Sends raw bytes on a fresh connection and returns everything the
/// server sends back before closing (the connection is half-closed for
/// writing so `read_to_end` terminates).
pub fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok();
    String::from_utf8_lossy(&out).into_owned()
}

/// A minimal keep-alive client for well-formed requests.
pub struct TestClient {
    stream: TcpStream,
}

impl TestClient {
    pub fn connect(addr: SocketAddr) -> TestClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        TestClient { stream }
    }

    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let (status, _head, body) = self.request_with_headers(method, path, &[], body);
        (status, body)
    }

    /// Like `request`, but sends extra request headers and also returns
    /// the raw response head so tests can assert on response headers
    /// (e.g. the `x-hp-trace` echo).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> (u16, String, String) {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: t\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes()).expect("write head");
        self.stream.write_all(body).expect("write body");
        self.read_response()
    }

    pub fn get(&mut self, path: &str) -> (u16, String) {
        self.request("GET", path, b"")
    }

    pub fn post(&mut self, path: &str, body: &[u8]) -> (u16, String) {
        self.request("POST", path, body)
    }

    fn read_response(&mut self) -> (u16, String, String) {
        let mut buf = Vec::new();
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed mid-response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length header");
        let mut body = buf.split_off(head_end + 4);
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-response body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);
        (status, head, String::from_utf8_lossy(&body).into_owned())
    }
}

/// Extracts a response header value from a raw response head (as
/// returned by `request_with_headers`), case-insensitive on the name.
pub fn response_header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}
