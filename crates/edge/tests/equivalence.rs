//! End-to-end equivalence: a verdict served over the socket must be
//! **bit-identical** to the offline `TwoPhaseAssessor` on the same
//! history — same verdict variant, same trust bits. The wire format
//! carries raw IEEE-754 bits (`trust_bits`) precisely so this suite can
//! check equality without a lossy decimal round-trip.

mod support;

use hp_core::twophase::Assessment;
use hp_core::{ServerId, TransactionHistory};
use hp_edge::{wire, EdgeConfig};
use hp_service::replay::{restamp, OfflineReference};
use hp_sim::workload;
use support::{boot, fast_service_config, TestClient};

fn verdict_name(assessment: &Assessment) -> &'static str {
    match assessment {
        Assessment::Accepted { .. } => "accepted",
        Assessment::Rejected { .. } => "rejected",
        Assessment::NeedsReview { .. } => "needs_review",
    }
}

/// Ingests `history` for `server` through the socket in small batches.
fn ingest_over_socket(client: &mut TestClient, history: &TransactionHistory, server: ServerId) {
    let feedbacks = restamp(history, server);
    for chunk in feedbacks.chunks(97) {
        let mut body = String::new();
        for feedback in chunk {
            wire::render_feedback_line(&mut body, feedback);
        }
        let (status, response) = client.post("/ingest", body.as_bytes());
        assert_eq!(status, 200, "{response}");
        assert_eq!(
            wire::json_u64(&response, "accepted"),
            Some(chunk.len() as u64)
        );
    }
}

/// Asserts one socket-served body matches the offline verdict bit-for-bit.
fn assert_matches_offline(body: &str, offline: &Assessment, context: &str) {
    assert_eq!(
        wire::json_str(body, "verdict"),
        Some(verdict_name(offline)),
        "{context}: verdict mismatch: {body}"
    );
    match offline.trust() {
        Some(trust) => {
            let served = wire::json_f64_bits(body, "trust")
                .unwrap_or_else(|| panic!("{context}: no trust bits in {body}"));
            assert_eq!(
                served.to_bits(),
                trust.value().to_bits(),
                "{context}: trust bits differ: served {served}, offline {}",
                trust.value()
            );
        }
        None => assert!(
            !body.contains("\"trust\""),
            "{context}: rejection must carry no trust: {body}"
        ),
    }
}

#[test]
fn socket_verdicts_are_bit_identical_to_the_offline_assessor() {
    let service_config = fast_service_config();
    let reference = OfflineReference::from_config(&service_config).expect("reference");
    let (edge, addr) = boot(service_config, EdgeConfig::default().with_workers(2));
    let mut client = TestClient::connect(addr);

    // The paper's populations: honest at two qualities, a hibernating
    // attacker, a windowed periodic attacker, and a colluder-inflated
    // history. Server ids spread across both shards.
    let cases: Vec<(&str, TransactionHistory)> = vec![
        ("honest p=0.9", workload::honest_history(400, 0.9, 11)),
        ("honest p=0.6", workload::honest_history(350, 0.6, 12)),
        ("short honest", workload::honest_history(8, 0.9, 13)),
        ("hibernating", workload::hibernating_history(300, 0.9, 80, 14)),
        ("periodic", workload::periodic_history(400, 20, 0.3, 15)),
        ("colluding", workload::colluding_history(200, 3, 150, 0.9, 16)),
    ];

    let mut servers = Vec::new();
    for (idx, (label, history)) in cases.iter().enumerate() {
        let server = ServerId::new(1_000 + idx as u64);
        ingest_over_socket(&mut client, history, server);
        servers.push((server, *label, reference.assess(history).expect("offline")));
    }

    for (server, label, offline) in &servers {
        // Single assess.
        let (status, body) = client.get(&format!("/assess/{}", server.value()));
        assert_eq!(status, 200, "{label}: {body}");
        assert_matches_offline(&body, offline, label);

        // Traced assess serves the same verdict with provenance.
        let (status, traced) = client.get(&format!("/assess_traced/{}", server.value()));
        assert_eq!(status, 200, "{label}: {traced}");
        assert_matches_offline(&traced, offline, &format!("{label} (traced)"));
        assert!(traced.contains("\"scheme\":"), "{traced}");
        assert!(traced.contains("\"from_cache\":"), "{traced}");
    }

    // Batch assess: one request, every server, the same bits.
    let batch_body: String = servers
        .iter()
        .map(|(s, _, _)| format!("{}\n", s.value()))
        .collect();
    let (status, batch) = client.post("/assess", batch_body.as_bytes());
    assert_eq!(status, 200, "{batch}");
    for (server, label, offline) in &servers {
        let marker = format!("\"server\":{}", server.value());
        let start = batch.find(&marker).unwrap_or_else(|| panic!("{label} missing: {batch}"));
        let end = batch[start..].find('}').map_or(batch.len(), |e| start + e + 1);
        assert_matches_offline(&batch[start - 1..end], offline, &format!("{label} (batch)"));
    }
    edge.drain();
}

#[test]
fn incremental_socket_ingest_tracks_the_growing_history() {
    // Equivalence must hold at every growth step, not just at the end:
    // ingest a history in stages and cross-check after each.
    let service_config = fast_service_config().with_shards(1);
    let reference = OfflineReference::from_config(&service_config).expect("reference");
    let (edge, addr) = boot(service_config, EdgeConfig::default().with_workers(1));
    let mut client = TestClient::connect(addr);

    let full = workload::hibernating_history(250, 0.9, 60, 21);
    let server = ServerId::new(42);
    let feedbacks = restamp(&full, server);
    let mut prefix = TransactionHistory::new();
    for (step, chunk) in feedbacks.chunks(62).enumerate() {
        let mut body = String::new();
        for feedback in chunk {
            wire::render_feedback_line(&mut body, feedback);
            prefix.push(*feedback);
        }
        assert_eq!(client.post("/ingest", body.as_bytes()).0, 200);
        let offline = reference.assess(&prefix).expect("offline");
        let (status, served) = client.get("/assess/42");
        assert_eq!(status, 200, "step {step}: {served}");
        assert_matches_offline(&served, &offline, &format!("step {step}"));
    }
    edge.drain();
}
