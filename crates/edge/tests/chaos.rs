//! Backpressure and fault-injection through the socket: shedding maps
//! to `429` with exact accounting, worker panics behind the edge never
//! wedge it, and `/metrics` agrees with what clients observed.

mod support;

use hp_edge::{wire, EdgeConfig};
use hp_service::{FaultPlan, IngestPolicy};
use std::time::Duration;
use support::{boot, fast_service_config, TestClient};

/// Sums every sample of one per-shard counter in a Prometheus
/// exposition.
fn prom_sum(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

#[test]
fn shedding_returns_429_with_exact_accounting() {
    // One shard with a 2-deep queue and a Shed policy; a delayed assess
    // stalls the worker so ingests pile up deterministically.
    let service_config = fast_service_config()
        .with_shards(1)
        .with_queue_capacity(2)
        .with_ingest_policy(IngestPolicy::Shed)
        .with_fault_plan(FaultPlan::default().with_assess_delay(Duration::from_millis(400)));
    let (edge, addr) = boot(service_config, EdgeConfig::default().with_workers(4));

    // Seed the server, then stall the shard with an assess on its own
    // connection (the edge worker serving it blocks; others keep going).
    let mut seeder = TestClient::connect(addr);
    assert_eq!(seeder.post("/ingest", b"0,5,1,+\n").0, 200);
    let stall = std::thread::spawn(move || {
        let mut conn = TestClient::connect(addr);
        conn.get("/assess/5")
    });
    std::thread::sleep(Duration::from_millis(100));

    // Flood while the worker sleeps: the queue holds 2 batches, the
    // rest are shed and answered 429 with the exact split.
    let mut sent = 0u64;
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut saw_429 = false;
    for i in 0..8u64 {
        let body = format!("{},5,{},+\n{},5,{},-\n", 10 + 2 * i, i, 11 + 2 * i, i);
        let (status, response) = seeder.post("/ingest", body.as_bytes());
        sent += 2;
        let a = wire::json_u64(&response, "accepted").expect("accepted field");
        let s = wire::json_u64(&response, "shed").expect("shed field");
        assert_eq!(a + s, 2, "every feedback accounted: {response}");
        match status {
            200 => assert_eq!(s, 0, "200 must mean nothing shed: {response}"),
            429 => {
                assert!(s > 0, "429 must mean something shed: {response}");
                saw_429 = true;
            }
            other => panic!("unexpected status {other}: {response}"),
        }
        accepted += a;
        shed += s;
    }
    assert!(saw_429, "the flood never tripped shedding");
    assert_eq!(accepted + shed, sent);

    let (status, _) = stall.join().expect("stalled assess thread");
    assert_eq!(status, 200);

    // Quiesce, then the exposition must match the client's ledger
    // exactly (+1 for the seed feedback).
    std::thread::sleep(Duration::from_millis(300));
    let (_, metrics) = seeder.get("/metrics");
    assert_eq!(prom_sum(&metrics, "hp_feedbacks_ingested_total"), accepted + 1);
    assert_eq!(prom_sum(&metrics, "hp_feedbacks_shed_total"), shed);
    assert_eq!(
        edge.metrics().responses_with(429),
        metrics
            .lines()
            .find(|l| l.starts_with("hp_edge_responses_total{status=\"429\"}"))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or(0),
    );
    edge.drain();
}

#[test]
fn worker_panic_behind_the_edge_never_wedges_it() {
    // Applying feedback (7, t=3) panics the shard worker every time
    // until the supervisor quarantines it. The edge must stay fully
    // responsive throughout: ingest is async, so the client sees 200,
    // the crash happens behind the channel, and the supervisor restarts
    // the worker.
    let service_config = fast_service_config()
        .with_shards(1)
        .with_fault_plan(FaultPlan::default().with_poison(7, 3));
    let (edge, addr) = boot(service_config, EdgeConfig::default().with_workers(2));

    let mut client = TestClient::connect(addr);
    let (status, _) = client.post("/ingest", b"0,7,1,+\n1,7,2,+\n2,7,3,+\n");
    assert_eq!(status, 200);
    // The poisoned record: accepted at the socket, detonates at apply.
    let (status, _) = client.post("/ingest", b"3,7,4,+\n");
    assert_eq!(status, 200);

    // The supervisor quarantines the poison and respawns the worker;
    // the edge keeps answering the whole time.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let restarts = loop {
        let (status, metrics) = client.get("/metrics");
        assert_eq!(status, 200);
        let restarts = prom_sum(&metrics, "hp_shard_restarts_total");
        if restarts > 0 && prom_sum(&metrics, "hp_quarantined_records_total") > 0 {
            break restarts;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never recovered the shard"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(restarts >= 1);

    // Post-recovery, the same server still assesses over the socket.
    let (status, body) = client.get("/assess/7");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"server\":7"), "{body}");
    // And health reports the shard population honestly.
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200, "{body}");
    edge.drain();
}

#[test]
fn trace_ids_survive_worker_respawn_into_crash_forensics() {
    // A request whose poisoned feedback panics the shard worker must
    // still be reconstructible from the one ID the client saw: the
    // supervisor stamps the worker_restart and replay events with the
    // trace ID of the in-flight request that crashed it.
    let service_config = fast_service_config()
        .with_shards(1)
        .with_tracing(true)
        .with_fault_plan(FaultPlan::default().with_poison(7, 3));
    let (edge, addr) = boot(service_config, EdgeConfig::default().with_workers(2));

    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,7,1,+\n1,7,2,+\n").0, 200);
    // The poisoned record rides a traced ingest: accepted at the socket
    // (ingest is async), detonates at apply behind the channel.
    let (status, head, _) = client.request_with_headers(
        "POST",
        "/ingest",
        &[("x-hp-trace", "c0ffee")],
        b"3,7,3,+\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        support::response_header(&head, "x-hp-trace").as_deref(),
        Some("0000000000c0ffee")
    );

    // Wait for the supervisor to respawn the worker and quarantine the
    // poison; the edge answers /metrics the whole time.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, metrics) = client.get("/metrics");
        assert_eq!(status, 200);
        if prom_sum(&metrics, "hp_shard_restarts_total") > 0
            && prom_sum(&metrics, "hp_quarantined_records_total") > 0
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never recovered the shard"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Crash forensics carry the client's trace ID across the respawn.
    let service = edge.service().expect("service is ready");
    let events = service.trace_events();
    let carrying = |label: &str| {
        events
            .iter()
            .any(|e| e.kind.label() == label && e.trace == 0x00c0_ffee)
    };
    assert!(
        carrying("worker_restart"),
        "no worker_restart stamped with the crashing request's trace: {events:#?}"
    );
    assert!(
        carrying("replay_start"),
        "no replay stamped with the crashing request's trace: {events:#?}"
    );
    // The journal append for the traced batch is stamped too, so the
    // whole write path reconstructs from the one ID.
    assert!(
        carrying("journal_append"),
        "no journal_append stamped with the request trace: {events:#?}"
    );

    // Post-recovery the server still assesses, and the edge's own span
    // tree for the crashing ingest is still resolvable.
    let (status, body) = client.get("/assess/7");
    assert_eq!(status, 200, "{body}");
    let (status, tree) = client.get("/debug/trace/c0ffee");
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains("\"endpoint\":\"/ingest\""), "{tree}");
    edge.drain();
}

#[test]
fn degraded_answers_are_stamped_with_staleness_and_reason() {
    // A 300 ms assess stall against a 50 ms edge deadline forces the
    // degraded path: the edge must serve the last published verdict,
    // stamped degraded with version provenance, not an error.
    let service_config = fast_service_config()
        .with_shards(1)
        .with_fault_plan(FaultPlan::default().with_assess_delay(Duration::from_millis(300)));
    let (edge, addr) = boot(
        service_config,
        EdgeConfig::default()
            .with_workers(2)
            .with_assess_deadline(Some(Duration::from_millis(50))),
    );

    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,9,1,+\n1,9,2,+\n2,9,3,+\n").0, 200);
    // First assess publishes a verdict (slow, but within the queue: the
    // edge waits out the full stall only when there is no published
    // verdict to degrade to — so this one may take the slow path).
    let (first_status, first_body) = client.get("/assess/9");
    // Either a fresh (slow) answer or 504 if nothing was published yet.
    assert!(
        first_status == 200 || first_status == 504,
        "{first_status}: {first_body}"
    );
    // Retry until a verdict exists, then degrade against it.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let degraded_body = loop {
        let (status, body) = client.get("/assess/9");
        if status == 200 && wire::json_raw(&body, "degraded") == Some("true") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never saw a degraded answer; last: {status} {body}"
        );
    };
    assert!(degraded_body.contains("\"reason\":\"deadline_exceeded\""), "{degraded_body}");
    assert!(wire::json_u64(&degraded_body, "staleness").is_some(), "{degraded_body}");
    assert!(wire::json_u64(&degraded_body, "computed_at_version").is_some());

    // The degraded ledger is visible in the exposition.
    let (_, metrics) = client.get("/metrics");
    assert!(prom_sum(&metrics, "hp_degraded_answers_total") >= 1);
    edge.drain();
}
