//! End-to-end observability through the socket: trace IDs propagate
//! and echo, span trees resolve over `/debug/trace/{id}` and account
//! for client-observed latency, the merged `/metrics` exposition stays
//! lint-clean with the new families present, and `/version` reports
//! build + service identity.

mod support;

use hp_edge::{wire, EdgeConfig};
use hp_service::obs::lint_prometheus;
use std::time::Instant;
use support::{boot, boot_default, fast_service_config, response_header, TestClient};

#[test]
fn trace_ids_echo_and_resolve_to_span_trees() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,5,1,+\n1,5,2,+\n2,5,3,-\n").0, 200);

    // A client-supplied trace ID wins and is echoed back zero-padded.
    let (status, head, body) =
        client.request_with_headers("GET", "/assess/5", &[("x-hp-trace", "feedcafe")], b"");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        response_header(&head, "x-hp-trace").as_deref(),
        Some("00000000feedcafe"),
        "trace echo missing from {head:?}"
    );

    // The span tree is findable by that ID and attributes the request
    // across the pipeline stages.
    let (status, tree) = client.get("/debug/trace/feedcafe");
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains("\"trace\":\"00000000feedcafe\""), "{tree}");
    assert_eq!(wire::json_str(&tree, "endpoint"), Some("/assess"));
    for stage in ["edge_read", "queue_wait", "compute", "write"] {
        assert!(tree.contains(&format!("\"name\":\"{stage}\"")), "missing {stage}: {tree}");
    }
    // The tree's detail carries verdict provenance.
    let detail = wire::json_str(&tree, "detail").expect("tree detail");
    assert!(detail.contains("verdict="), "{detail}");
    assert!(detail.contains("cache_hit="), "{detail}");

    // The slow-request capture lists the same tree under its route.
    let (status, slow) = client.get("/debug/slow");
    assert_eq!(status, 200);
    assert!(slow.contains("\"endpoint\":\"/assess\""), "{slow}");
    assert!(slow.contains("00000000feedcafe"), "{slow}");
    edge.drain();
}

#[test]
fn span_stage_sum_accounts_for_client_observed_latency() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,8,1,+\n1,8,2,+\n").0, 200);

    // Time the traced assess from the client's side of the socket.
    let started = Instant::now();
    let (status, _head, body) =
        client.request_with_headers("GET", "/assess/8", &[("x-hp-trace", "abc123")], b"");
    let client_observed_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(status, 200, "{body}");

    let (status, tree) = client.get("/debug/trace/abc123");
    assert_eq!(status, 200, "{tree}");
    let total_ns = wire::json_u64(&tree, "total_ns").expect("total_ns");
    let stage_sum_ns = wire::json_u64(&tree, "stage_sum_ns").expect("stage_sum_ns");

    // The tree's total must not exceed what the client saw (the client
    // window brackets the server window), and the recorded stages must
    // account for nearly all of it: the only untimed gaps are a few
    // instants captured between adjacent stages.
    assert!(
        total_ns <= client_observed_ns,
        "span total {total_ns}ns exceeds client-observed {client_observed_ns}ns"
    );
    let unattributed = total_ns.saturating_sub(stage_sum_ns);
    let slack_ns = 250_000_000u64.max(total_ns / 5);
    assert!(
        unattributed <= slack_ns,
        "stages sum to {stage_sum_ns}ns of a {total_ns}ns tree \
         ({unattributed}ns unattributed, slack {slack_ns}ns): {tree}"
    );
    edge.drain();
}

#[test]
fn untraced_requests_get_generated_ids_that_resolve() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,3,1,+\n").0, 200);

    let (status, head, body) = client.request_with_headers("GET", "/assess/3", &[], b"");
    assert_eq!(status, 200, "{body}");
    let trace = response_header(&head, "x-hp-trace").expect("generated trace echoed");
    assert_eq!(trace.len(), 16, "zero-padded hex id: {trace}");

    let (status, tree) = client.get(&format!("/debug/trace/{trace}"));
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains(&format!("\"trace\":\"{trace}\"")), "{tree}");

    // Non-service routes are never traced: no echo on /metrics.
    let (_, head, _) = client.request_with_headers("GET", "/metrics", &[], b"");
    assert!(response_header(&head, "x-hp-trace").is_none());
    edge.drain();
}

#[test]
fn merged_exposition_is_lint_clean_with_tracing_families() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,4,1,+\n1,4,2,+\n").0, 200);
    let (status, _head, body) =
        client.request_with_headers("GET", "/assess/4", &[("x-hp-trace", "beef")], b"");
    assert_eq!(status, 200, "{body}");

    let (status, metrics) = client.get("/metrics");
    assert_eq!(status, 200);

    // The merged service + edge + SLO exposition parses clean under the
    // promtool-style lint: no duplicate families, ordered buckets, and
    // consistent sums.
    let problems = lint_prometheus(&metrics);
    assert!(problems.is_empty(), "exposition lint: {problems:?}");

    // Queue-wait attribution per shard (tentpole acceptance).
    assert!(
        metrics.contains("hp_shard_queue_wait_seconds_bucket{shard=\"0\""),
        "per-shard queue-wait histogram missing"
    );
    assert!(metrics.contains("hp_shard_utilization{shard=\"0\"}"));
    // Per-route edge latency with an exemplar linking back to the trace.
    assert!(metrics.contains("hp_edge_request_duration_seconds_bucket{route=\"/assess\""));
    assert!(
        metrics.contains("trace_id=\"000000000000beef\""),
        "no exemplar for the traced assess in the exposition"
    );
    // SLO burn rates, build identity (both layers), span ring counters.
    assert!(metrics.contains("hp_slo_burn_rate{objective=\"assess_latency\",window=\"5m\"}"));
    assert!(metrics.contains("hp_slo_assess_latency_objective_seconds"));
    assert!(metrics.contains("hp_build_info{"));
    assert!(metrics.contains("hp_edge_build_info{"));
    assert!(metrics.contains("hp_edge_spans_recorded_total"));
    edge.drain();
}

#[test]
fn disabled_spans_still_echo_client_ids_but_record_nothing() {
    let (edge, addr) = boot(
        fast_service_config(),
        EdgeConfig::default().with_workers(2).with_spans(false),
    );
    let mut client = TestClient::connect(addr);
    assert_eq!(client.post("/ingest", b"0,6,1,+\n").0, 200);

    // A client trace still rides through and echoes (correlation works
    // even with capture off)...
    let (status, head, _body) =
        client.request_with_headers("GET", "/assess/6", &[("x-hp-trace", "aa55")], b"");
    assert_eq!(status, 200);
    assert_eq!(response_header(&head, "x-hp-trace").as_deref(), Some("000000000000aa55"));

    // ...but no tree is captured, and no IDs are generated for untraced
    // requests.
    let (status, body) = client.get("/debug/trace/aa55");
    assert_eq!(status, 404, "{body}");
    let (_, head, _) = client.request_with_headers("GET", "/assess/6", &[], b"");
    assert!(response_header(&head, "x-hp-trace").is_none());

    let (_, metrics) = client.get("/metrics");
    assert!(metrics.contains("hp_edge_spans_recorded_total 0"), "span store must stay empty");
    // Route latency histograms keep working with spans off.
    assert!(metrics.contains("hp_edge_request_duration_seconds_bucket{route=\"/assess\""));
    edge.drain();
}

#[test]
fn debug_trace_rejects_malformed_and_unknown_ids() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);

    let (status, body) = client.get("/debug/trace/banana");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_trace_id"), "{body}");
    let (status, _) = client.get("/debug/trace/0");
    assert_eq!(status, 400, "the zero id is reserved for 'untraced'");
    let (status, body) = client.get("/debug/trace/abcdef0123456789");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("trace_not_found"), "{body}");
    edge.drain();
}

#[test]
fn version_reports_build_and_service_identity() {
    let (edge, addr) = boot_default();
    let mut client = TestClient::connect(addr);
    let (status, body) = client.get("/version");
    assert_eq!(status, 200, "{body}");
    assert_eq!(wire::json_str(&body, "name"), Some("hp-edge"));
    assert_eq!(
        wire::json_str(&body, "version"),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(wire::json_str(&body, "git").is_some(), "{body}");
    assert_eq!(wire::json_str(&body, "state"), Some("ready"));
    assert!(wire::json_str(&body, "trust").is_some(), "{body}");
    assert_eq!(wire::json_u64(&body, "shards"), Some(2), "{body}");
    edge.drain();
}
