//! # hp-experiments — the paper's evaluation, regenerated
//!
//! One module (and one binary) per figure of §5:
//!
//! | Binary | Paper figure | What it sweeps |
//! |--------|--------------|----------------|
//! | `fig3` | Fig. 3 | attacker cost vs prep size, average trust function |
//! | `fig4` | Fig. 4 | attacker cost vs prep size, weighted trust function |
//! | `fig5` | Fig. 5 | collusion attacker cost vs prep size, average |
//! | `fig6` | Fig. 6 | collusion attacker cost vs prep size, weighted |
//! | `fig7` | Fig. 7 | detection rate vs attack-window size |
//! | `fig8` | Fig. 8 | calibrated 95% L¹ threshold vs history size |
//! | `fig9` | Fig. 9 | behavior-testing running time vs history size |
//! | `ablation` | — | distance metric / correction / suffix-schedule ablations |
//! | `welfare` | — | marketplace-level client harm with and without screening |
//!
//! Run everything with `cargo run --release -p hp-experiments --bin all`.
//! Each binary accepts `--fast` for a smoke-test-sized run (also used by
//! the integration tests) and writes a CSV next to its stdout table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod sweep;
pub mod table;

pub use sweep::{median, RunMode};
pub use table::Table;
