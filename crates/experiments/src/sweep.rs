//! Replication and aggregation helpers.

/// How big an experiment run should be.
///
/// `Fast` keeps every sweep point but shrinks replication counts and
/// calibration trials so the full suite finishes in seconds — used by the
/// integration tests and by `--fast`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RunMode {
    /// Full-size run (paper-comparable).
    #[default]
    Full,
    /// Smoke-test-sized run.
    Fast,
}

impl RunMode {
    /// Parses process arguments: any `--fast` selects [`RunMode::Fast`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--fast") {
            RunMode::Fast
        } else {
            RunMode::Full
        }
    }

    /// Replications per sweep point.
    pub fn replications(self) -> usize {
        match self {
            RunMode::Full => 7,
            RunMode::Fast => 2,
        }
    }

    /// Monte-Carlo calibration trials.
    pub fn calibration_trials(self) -> usize {
        match self {
            RunMode::Full => 1500,
            RunMode::Fast => 300,
        }
    }

    /// Trials for detection-rate estimation.
    pub fn detection_trials(self) -> usize {
        match self {
            RunMode::Full => 200,
            RunMode::Fast => 20,
        }
    }

    /// Attack-phase step budget.
    pub fn max_steps(self) -> usize {
        match self {
            RunMode::Full => 4000,
            RunMode::Fast => 800,
        }
    }
}

/// The median of a sample (mean of the middle two for even sizes).
///
/// Experiment sweeps report medians: a single unlucky preparation draw
/// can fail the screening outright (the ~5% honest false-positive rate)
/// and would dominate a mean.
///
/// # Panics
///
/// Panics on an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(hp_experiments::median(&[3.0, 1.0, 2.0]), 2.0);
/// assert_eq!(hp_experiments::median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
/// ```
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in experiment results"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians() {
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn run_mode_scales() {
        assert!(RunMode::Full.replications() > RunMode::Fast.replications());
        assert!(RunMode::Full.calibration_trials() > RunMode::Fast.calibration_trials());
        assert!(RunMode::Full.detection_trials() > RunMode::Fast.detection_trials());
        assert!(RunMode::Full.max_steps() > RunMode::Fast.max_steps());
    }
}
