//! Aligned-table and CSV output for experiment results.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A simple results table: headers plus rows of cells.
///
/// # Examples
///
/// ```
/// use hp_experiments::Table;
///
/// let mut t = Table::new("demo", vec!["x".into(), "y".into()]);
/// t.push_row(vec!["1".into(), "2.5".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("x"));
/// assert!(rendered.contains("2.5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the headers'.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
    }

    /// Formats a float cell consistently (4 significant decimals, trimmed).
    pub fn fmt_f64(value: f64) -> String {
        if value.is_infinite() {
            return "∞".into();
        }
        if (value.fract()).abs() < 1e-9 && value.abs() < 1e12 {
            format!("{}", value as i64)
        } else {
            format!("{value:.4}")
        }
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", escape_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_row(row))?;
        }
        Ok(())
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let rendered: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "  {}", rendered.join("  "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", vec!["a".into(), "long-header".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100000".into(), "3.5".into()]);
        t
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn display_aligns_columns() {
        let rendered = sample().to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("== t =="));
        // Header and data lines all have equal length.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn fmt_f64_behavior() {
        assert_eq!(Table::fmt_f64(3.0), "3");
        assert_eq!(Table::fmt_f64(2.89793), "2.8979");
        assert_eq!(Table::fmt_f64(f64::INFINITY), "∞");
    }

    #[test]
    fn csv_roundtrip_and_escaping() {
        let dir = std::env::temp_dir().join("hp-experiments-test");
        let path = dir.join("out.csv");
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
