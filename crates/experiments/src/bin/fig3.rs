//! Regenerates Fig. 3: attacker cost vs initial history, average function.
use hp_experiments::figures::{attack_cost, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = attack_cost::run(mode, attack_cost::TrustKind::Average)
        .expect("fig3 experiment failed");
    emit("fig3", &tables).expect("writing fig3 output failed");
}
