//! Regenerates Fig. 4: attacker cost vs initial history, weighted function.
use hp_experiments::figures::{attack_cost, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = attack_cost::run(mode, attack_cost::TrustKind::Weighted)
        .expect("fig4 experiment failed");
    emit("fig4", &tables).expect("writing fig4 output failed");
}
