//! Regenerates Fig. 7: detection rate vs attack window size.
use hp_experiments::figures::{detection, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = detection::run(mode).expect("fig7 experiment failed");
    emit("fig7", &tables).expect("writing fig7 output failed");
}
