//! Regenerates Fig. 5: cost of attackers with collusion, average function.
use hp_experiments::figures::{attack_cost, collusion_cost, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = collusion_cost::run(mode, attack_cost::TrustKind::Average)
        .expect("fig5 experiment failed");
    emit("fig5", &tables).expect("writing fig5 output failed");
}
