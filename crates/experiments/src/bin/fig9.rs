//! Regenerates Fig. 9: behavior-testing running time vs history size.
use hp_experiments::figures::{emit, performance};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = performance::run(mode).expect("fig9 experiment failed");
    emit("fig9", &tables).expect("writing fig9 output failed");
}
