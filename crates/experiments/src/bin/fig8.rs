//! Regenerates Fig. 8: distribution distance threshold vs history size.
use hp_experiments::figures::{distance_threshold, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = distance_threshold::run(mode).expect("fig8 experiment failed");
    emit("fig8", &tables).expect("writing fig8 output failed");
}
