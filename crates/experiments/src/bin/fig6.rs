//! Regenerates Fig. 6: cost of attackers with collusion, weighted function.
use hp_experiments::figures::{attack_cost, collusion_cost, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = collusion_cost::run(mode, attack_cost::TrustKind::Weighted)
        .expect("fig6 experiment failed");
    emit("fig6", &tables).expect("writing fig6 output failed");
}
