//! Runs the design-choice ablations (distance metric, correction, schedule).
use hp_experiments::figures::{ablation, emit};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = ablation::run(mode).expect("ablation experiment failed");
    emit("ablation", &tables).expect("writing ablation output failed");
}
