//! Runs the marketplace-welfare experiment (beyond the paper's evaluation).
use hp_experiments::figures::{emit, welfare};
use hp_experiments::RunMode;

fn main() {
    let mode = RunMode::from_args();
    let tables = welfare::run(mode).expect("welfare experiment failed");
    emit("welfare", &tables).expect("writing welfare output failed");
}
