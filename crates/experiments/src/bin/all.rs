//! Regenerates every figure of the paper's evaluation section in order.
use hp_experiments::figures::{
    ablation, attack_cost, collusion_cost, detection, distance_threshold, emit, performance,
    welfare,
};
use hp_experiments::RunMode;

type FigureJob = (&'static str, Box<dyn Fn() -> Vec<hp_experiments::Table>>);

fn main() {
    let mode = RunMode::from_args();
    let jobs: Vec<FigureJob> = vec![
        (
            "fig3",
            Box::new(move || attack_cost::run(mode, attack_cost::TrustKind::Average).unwrap()),
        ),
        (
            "fig4",
            Box::new(move || attack_cost::run(mode, attack_cost::TrustKind::Weighted).unwrap()),
        ),
        (
            "fig5",
            Box::new(move || collusion_cost::run(mode, attack_cost::TrustKind::Average).unwrap()),
        ),
        (
            "fig6",
            Box::new(move || collusion_cost::run(mode, attack_cost::TrustKind::Weighted).unwrap()),
        ),
        ("fig7", Box::new(move || detection::run(mode).unwrap())),
        (
            "fig8",
            Box::new(move || distance_threshold::run(mode).unwrap()),
        ),
        ("fig9", Box::new(move || performance::run(mode).unwrap())),
        ("ablation", Box::new(move || ablation::run(mode).unwrap())),
        ("welfare", Box::new(move || welfare::run(mode).unwrap())),
    ];
    for (slug, job) in jobs {
        eprintln!("running {slug} …");
        let tables = job();
        emit(slug, &tables).expect("writing experiment output failed");
    }
}
