//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Distance metric** — the paper chose L¹; how do TV/L²/KS/χ² compare
//!    on detection power and honest false positives?
//! 2. **Multiple-testing correction** — paper-literal (none) vs Bonferroni.
//! 3. **Suffix schedule** — the paper's arithmetic step-back vs the
//!    geometric (Θ(log n) tests) alternative.

use crate::sweep::RunMode;
use crate::table::Table;
use hp_core::testing::{
    BehaviorTestConfig, Correction, MultiBehaviorTest, SingleBehaviorTest, SuffixSchedule,
};
use hp_core::trust::AverageTrust;
use hp_core::CoreError;
use hp_sim::detection::{detection_rate, false_positive_rate, DetectionConfig};
use hp_sim::{attack_cost, AttackCostConfig, Screening};
use hp_stats::DistanceKind;

/// Runs all three ablations.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode) -> Result<Vec<Table>, CoreError> {
    Ok(vec![
        distance_metrics(mode)?,
        corrections(mode)?,
        schedules(mode)?,
    ])
}

fn detection_config(mode: RunMode) -> DetectionConfig {
    DetectionConfig {
        trials: mode.detection_trials(),
        ..Default::default()
    }
}

/// Detection power and honest FPR of the single test under each distance
/// metric.
fn distance_metrics(mode: RunMode) -> Result<Table, CoreError> {
    let mut table = Table::new(
        "Ablation A: distance metric (single test, m=10, 95%)",
        vec![
            "metric".into(),
            "detect_w20".into(),
            "detect_w40".into(),
            "fpr_p0.9".into(),
        ],
    );
    let cfg = detection_config(mode);
    for kind in DistanceKind::all() {
        let config = BehaviorTestConfig::builder()
            .distance(kind)
            .calibration_trials(mode.calibration_trials())
            .build()?;
        let test = SingleBehaviorTest::new(config)?;
        table.push_row(vec![
            kind.name().into(),
            Table::fmt_f64(detection_rate(20, &test, &cfg)?),
            Table::fmt_f64(detection_rate(40, &test, &cfg)?),
            Table::fmt_f64(false_positive_rate(0.9, &test, &cfg)?),
        ]);
    }
    Ok(table)
}

/// The multi-test with and without Bonferroni: the paper-literal variant
/// detects more, and flags almost every honest long history.
fn corrections(mode: RunMode) -> Result<Table, CoreError> {
    let mut table = Table::new(
        "Ablation B: multiple-testing correction (multi test, n=1000)",
        vec![
            "correction".into(),
            "detect_w20".into(),
            "detect_w40".into(),
            "fpr_p0.9".into(),
        ],
    );
    let cfg = detection_config(mode);
    for (name, correction) in [
        ("none (paper)", Correction::None),
        ("bonferroni", Correction::Bonferroni),
    ] {
        let config = BehaviorTestConfig::builder()
            .correction(correction)
            .calibration_trials(mode.calibration_trials())
            .build()?;
        let test = MultiBehaviorTest::new(config)?;
        table.push_row(vec![
            name.into(),
            Table::fmt_f64(detection_rate(20, &test, &cfg)?),
            Table::fmt_f64(detection_rate(40, &test, &cfg)?),
            Table::fmt_f64(false_positive_rate(0.9, &test, &cfg)?),
        ]);
    }
    Ok(table)
}

/// Arithmetic vs geometric suffix schedules: detection, FPR, and the cost
/// they impose on the strategic attacker at a long preparation phase.
fn schedules(mode: RunMode) -> Result<Table, CoreError> {
    let mut table = Table::new(
        "Ablation C: multi-test suffix schedule",
        vec![
            "schedule".into(),
            "detect_w20".into(),
            "fpr_p0.9".into(),
            "attack_cost_prep800".into(),
        ],
    );
    let cfg = detection_config(mode);
    let avg = AverageTrust::default();
    for (name, schedule) in [
        ("arithmetic (paper)", SuffixSchedule::Arithmetic),
        ("geometric", SuffixSchedule::Geometric),
    ] {
        let config = BehaviorTestConfig::builder()
            .schedule(schedule)
            .calibration_trials(mode.calibration_trials())
            .build()?;
        let test = MultiBehaviorTest::new(config)?;
        let mut costs: Vec<f64> = Vec::new();
        for rep in 0..mode.replications() {
            let result = attack_cost(
                &AttackCostConfig {
                    prep_size: 800,
                    max_steps: mode.max_steps(),
                    seed: hp_stats::derive_seed(0xAB1A, rep as u64),
                    ..Default::default()
                },
                &avg,
                Screening::Test(&test),
            )?;
            costs.push(result.good_transactions as f64);
        }
        table.push_row(vec![
            name.into(),
            Table::fmt_f64(detection_rate(20, &test, &cfg)?),
            Table::fmt_f64(false_positive_rate(0.9, &test, &cfg)?),
            Table::fmt_f64(crate::sweep::median(&costs)),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_tables_have_expected_shape() {
        let tables = run(RunMode::Fast).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows().len(), 5, "five distance metrics");
        assert_eq!(tables[1].rows().len(), 2, "two corrections");
        assert_eq!(tables[2].rows().len(), 2, "two schedules");
    }

    #[test]
    fn uncorrected_multi_has_higher_fpr() {
        let tables = run(RunMode::Fast).unwrap();
        let rows = tables[1].rows();
        let fpr_none: f64 = rows[0][3].parse().unwrap();
        let fpr_bonf: f64 = rows[1][3].parse().unwrap();
        assert!(
            fpr_none >= fpr_bonf,
            "paper-literal FPR {fpr_none} must be ≥ Bonferroni {fpr_bonf}"
        );
    }
}
