//! Fig. 9: behavior-testing running time vs history size.

use crate::sweep::RunMode;
use crate::table::Table;
use hp_core::testing::{
    shared_calibrator, BehaviorTestConfig, MultiBehaviorTest, MultiTestMode, SingleBehaviorTest,
};
use hp_core::{CoreError, ServerId, TransactionHistory};
use rand::RngExt;
use std::sync::Arc;
use std::time::Instant;

/// History sizes on the x-axis (paper: 100 000 – 800 000).
pub fn history_sizes(mode: RunMode) -> Vec<usize> {
    match mode {
        RunMode::Full => (1..=8).map(|i| i * 100_000).collect(),
        RunMode::Fast => (1..=4).map(|i| i * 20_000).collect(),
    }
}

/// Runs the Fig. 9 sweep: wall-clock time of single-behavior testing,
/// naive multi-testing (re-test every suffix from scratch — the O(n²)
/// baseline of §5.5) and optimized multi-testing (intermediate-statistic
/// reuse — the paper's O(n) variant), on honest histories of increasing
/// size. The multi-test steps back `k = 1000` transactions per suffix, as
/// large histories warrant.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode) -> Result<Vec<Table>, CoreError> {
    let config = BehaviorTestConfig::builder()
        .calibration_trials(mode.calibration_trials())
        .step(1000)
        .build()?;
    let calibrator = shared_calibrator(&config)?;
    let single = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&calibrator))?;
    let naive = MultiBehaviorTest::with_calibrator(config.clone(), Arc::clone(&calibrator))?
        .with_mode(MultiTestMode::Naive);
    let optimized = MultiBehaviorTest::with_calibrator(config, calibrator)?
        .with_mode(MultiTestMode::Optimized);

    let mut table = Table::new(
        "Fig. 9: time cost vs initial history size",
        vec![
            "history_size".into(),
            "single_ms".into(),
            "multi_naive_ms".into(),
            "multi_optimized_ms".into(),
        ],
    );

    for &n in &history_sizes(mode) {
        let history = big_honest_history(n, 0.95, n as u64);

        // Warm the threshold cache so the timings measure the algorithms,
        // not one-time Monte-Carlo calibration.
        let _ = single.evaluate_detailed(&history)?;
        let _ = naive.evaluate_detailed(&history)?;
        let _ = optimized.evaluate_detailed(&history)?;

        let t0 = Instant::now();
        let s = single.evaluate_detailed(&history)?;
        let single_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let nv = naive.evaluate_detailed(&history)?;
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let opt = optimized.evaluate_detailed(&history)?;
        let optimized_ms = t0.elapsed().as_secs_f64() * 1e3;

        debug_assert_eq!(nv, opt, "naive and optimized must agree");
        let _ = (s, nv, opt);

        table.push_row(vec![
            n.to_string(),
            Table::fmt_f64(single_ms),
            Table::fmt_f64(naive_ms),
            Table::fmt_f64(optimized_ms),
        ]);
    }
    Ok(vec![table])
}

/// A large honest history built without the per-feedback client machinery
/// (client identity is irrelevant to single/multi testing).
fn big_honest_history(n: usize, p: f64, seed: u64) -> TransactionHistory {
    let mut rng = hp_stats::seeded_rng(seed);
    TransactionHistory::from_outcomes(ServerId::new(0), (0..n).map(|_| rng.random::<f64>() < p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_slower_than_optimized_at_scale() {
        let tables = run(RunMode::Fast).unwrap();
        let rows = tables[0].rows();
        // At the largest fast size the asymptotic gap must already show.
        let last = rows.last().unwrap();
        let naive: f64 = last[2].parse().unwrap();
        let optimized: f64 = last[3].parse().unwrap();
        assert!(
            naive > optimized,
            "naive {naive}ms should exceed optimized {optimized}ms"
        );
    }
}
