//! Fig. 8: calibrated 95% distribution-distance threshold vs history size.

use crate::sweep::RunMode;
use crate::table::Table;
use hp_core::CoreError;
use hp_stats::{CalibrationConfig, ThresholdCalibrator};

/// History sizes on the x-axis.
pub const HISTORY_SIZES: [usize; 9] = [100, 200, 300, 500, 1000, 1500, 2000, 3000, 5000];

/// Runs the Fig. 8 sweep: the 95%-confidence L¹ threshold ε for window
/// counts of a history of `n` transactions (m = 10, so k = n/10 windows),
/// at p̂ = 0.90 and 0.95. The paper's observation is that ε "converges
/// very quickly as the initial history size increases" — the curve is
/// steep below ~1000 transactions and flat beyond.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn run(mode: RunMode) -> Result<Vec<Table>, CoreError> {
    let calibrator = ThresholdCalibrator::new(CalibrationConfig {
        // Thresholds are the *measurand* here, so spend more trials on
        // them than the screening tests do.
        trials: mode.calibration_trials() * 4,
        ..CalibrationConfig::default()
    })?;
    let m = 10u32;

    let mut table = Table::new(
        "Fig. 8: distribution distance threshold vs initial history size",
        vec![
            "history_size".into(),
            "epsilon_p0.90".into(),
            "epsilon_p0.95".into(),
        ],
    );
    for &n in &HISTORY_SIZES {
        let k = n / m as usize;
        table.push_row(vec![
            n.to_string(),
            Table::fmt_f64(calibrator.threshold(m, k, 0.90)?),
            Table::fmt_f64(calibrator.threshold(m, k, 0.95)?),
        ]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_converges_downward() {
        let tables = run(RunMode::Fast).unwrap();
        let rows = tables[0].rows();
        let eps: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            eps.first().unwrap() > eps.last().unwrap(),
            "ε must shrink with history size: {eps:?}"
        );
        // Convergence: the late-curve change is much smaller than the
        // early-curve change.
        let early = eps[0] - eps[2];
        let late = eps[6] - eps[8];
        assert!(
            late < early / 2.0,
            "curve must flatten: early Δ{early}, late Δ{late}"
        );
    }
}
