//! Fig. 7: detection rate vs attack-window size.

use crate::sweep::RunMode;
use crate::table::Table;
use hp_core::testing::{
    shared_calibrator, BehaviorTestConfig, MultiBehaviorTest, SingleBehaviorTest,
};
use hp_core::CoreError;
use hp_sim::detection::{detection_rate, false_positive_rate, DetectionConfig};
use std::sync::Arc;

/// The attack-window sizes on the x-axis (paper: N = 10, 20, …, 80).
pub const WINDOWS: [usize; 8] = [10, 20, 30, 40, 50, 60, 70, 80];

/// Runs the Fig. 7 sweep: fraction of windowed-periodic attackers
/// (N·0.1 attacks per N transactions, reputation pinned at 0.9) flagged by
/// the single and multi behavior tests, plus the honest-player
/// false-positive rates the detection numbers should be read against.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode) -> Result<Vec<Table>, CoreError> {
    let config = BehaviorTestConfig::builder()
        .calibration_trials(mode.calibration_trials())
        .build()?;
    let calibrator = shared_calibrator(&config)?;
    let single = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&calibrator))?;
    let multi = MultiBehaviorTest::with_calibrator(config, calibrator)?;
    let cfg = DetectionConfig {
        trials: mode.detection_trials(),
        ..Default::default()
    };

    let mut table = Table::new(
        "Fig. 7: detection rate vs attack window size",
        vec![
            "attack_window".into(),
            "detection_single".into(),
            "detection_multi".into(),
        ],
    );
    for &window in &WINDOWS {
        table.push_row(vec![
            window.to_string(),
            Table::fmt_f64(detection_rate(window, &single, &cfg)?),
            Table::fmt_f64(detection_rate(window, &multi, &cfg)?),
        ]);
    }

    let mut fpr = Table::new(
        "Fig. 7 companion: honest-player false-positive rate",
        vec![
            "honest_p".into(),
            "fpr_single".into(),
            "fpr_multi".into(),
        ],
    );
    for &p in &[0.9, 0.95] {
        fpr.push_row(vec![
            Table::fmt_f64(p),
            Table::fmt_f64(false_positive_rate(p, &single, &cfg)?),
            Table::fmt_f64(false_positive_rate(p, &multi, &cfg)?),
        ]);
    }

    Ok(vec![table, fpr])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fig7_shape() {
        let tables = run(RunMode::Fast).unwrap();
        let det = &tables[0];
        assert_eq!(det.rows().len(), WINDOWS.len());
        let first: f64 = det.rows()[0][1].parse().unwrap();
        let last: f64 = det.rows()[7][1].parse().unwrap();
        assert!(first > 0.8, "window-10 attackers are near-always caught");
        assert!(
            last < first,
            "detection falls as the attacker smooths out: {first} vs {last}"
        );
    }
}
