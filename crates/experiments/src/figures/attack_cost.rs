//! Figs. 3 & 4: strategic attacker cost vs preparation-history size.

use crate::sweep::{median, RunMode};
use crate::table::Table;
use hp_core::testing::{
    shared_calibrator, BehaviorTestConfig, MultiBehaviorTest, SingleBehaviorTest,
};
use hp_core::trust::{AverageTrust, TrustFunction, WeightedTrust};
use hp_core::CoreError;
use hp_sim::{attack_cost, AttackCostConfig, Screening};
use std::sync::Arc;

/// Which deployed trust function the attacker plays against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustKind {
    /// The average trust function (Fig. 3).
    Average,
    /// The weighted trust function with λ = 0.5 (Fig. 4).
    Weighted,
}

impl TrustKind {
    fn build(self) -> Result<Box<dyn TrustFunction>, CoreError> {
        Ok(match self {
            TrustKind::Average => Box::new(AverageTrust::default()),
            TrustKind::Weighted => Box::new(WeightedTrust::new(0.5)?),
        })
    }

    fn label(self) -> &'static str {
        match self {
            TrustKind::Average => "average",
            TrustKind::Weighted => "weighted",
        }
    }
}

/// The preparation-phase sizes on the x-axis (paper: 100–800).
pub const PREP_SIZES: [usize; 8] = [100, 200, 300, 400, 500, 600, 700, 800];

/// Runs the Fig. 3 (average) or Fig. 4 (weighted) sweep.
///
/// Reports, per preparation size, the median (over replications) number
/// of good transactions the strategic attacker needs to complete its 20
/// attacks, for: the bare trust function, Scheme 1 + trust function, and
/// Scheme 2 + trust function. Runs that exhaust the step budget count at
/// the budget (a lower bound — the scheme effectively locked the attacker
/// out); the `exhausted` column counts them.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode, kind: TrustKind) -> Result<Vec<Table>, CoreError> {
    let trust = kind.build()?;
    let config = BehaviorTestConfig::builder()
        .calibration_trials(mode.calibration_trials())
        .build()?;
    let calibrator = shared_calibrator(&config)?;
    let single = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&calibrator))?;
    let multi = MultiBehaviorTest::with_calibrator(config, calibrator)?;

    let schemes: [(&str, Screening<'_>); 3] = [
        (kind.label(), Screening::None),
        ("scheme1", Screening::Test(&single)),
        ("scheme2", Screening::Test(&multi)),
    ];

    let mut table = Table::new(
        format!(
            "Fig. {}: attacker cost vs initial history ({} trust function)",
            match kind {
                TrustKind::Average => 3,
                TrustKind::Weighted => 4,
            },
            kind.label()
        ),
        vec![
            "prep".into(),
            kind.label().into(),
            format!("scheme1+{}", kind.label()),
            format!("scheme2+{}", kind.label()),
            "exhausted".into(),
        ],
    );

    for &prep in &PREP_SIZES {
        let mut cells = vec![prep.to_string()];
        let mut exhausted_total = 0usize;
        for (si, (_, screening)) in schemes.iter().enumerate() {
            let mut costs = Vec::with_capacity(mode.replications());
            for rep in 0..mode.replications() {
                let seed = hp_stats::derive_seed(
                    0xF1_63,
                    (prep as u64) << 24 | (si as u64) << 16 | rep as u64,
                );
                let result = attack_cost(
                    &AttackCostConfig {
                        prep_size: prep,
                        max_steps: mode.max_steps(),
                        seed,
                        ..Default::default()
                    },
                    &trust,
                    *screening,
                )?;
                if result.exhausted {
                    exhausted_total += 1;
                }
                costs.push(result.good_transactions as f64);
            }
            cells.push(Table::fmt_f64(median(&costs)));
        }
        cells.push(exhausted_total.to_string());
        table.push_row(cells);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fig3_shapes() {
        let tables = run(RunMode::Fast, TrustKind::Average).unwrap();
        let table = &tables[0];
        assert_eq!(table.rows().len(), PREP_SIZES.len());
        // Bare average function: cost decreases with prep size and is 0
        // once prep ≥ ~400 (the hibernating free ride).
        let bare: Vec<f64> = table
            .rows()
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .collect();
        assert!(bare[0] > 50.0, "short prep must cost: {bare:?}");
        assert!(bare[7] < 10.0, "long prep is nearly free: {bare:?}");
    }
}
