//! Figs. 5 & 6: collusion attacker cost vs preparation-history size.

use crate::figures::attack_cost::TrustKind;
use crate::sweep::{median, RunMode};
use crate::table::Table;
use hp_core::testing::{
    shared_calibrator, BehaviorTestConfig, CollusionResilientTest, CollusionTestDepth,
};
use hp_core::CoreError;
use hp_sim::{collusion_attack_cost, CollusionConfig, Screening};
use std::sync::Arc;

/// The preparation-phase sizes on the x-axis.
pub const PREP_SIZES: [usize; 8] = [100, 200, 300, 400, 500, 600, 700, 800];

/// Runs the Fig. 5 (average) or Fig. 6 (weighted) collusion sweep.
///
/// 100 potential clients, 5 of them colluders; the attacker preps purely
/// through colluders, then strategically mixes cheating, colluder boosts
/// and (only when forced) genuine service. Reported cost is the median
/// number of good services delivered to non-colluders before 20 attacks
/// complete.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode, kind: TrustKind) -> Result<Vec<Table>, CoreError> {
    let trust: Box<dyn hp_core::TrustFunction> = match kind {
        TrustKind::Average => Box::new(hp_core::trust::AverageTrust::default()),
        TrustKind::Weighted => Box::new(hp_core::trust::WeightedTrust::new(0.5)?),
    };
    let config = BehaviorTestConfig::builder()
        .calibration_trials(mode.calibration_trials())
        .build()?;
    let calibrator = shared_calibrator(&config)?;
    let single = CollusionResilientTest::with_calibrator(config.clone(), Arc::clone(&calibrator))?
        .with_depth(CollusionTestDepth::Single);
    let multi = CollusionResilientTest::with_calibrator(config, calibrator)?
        .with_depth(CollusionTestDepth::Multi);

    let label = match kind {
        TrustKind::Average => "average",
        TrustKind::Weighted => "weighted",
    };
    let schemes: [(&str, Screening<'_>); 3] = [
        (label, Screening::None),
        ("scheme1", Screening::Test(&single)),
        ("scheme2", Screening::Test(&multi)),
    ];

    let mut table = Table::new(
        format!(
            "Fig. {}: cost of attackers with collusion ({} trust function)",
            match kind {
                TrustKind::Average => 5,
                TrustKind::Weighted => 6,
            },
            label
        ),
        vec![
            "prep".into(),
            label.into(),
            format!("scheme1+{label}"),
            format!("scheme2+{label}"),
            "exhausted".into(),
        ],
    );

    for &prep in &PREP_SIZES {
        let mut cells = vec![prep.to_string()];
        let mut exhausted_total = 0usize;
        for (si, (_, screening)) in schemes.iter().enumerate() {
            let mut costs = Vec::with_capacity(mode.replications());
            for rep in 0..mode.replications() {
                let seed = hp_stats::derive_seed(
                    0xF5_65,
                    (prep as u64) << 24 | (si as u64) << 16 | rep as u64,
                );
                let result = collusion_attack_cost(
                    &CollusionConfig {
                        prep_size: prep,
                        max_steps: mode.max_steps(),
                        seed,
                        ..Default::default()
                    },
                    &trust,
                    *screening,
                )?;
                if result.exhausted {
                    exhausted_total += 1;
                }
                costs.push(result.good_to_victims as f64);
            }
            cells.push(Table::fmt_f64(median(&costs)));
        }
        cells.push(exhausted_total.to_string());
        table.push_row(cells);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fig5_baseline_is_free() {
        let tables = run(RunMode::Fast, TrustKind::Average).unwrap();
        let table = &tables[0];
        assert_eq!(table.rows().len(), PREP_SIZES.len());
        // Without screening, colluders cover everything: zero real cost.
        for row in table.rows() {
            let bare: f64 = row[1].parse().unwrap();
            assert_eq!(bare, 0.0, "collusion makes the baseline free: {row:?}");
        }
    }
}
