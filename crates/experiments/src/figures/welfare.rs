//! Beyond the paper: marketplace welfare with and without screening.
//!
//! The paper measures attacker *cost*; this experiment measures what
//! clients actually *experience*. A 20-server market (16 honest across a
//! quality spread, 4 periodic attackers whose trust stays pinned above
//! every honest server) serves trust-ranked clients for several thousand
//! transactions. Screening should collapse the harm attackers inflict
//! while leaving the honest-only market unchanged.

use crate::sweep::RunMode;
use crate::table::Table;
use hp_core::testing::{BehaviorTestConfig, MultiBehaviorTest};
use hp_core::trust::{AverageTrust, TrustFunction, WeightedTrust};
use hp_core::CoreError;
use hp_sim::ecosystem::{run_marketplace, EcosystemConfig};

/// Runs the welfare comparison.
///
/// # Errors
///
/// Propagates behavior-test failures.
pub fn run(mode: RunMode) -> Result<Vec<Table>, CoreError> {
    let rounds = match mode {
        RunMode::Full => 8000,
        RunMode::Fast => 2500,
    };
    let screen = MultiBehaviorTest::new(
        BehaviorTestConfig::builder()
            .calibration_trials(mode.calibration_trials())
            .build()?,
    )?;

    let mut table = Table::new(
        "Welfare: client harm in a 20-server market (16 honest, 4 periodic attackers)",
        vec![
            "trust_function".into(),
            "screening".into(),
            "bad_rate".into(),
            "attacker_harm".into(),
            "screened_out_picks".into(),
        ],
    );

    let functions: Vec<(&str, Box<dyn TrustFunction>)> = vec![
        ("average", Box::new(AverageTrust::default())),
        ("weighted", Box::new(WeightedTrust::new(0.5)?)),
    ];
    for (name, trust) in &functions {
        for (label, screening) in [("none", None), ("multi", Some(&screen))] {
            let mut bad_rates = Vec::new();
            let mut harms = Vec::new();
            let mut screened = Vec::new();
            for rep in 0..mode.replications() {
                let outcome = run_marketplace(
                    &EcosystemConfig {
                        rounds,
                        seed: hp_stats::derive_seed(0xEC0, rep as u64),
                        ..Default::default()
                    },
                    trust,
                    screening.map(|s| s as &dyn hp_core::testing::BehaviorTest),
                )?;
                bad_rates.push(outcome.bad_rate());
                harms.push(outcome.attacker_harm as f64);
                screened.push(outcome.screened_out_picks as f64);
            }
            table.push_row(vec![
                (*name).into(),
                label.into(),
                Table::fmt_f64(crate::sweep::median(&bad_rates)),
                Table::fmt_f64(crate::sweep::median(&harms)),
                Table::fmt_f64(crate::sweep::median(&screened)),
            ]);
        }
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_cuts_attacker_harm_in_the_market() {
        let tables = run(RunMode::Fast).unwrap();
        let rows = tables[0].rows();
        // Rows: [average/none, average/multi, weighted/none, weighted/multi]
        let harm_none: f64 = rows[0][3].parse().unwrap();
        let harm_multi: f64 = rows[1][3].parse().unwrap();
        assert!(
            harm_multi < harm_none,
            "screened harm {harm_multi} must undercut unscreened {harm_none}"
        );
    }
}
