//! One module per paper figure. Every module exposes
//! `run(mode) -> Result<Vec<Table>, CoreError>` so the binaries stay thin
//! and the integration tests can drive fast variants.

pub mod ablation;
pub mod attack_cost;
pub mod collusion_cost;
pub mod detection;
pub mod distance_threshold;
pub mod performance;
pub mod welfare;

use crate::table::Table;
use std::path::PathBuf;

/// Default output directory for CSV artifacts.
pub fn out_dir() -> PathBuf {
    PathBuf::from("experiments/out")
}

/// Prints tables and writes each as CSV under [`out_dir`].
///
/// # Errors
///
/// Propagates I/O failures from CSV writing.
pub fn emit(slug: &str, tables: &[Table]) -> std::io::Result<()> {
    for (i, table) in tables.iter().enumerate() {
        println!("{table}");
        let name = if tables.len() == 1 {
            format!("{slug}.csv")
        } else {
            format!("{slug}_{i}.csv")
        };
        let path = out_dir().join(name);
        table.write_csv(&path)?;
        println!("  → wrote {}\n", path.display());
    }
    Ok(())
}
