//! Property-based tests for the interpolated threshold surface and the
//! common-random-number calibration engine.
//!
//! The surface fixture is built once ([`std::sync::OnceLock`]) and shared
//! across cases: surface construction runs the full Monte-Carlo oracle
//! over its k-grid, which is far too slow to repeat per proptest case.

use hp_stats::{
    CalibrationConfig, SurfaceParams, ThresholdCalibrator, ThresholdProvenance, ThresholdSurface,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const M: u32 = 10;
const K_CUTOFF: usize = 128;
const TRIALS: usize = 400;
const P_BUCKET: f64 = 0.05;

fn fixture_config(surface: Option<SurfaceParams>) -> CalibrationConfig {
    CalibrationConfig {
        trials: TRIALS,
        p_bucket: P_BUCKET,
        large_k_cutoff: K_CUTOFF,
        surface,
        ..CalibrationConfig::default()
    }
}

/// `(surfaced calibrator, oracle calibrator)` with identical fingerprints:
/// the oracle serves pure Monte-Carlo row-cache values for comparison.
fn fixture() -> &'static (Arc<ThresholdCalibrator>, Arc<ThresholdCalibrator>) {
    static FIXTURE: OnceLock<(Arc<ThresholdCalibrator>, Arc<ThresholdCalibrator>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let surfaced = ThresholdCalibrator::new(fixture_config(Some(SurfaceParams {
            // Generous tolerance: these tests check the *measured* bound,
            // not the serving gate.
            tolerance: 10.0,
            p_stride: 3,
            k_min: 8,
        })))
        .unwrap();
        surfaced
            .ensure_surface_for(M)
            .expect("surface build must succeed");
        let oracle = ThresholdCalibrator::new(fixture_config(None)).unwrap();
        (Arc::new(surfaced), Arc::new(oracle))
    })
}

fn surface() -> Arc<ThresholdSurface> {
    fixture().0.surface().expect("fixture installs a surface")
}

/// The Bonferroni confidence ladder the row jobs prefill (j halvings of
/// the default 0.95 miss mass), as `(quantized millis, exact value)`.
fn ladder_confidence(j: u32) -> (u32, f64) {
    let c = 1.0 - (1.0 - 0.95) / (1u64 << j) as f64;
    ((c * 100_000.0).round() as u32, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every value the surface serves sits within its measured error
    /// bound of the Monte-Carlo oracle, at arbitrary (k, p̂, confidence)
    /// — including ks strictly between grid rows.
    #[test]
    fn surface_error_is_within_the_measured_bound(
        k in 8usize..=K_CUTOFF,
        p_index in 0u32..=20,
        j in 0u32..=8,
    ) {
        let (surfaced, oracle) = fixture();
        let (millis, confidence) = ladder_confidence(j);
        // A lookup miss (off-ladder collapse) serves nothing — nothing to bound.
        if let Some(served) = surface().lookup(M, k, p_index, millis) {
            let p = (p_index as f64 * P_BUCKET).clamp(0.0, 1.0);
            let truth = oracle.threshold_at(M, k, p, confidence).unwrap();
            let bound = surface().max_error_bound(M).unwrap();
            prop_assert!(
                (served - truth).abs() <= bound,
                "k={k} p={p} c={confidence}: |{served} - {truth}| > bound {bound}"
            );
            // And the calibrator actually serves from the surface for these keys.
            let (eps, provenance) = surfaced
                .threshold_with_provenance(M, k, p, confidence)
                .unwrap();
            prop_assert_eq!(provenance, ThresholdProvenance::Surface);
            prop_assert_eq!(eps.to_bits(), served.to_bits());
        }
    }

    /// Served thresholds are monotone non-decreasing in the confidence
    /// level (a looser confidence can never tighten ε).
    #[test]
    fn surface_is_monotone_in_confidence(
        k in 8usize..=K_CUTOFF,
        p_index in 0u32..=20,
        j in 0u32..8,
    ) {
        let (lo_millis, _) = ladder_confidence(j);
        let (hi_millis, _) = ladder_confidence(j + 1);
        if let (Some(lo), Some(hi)) = (
            surface().lookup(M, k, p_index, lo_millis),
            surface().lookup(M, k, p_index, hi_millis),
        ) {
            prop_assert!(
                lo <= hi + 1e-12,
                "k={k} p_index={p_index}: ε({lo_millis})={lo} > ε({hi_millis})={hi}"
            );
        }
    }

    /// Common-random-number sample streams are bit-identical at any
    /// thread count and for any seed — the thread layout only partitions
    /// fixed per-chunk RNG streams.
    #[test]
    fn crn_samples_are_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        threads in 2usize..=8,
        k in 1usize..=60,
    ) {
        let config = CalibrationConfig {
            trials: 200,
            serial_cutoff: 0, // force the parallel dispatch path
            ..CalibrationConfig::default()
        };
        let serial = ThresholdCalibrator::new(CalibrationConfig { threads: 1, ..config })
            .unwrap()
            .with_seed(seed);
        let parallel = ThresholdCalibrator::new(CalibrationConfig { threads, ..config })
            .unwrap()
            .with_seed(seed);
        let reference = serial.distance_samples(M, k, 0.9).unwrap();
        let got = parallel.distance_samples(M, k, 0.9).unwrap();
        prop_assert_eq!(got, reference);
    }
}

/// The serving gate: a surface whose measured bound exceeds the
/// configured tolerance must refuse to serve (oracle fallback), and the
/// fixture surface must agree with the oracle *exactly* at grid nodes.
#[test]
fn lookups_at_grid_nodes_are_oracle_exact() {
    let (_, oracle) = fixture();
    let s = surface();
    let layer = s
        .layers()
        .iter()
        .find(|l| l.m == M && l.confidence_millis == 95_000)
        .expect("base-confidence layer exists");
    for &k in &layer.k_grid {
        for &node in &layer.p_nodes {
            let p = (node as f64 * P_BUCKET).clamp(0.0, 1.0);
            let truth = oracle.threshold_at(M, k, p, 0.95).unwrap();
            let served = s.lookup(M, k, node, 95_000).expect("node is on the grid");
            assert_eq!(
                served.to_bits(),
                truth.to_bits(),
                "grid node k={k} p={p} must be oracle-exact"
            );
        }
    }
}
