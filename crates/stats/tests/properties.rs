//! Property-based tests for the statistics substrate.

use hp_stats::distance::{l1_distance, DistanceKind};
use hp_stats::{quantile, Bernoulli, Binomial, Histogram, Multinomial, PrefixSums, Welford};
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

proptest! {
    #[test]
    fn binomial_pmf_sums_to_one(n in 0u32..80, p in prob()) {
        let b = Binomial::new(n, p).unwrap();
        let total: f64 = b.pmf_table().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn binomial_pmf_nonnegative(n in 0u32..60, p in prob(), k in 0u32..100) {
        let b = Binomial::new(n, p).unwrap();
        let v = b.pmf(k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        if k > n {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn binomial_cdf_monotone(n in 1u32..60, p in prob()) {
        let b = Binomial::new(n, p).unwrap();
        let mut prev = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_quantile_bounds(n in 1u32..40, p in prob(), q in 0.01f64..1.0) {
        let b = Binomial::new(n, p).unwrap();
        let k = b.quantile(q).unwrap();
        prop_assert!(k <= n);
        prop_assert!(b.cdf(k) >= q - 1e-9);
    }

    #[test]
    fn binomial_samples_within_support(n in 0u32..50, p in prob(), seed in any::<u64>()) {
        let b = Binomial::new(n, p).unwrap();
        let mut rng = hp_stats::seeded_rng(seed);
        for _ in 0..32 {
            prop_assert!(b.sample(&mut rng) <= n);
        }
    }

    #[test]
    fn bernoulli_count_matches_len(p in prob(), n in 0usize..200, seed in any::<u64>()) {
        let b = Bernoulli::new(p).unwrap();
        let mut rng = hp_stats::seeded_rng(seed);
        let c = b.count_successes(&mut rng, n);
        prop_assert!(c <= n);
    }

    #[test]
    fn histogram_pmf_sums_to_one_when_nonempty(
        samples in proptest::collection::vec(0u32..=15, 1..200)
    ) {
        let h = Histogram::from_samples(15, samples.iter().copied()).unwrap();
        let sum: f64 = h.pmf_table().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(h.len() as usize, samples.len());
    }

    #[test]
    fn histogram_add_then_remove_is_identity(
        base in proptest::collection::vec(0u32..=9, 0..100),
        extra in proptest::collection::vec(0u32..=9, 1..50)
    ) {
        let original = Histogram::from_samples(9, base.iter().copied()).unwrap();
        let mut h = original.clone();
        for &v in &extra {
            h.add(v).unwrap();
        }
        for &v in &extra {
            h.remove(v).unwrap();
        }
        prop_assert_eq!(h, original);
    }

    #[test]
    fn l1_distance_bounded_by_two(
        samples in proptest::collection::vec(0u32..=10, 1..100),
        p in prob()
    ) {
        let h = Histogram::from_samples(10, samples.iter().copied()).unwrap();
        let b = Binomial::new(10, p).unwrap();
        let d = l1_distance(&h, &b.pmf_table());
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d), "d = {d}");
    }

    #[test]
    fn distance_metrics_agree_on_zero(
        samples in proptest::collection::vec(0u32..=6, 1..60)
    ) {
        // Every metric is zero iff distributions coincide; compare emp to
        // itself as the reference pmf.
        let h = Histogram::from_samples(6, samples.iter().copied()).unwrap();
        let self_pmf = h.pmf_table();
        for kind in DistanceKind::all() {
            let d = kind.distance(&h, &self_pmf).unwrap();
            prop_assert!(d.abs() < 1e-12, "{kind:?} gave {d}");
        }
    }

    #[test]
    fn tv_is_half_l1(
        samples in proptest::collection::vec(0u32..=8, 1..80),
        p in prob()
    ) {
        let h = Histogram::from_samples(8, samples.iter().copied()).unwrap();
        let pmf = Binomial::new(8, p).unwrap().pmf_table();
        let l1 = DistanceKind::L1.distance(&h, &pmf).unwrap();
        let tv = DistanceKind::TotalVariation.distance(&h, &pmf).unwrap();
        prop_assert!((tv * 2.0 - l1).abs() < 1e-12);
    }

    #[test]
    fn ks_bounded_by_tv(
        samples in proptest::collection::vec(0u32..=8, 1..80),
        p in prob()
    ) {
        // KS distance over a discrete line is at most total variation.
        let h = Histogram::from_samples(8, samples.iter().copied()).unwrap();
        let pmf = Binomial::new(8, p).unwrap().pmf_table();
        let ks = DistanceKind::KolmogorovSmirnov.distance(&h, &pmf).unwrap();
        let tv = DistanceKind::TotalVariation.distance(&h, &pmf).unwrap();
        prop_assert!(ks <= tv + 1e-12, "ks {ks} > tv {tv}");
    }

    #[test]
    fn prefix_sums_consistent_with_direct_count(
        bools in proptest::collection::vec(any::<bool>(), 0..300),
        a in 0usize..300,
        b in 0usize..300
    ) {
        let ps = PrefixSums::from_bools(bools.iter().copied());
        let (lo, hi) = (a.min(b).min(bools.len()), a.max(b).min(bools.len()));
        let direct = bools[lo..hi].iter().filter(|&&g| g).count() as u64;
        prop_assert_eq!(ps.count_range(lo, hi), direct);
    }

    #[test]
    fn welford_mean_within_sample_range(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200)
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(w.mean() >= min - 1e-6 && w.mean() <= max + 1e-6);
        prop_assert!(w.sample_variance() >= 0.0);
    }

    #[test]
    fn welford_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..1.0
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-4);
    }

    #[test]
    fn quantile_within_range(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..200),
        q in 0.0f64..=1.0
    ) {
        let v = quantile(&xs, q).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn multinomial_samples_sum_to_n(
        n in 0u32..40,
        split in 0.01f64..0.99,
        seed in any::<u64>()
    ) {
        let m = Multinomial::new(n, vec![split, 1.0 - split]).unwrap();
        let mut rng = hp_stats::seeded_rng(seed);
        let counts = m.sample(&mut rng);
        prop_assert_eq!(counts.iter().sum::<u32>(), n);
    }

    #[test]
    fn wilson_interval_ordered_and_bounded(
        successes in 0u32..100,
        extra in 0u32..100
    ) {
        let trials = successes + extra.max(1);
        let (lo, hi) = hp_stats::wilson_interval(successes, trials, 0.95).unwrap();
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        let phat = successes as f64 / trials as f64;
        prop_assert!(lo <= phat + 1e-9 && phat <= hi + 1e-9);
    }
}
