//! The χ² distribution and the classical goodness-of-fit test.
//!
//! §6 of the paper situates its scheme against classical hypothesis
//! testing: "Most hypothesis testing techniques assume the parameters of
//! the expected distribution are known, which is different from the
//! problem in this paper." This module provides that classical comparator
//! — Pearson's χ² goodness-of-fit test with analytic p-values — so the
//! Monte-Carlo-calibrated L¹ approach can be benchmarked against it (see
//! the distance-metric ablation).

use crate::error::StatsError;
use crate::special::ln_gamma;

/// The χ² distribution with `k` degrees of freedom.
///
/// # Examples
///
/// ```
/// use hp_stats::ChiSquared;
///
/// let chi = ChiSquared::new(3.0)?;
/// assert!((chi.mean() - 3.0).abs() < 1e-12);
/// // Median of χ²(3) ≈ 2.366
/// assert!((chi.cdf(2.366) - 0.5).abs() < 1e-3);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution with `k > 0` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `k` is positive
    /// and finite.
    pub fn new(k: f64) -> Result<Self, StatsError> {
        if !(k > 0.0 && k.is_finite()) {
            return Err(StatsError::InvalidProbability { value: k });
        }
        Ok(ChiSquared { k })
    }

    /// Degrees of freedom.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.k
    }

    /// Mean (= k).
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Variance (= 2k).
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// CDF: the regularized lower incomplete gamma `P(k/2, x/2)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        regularized_lower_gamma(self.k / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)` — the p-value of a χ² statistic.
    pub fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x); P = 1 − Q.
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Pearson's χ² goodness-of-fit test with *known* expected probabilities.
///
/// Returns `(statistic, p_value)` where low p-values reject the null that
/// `counts` were drawn from `expected_probs`. Degrees of freedom are
/// `bins_with_mass − 1` (no parameters estimated — the classical setting
/// the paper contrasts itself with; when `p̂` is estimated from the same
/// data, subtract the estimated-parameter count from the dof yourself).
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] for empty inputs or zero total count.
/// * [`StatsError::OutOfSupport`] if lengths differ.
/// * [`StatsError::UnnormalizedProbabilities`] if `expected_probs` does
///   not sum to 1.
///
/// # Examples
///
/// ```
/// use hp_stats::chisq::chi_square_gof_test;
///
/// // A fair six-sided die, 120 rolls close to uniform:
/// let counts = [18u64, 22, 21, 19, 20, 20];
/// let probs = [1.0 / 6.0; 6];
/// let (stat, p) = chi_square_gof_test(&counts, &probs)?;
/// assert!(stat < 2.0);
/// assert!(p > 0.5, "no reason to reject fairness: p = {p}");
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
pub fn chi_square_gof_test(
    counts: &[u64],
    expected_probs: &[f64],
) -> Result<(f64, f64), StatsError> {
    if counts.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "chi-square counts",
        });
    }
    if counts.len() != expected_probs.len() {
        return Err(StatsError::OutOfSupport {
            value: counts.len() as u64,
            max: expected_probs.len() as u64,
        });
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(StatsError::EmptyInput {
            what: "chi-square total count",
        });
    }
    let prob_sum: f64 = expected_probs.iter().sum();
    if (prob_sum - 1.0).abs() > 1e-9 {
        return Err(StatsError::UnnormalizedProbabilities { sum: prob_sum });
    }
    let n = total as f64;
    let mut statistic = 0.0;
    let mut live_bins = 0usize;
    for (&observed, &p) in counts.iter().zip(expected_probs) {
        let expected = n * p;
        if expected <= 0.0 {
            // Mass observed where none is expected: infinite evidence.
            if observed > 0 {
                return Ok((f64::INFINITY, 0.0));
            }
            continue;
        }
        live_bins += 1;
        let d = observed as f64 - expected;
        statistic += d * d / expected;
    }
    if live_bins < 2 {
        // A single live bin cannot discriminate anything.
        return Ok((statistic, 1.0));
    }
    let dist = ChiSquared::new((live_bins - 1) as f64)?;
    Ok((statistic, dist.sf(statistic)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(-1.0).is_err());
        assert!(ChiSquared::new(f64::NAN).is_err());
        assert!(ChiSquared::new(2.5).is_ok());
    }

    #[test]
    fn chi2_two_dof_is_exponential() {
        // χ²(2) = Exp(1/2): cdf(x) = 1 − e^{−x/2}.
        let chi = ChiSquared::new(2.0).unwrap();
        for x in [0.5, 1.0, 2.0, 5.0, 10.0] {
            let expected = 1.0 - (-x / 2.0_f64).exp();
            assert!((chi.cdf(x) - expected).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn known_critical_values() {
        // 95th percentile of χ²(1) ≈ 3.841, χ²(5) ≈ 11.070, χ²(10) ≈ 18.307.
        for (k, crit) in [(1.0, 3.841), (5.0, 11.070), (10.0, 18.307)] {
            let chi = ChiSquared::new(k).unwrap();
            assert!(
                (chi.cdf(crit) - 0.95).abs() < 1e-3,
                "k={k}: cdf({crit}) = {}",
                chi.cdf(crit)
            );
        }
    }

    #[test]
    fn cdf_monotone_bounded() {
        let chi = ChiSquared::new(7.0).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let c = chi.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev);
            prev = c;
        }
        assert_eq!(chi.cdf(-1.0), 0.0);
    }

    #[test]
    fn gof_accepts_matching_sample() {
        let counts = [95u64, 105, 100, 98, 102];
        let probs = [0.2; 5];
        let (stat, p) = chi_square_gof_test(&counts, &probs).unwrap();
        assert!(stat < 2.0, "stat {stat}");
        assert!(p > 0.5, "p {p}");
    }

    #[test]
    fn gof_rejects_skewed_sample() {
        let counts = [400u64, 50, 50, 0, 0];
        let probs = [0.2; 5];
        let (stat, p) = chi_square_gof_test(&counts, &probs).unwrap();
        assert!(stat > 100.0);
        assert!(p < 1e-6, "p {p}");
    }

    #[test]
    fn gof_infinite_evidence_for_impossible_mass() {
        let counts = [10u64, 5];
        let probs = [1.0, 0.0];
        let (stat, p) = chi_square_gof_test(&counts, &probs).unwrap();
        assert!(stat.is_infinite());
        assert_eq!(p, 0.0);
    }

    #[test]
    fn gof_validation() {
        assert!(chi_square_gof_test(&[], &[]).is_err());
        assert!(chi_square_gof_test(&[1], &[0.5, 0.5]).is_err());
        assert!(chi_square_gof_test(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(chi_square_gof_test(&[1, 1], &[0.5, 0.6]).is_err());
    }

    #[test]
    fn gof_single_live_bin_uninformative() {
        let (stat, p) = chi_square_gof_test(&[10, 0], &[1.0, 0.0]).unwrap();
        assert_eq!(stat, 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn incomplete_gamma_series_and_cf_agree_at_boundary() {
        // Both branches around x = a + 1 must agree.
        for a in [0.5, 2.0, 5.0, 20.0] {
            let below = regularized_lower_gamma(a, a + 0.999);
            let above = regularized_lower_gamma(a, a + 1.001);
            assert!(above >= below, "a={a}");
            assert!(above - below < 0.01, "a={a}: {below} vs {above}");
        }
    }

    #[test]
    fn gof_detects_the_metronome_attacker_with_known_p() {
        // The §6 contrast: *if* p were known (0.9), the classical test
        // also catches the deterministic 9-good-1-bad pattern.
        use crate::Binomial;
        let model = Binomial::new(10, 0.9).unwrap();
        // 40 windows, all with count exactly 9:
        let mut counts = vec![0u64; 11];
        counts[9] = 40;
        let (_, p) = chi_square_gof_test(&counts, &model.pmf_table()).unwrap();
        assert!(p < 1e-6, "metronome must be rejected: p = {p}");
    }
}
