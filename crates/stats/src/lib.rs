//! # hp-stats — statistics substrate for honest-player modeling
//!
//! This crate provides the statistical machinery behind the two-phase
//! reputation assessment of Zhang, Wei & Yu (*On the Modeling of Honest
//! Players in Reputation Systems*, ICDCS'08 / JCST'09):
//!
//! * exact discrete distributions ([`Binomial`], [`Bernoulli`],
//!   [`Multinomial`]) with numerically stable log-space evaluation,
//! * empirical [`Histogram`]s over a bounded integer support,
//! * distribution [`distance`]s (L¹, total variation, L², KS, χ²),
//! * Monte-Carlo [`calibration`] of goodness-of-fit thresholds for the case
//!   the paper cares about: *the distribution parameter p is unknown* and is
//!   estimated from the same data that is being tested,
//! * streaming helpers ([`PrefixSums`], [`Welford`]) that make the paper's
//!   O(n) multi-testing optimization possible,
//! * quantiles and binomial confidence intervals / exact tests.
//!
//! Everything is deterministic given a seed; see [`rng`].
//!
//! ## Example
//!
//! ```
//! use hp_stats::{Binomial, Histogram, distance::l1_distance};
//! use rand::SeedableRng;
//!
//! let b = Binomial::new(10, 0.9).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let samples: Vec<u32> = (0..500).map(|_| b.sample(&mut rng)).collect();
//! let hist = Histogram::from_samples(10, samples.iter().copied()).unwrap();
//! let d = l1_distance(&hist, &b.pmf_table());
//! assert!(d < 0.25, "500 honest samples sit close to the model: {d}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bernoulli;
pub mod beta_dist;
pub mod binomial;
pub mod calibration;
pub mod chisq;
pub mod ci;
pub mod distance;
pub mod empirical;
pub mod error;
pub mod multinomial;
pub mod quantile;
pub mod rng;
pub mod special;
pub mod stream;
pub mod surface;

pub use bernoulli::Bernoulli;
pub use beta_dist::BetaDist;
pub use binomial::Binomial;
pub use calibration::{
    thread_calibration_nanos, CalibrationConfig, CalibrationEntry, CalibrationStats,
    ThresholdCalibrator, ThresholdProvenance,
};
pub use chisq::ChiSquared;
pub use ci::{binomial_test, wilson_interval, TestSide};
pub use distance::DistanceKind;
pub use empirical::Histogram;
pub use error::StatsError;
pub use multinomial::Multinomial;
pub use quantile::quantile;
pub use rng::{derive_seed, seeded_rng};
pub use stream::{PrefixSums, Welford};
pub use surface::{SurfaceLayer, SurfaceParams, ThresholdSurface};
