//! Binomial confidence intervals and exact tests.
//!
//! Supporting tools for analyzing detection rates (Fig. 7) and for the
//! classical "just do a binomial test" strawman the paper discusses (and
//! rejects, because order matters and `p` is unknown).

use crate::binomial::Binomial;
use crate::error::StatsError;

/// Which tail(s) an exact binomial test should consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestSide {
    /// `P(X ≤ observed)` — suspiciously few successes.
    Lower,
    /// `P(X ≥ observed)` — suspiciously many successes.
    Upper,
    /// Two-sided: sums all outcomes no more likely than the observed one.
    TwoSided,
}

/// Exact binomial test: p-value of observing `successes` out of `trials`
/// under `H0: p = p0`.
///
/// # Errors
///
/// * [`StatsError::InvalidCount`] if `trials == 0`.
/// * [`StatsError::OutOfSupport`] if `successes > trials`.
/// * [`StatsError::InvalidProbability`] if `p0 ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use hp_stats::{binomial_test, TestSide};
///
/// // 2 good transactions out of 20 under H0: p = 0.5 — very suspicious.
/// let p = binomial_test(2, 20, 0.5, TestSide::Lower)?;
/// assert!(p < 0.001);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
pub fn binomial_test(
    successes: u32,
    trials: u32,
    p0: f64,
    side: TestSide,
) -> Result<f64, StatsError> {
    if trials == 0 {
        return Err(StatsError::InvalidCount {
            what: "trials",
            value: 0,
        });
    }
    if successes > trials {
        return Err(StatsError::OutOfSupport {
            value: successes as u64,
            max: trials as u64,
        });
    }
    let b = Binomial::new(trials, p0)?;
    let p = match side {
        TestSide::Lower => b.cdf(successes),
        TestSide::Upper => {
            if successes == 0 {
                1.0
            } else {
                b.sf(successes - 1)
            }
        }
        TestSide::TwoSided => {
            // Sum probabilities of all outcomes no more likely than observed
            // (the standard exact two-sided construction).
            let observed = b.pmf(successes);
            let tol = observed * (1.0 + 1e-7);
            (0..=trials).map(|k| b.pmf(k)).filter(|&pk| pk <= tol).sum()
        }
    };
    Ok(p.min(1.0))
}

/// Wilson score interval for a binomial proportion.
///
/// Preferred over the Wald interval because reputation data is heavily
/// skewed (p̂ near 1) where Wald collapses.
///
/// # Errors
///
/// * [`StatsError::InvalidCount`] if `trials == 0`.
/// * [`StatsError::OutOfSupport`] if `successes > trials`.
/// * [`StatsError::InvalidLevel`] unless `confidence ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = hp_stats::wilson_interval(95, 100, 0.95)?;
/// assert!(lo < 0.95 && 0.95 < hi);
/// assert!(lo > 0.88 && hi < 0.99);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
pub fn wilson_interval(
    successes: u32,
    trials: u32,
    confidence: f64,
) -> Result<(f64, f64), StatsError> {
    if trials == 0 {
        return Err(StatsError::InvalidCount {
            what: "trials",
            value: 0,
        });
    }
    if successes > trials {
        return Err(StatsError::OutOfSupport {
            value: successes as u64,
            max: trials as u64,
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidLevel { value: confidence });
    }
    let z = standard_normal_quantile(0.5 + confidence / 2.0);
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = z * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(((center - half).max(0.0), (center + half).min(1.0)))
}

/// Quantile of the standard normal distribution
/// (Acklam's rational approximation; |ε| < 1.15e-9).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile level must be in (0,1), got {p}");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_test_validates_inputs() {
        assert!(binomial_test(1, 0, 0.5, TestSide::Lower).is_err());
        assert!(binomial_test(5, 4, 0.5, TestSide::Lower).is_err());
        assert!(binomial_test(1, 4, 1.5, TestSide::Lower).is_err());
    }

    #[test]
    fn lower_tail_known_value() {
        // P(X ≤ 2) for B(10, 0.5) = (1 + 10 + 45) / 1024
        let p = binomial_test(2, 10, 0.5, TestSide::Lower).unwrap();
        assert!((p - 56.0 / 1024.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn upper_tail_known_value() {
        // P(X ≥ 8) for B(10, 0.5) = (45 + 10 + 1) / 1024 by symmetry
        let p = binomial_test(8, 10, 0.5, TestSide::Upper).unwrap();
        assert!((p - 56.0 / 1024.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn upper_tail_zero_successes_is_one() {
        let p = binomial_test(0, 10, 0.5, TestSide::Upper).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_sided_symmetric_case() {
        // For symmetric B(10, 0.5), two-sided p of 2 = 2 * one-sided.
        let two = binomial_test(2, 10, 0.5, TestSide::TwoSided).unwrap();
        let one = binomial_test(2, 10, 0.5, TestSide::Lower).unwrap();
        assert!((two - 2.0 * one).abs() < 1e-9, "{two} vs {one}");
    }

    #[test]
    fn two_sided_of_mode_is_one() {
        let p = binomial_test(5, 10, 0.5, TestSide::TwoSided).unwrap();
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_known_values() {
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.025, -1.959_963_984_540_054),
            (0.95, 1.644_853_626_951_472),
            (0.001, -3.090_232_306_167_813),
        ];
        for (p, expected) in cases {
            let z = standard_normal_quantile(p);
            assert!((z - expected).abs() < 1e-7, "p={p}: {z} vs {expected}");
        }
    }

    #[test]
    fn wilson_interval_contains_phat_and_shrinks() {
        let (lo1, hi1) = wilson_interval(90, 100, 0.95).unwrap();
        assert!(lo1 < 0.9 && 0.9 < hi1);
        let (lo2, hi2) = wilson_interval(900, 1000, 0.95).unwrap();
        assert!(hi2 - lo2 < hi1 - lo1, "interval must shrink with n");
    }

    #[test]
    fn wilson_interval_extreme_phat_stays_in_unit_interval() {
        let (lo, hi) = wilson_interval(100, 100, 0.95).unwrap();
        assert!(lo > 0.9 && hi <= 1.0);
        let (lo, hi) = wilson_interval(0, 100, 0.95).unwrap();
        assert!(lo >= 0.0 && hi < 0.1);
    }

    #[test]
    fn wilson_validates() {
        assert!(wilson_interval(1, 0, 0.95).is_err());
        assert!(wilson_interval(5, 4, 0.95).is_err());
        assert!(wilson_interval(1, 4, 1.0).is_err());
    }
}
