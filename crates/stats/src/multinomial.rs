//! The multinomial distribution — multi-valued feedback extension.
//!
//! §3.1 of the paper notes that non-binary feedback (e.g. {positive,
//! neutral, negative}) is handled by "replac(ing) binomial distributions in
//! our framework with multinomial distributions". This module provides that
//! replacement.

use crate::error::StatsError;
use crate::special::ln_factorial;
use rand::Rng;

/// A multinomial distribution over `c` categories with `n` trials.
///
/// # Examples
///
/// ```
/// use hp_stats::Multinomial;
/// use rand::SeedableRng;
///
/// // positive / neutral / negative feedback over a 10-transaction window
/// let m = Multinomial::new(10, vec![0.85, 0.10, 0.05])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let counts = m.sample(&mut rng);
/// assert_eq!(counts.iter().sum::<u32>(), 10);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Multinomial {
    n: u32,
    probs: Vec<f64>,
}

impl Multinomial {
    /// Creates a multinomial distribution with `n` trials and category
    /// probabilities `probs`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] if `probs` is empty.
    /// * [`StatsError::InvalidProbability`] if any entry lies outside `[0,1]`.
    /// * [`StatsError::UnnormalizedProbabilities`] if the entries do not sum
    ///   to 1 within `1e-9`.
    pub fn new(n: u32, probs: Vec<f64>) -> Result<Self, StatsError> {
        if probs.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "category probabilities",
            });
        }
        for &p in &probs {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(StatsError::InvalidProbability { value: p });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(StatsError::UnnormalizedProbabilities { sum });
        }
        Ok(Multinomial { n, probs })
    }

    /// Number of trials `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.probs.len()
    }

    /// Category probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Natural log of the probability mass at a count vector.
    ///
    /// Returns `f64::NEG_INFINITY` when `counts` has the wrong arity, does
    /// not sum to `n`, or places mass on a zero-probability category.
    pub fn ln_pmf(&self, counts: &[u32]) -> f64 {
        if counts.len() != self.probs.len() {
            return f64::NEG_INFINITY;
        }
        if counts.iter().map(|&c| c as u64).sum::<u64>() != self.n as u64 {
            return f64::NEG_INFINITY;
        }
        let mut acc = ln_factorial(self.n as u64);
        for (&c, &p) in counts.iter().zip(&self.probs) {
            if p == 0.0 {
                if c > 0 {
                    return f64::NEG_INFINITY;
                }
                continue;
            }
            acc -= ln_factorial(c as u64);
            acc += c as f64 * p.ln();
        }
        acc
    }

    /// Probability mass at a count vector.
    pub fn pmf(&self, counts: &[u32]) -> f64 {
        self.ln_pmf(counts).exp()
    }

    /// Draws one count vector (conditional binomial method).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let mut remaining_n = self.n;
        let mut remaining_p = 1.0_f64;
        let mut out = Vec::with_capacity(self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            if i + 1 == self.probs.len() {
                out.push(remaining_n);
                break;
            }
            if remaining_n == 0 || remaining_p <= 0.0 {
                out.push(0);
                continue;
            }
            let cond = (p / remaining_p).clamp(0.0, 1.0);
            let draw = crate::Binomial::new(remaining_n, cond)
                .expect("conditional probability is clamped to [0,1]")
                .sample(rng);
            out.push(draw);
            remaining_n -= draw;
            remaining_p -= p;
        }
        out
    }

    /// Marginal distribution of category `i` — `B(n, probs[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if `i` is not a valid category.
    pub fn marginal(&self, i: usize) -> Result<crate::Binomial, StatsError> {
        let p = *self.probs.get(i).ok_or(StatsError::OutOfSupport {
            value: i as u64,
            max: self.probs.len() as u64 - 1,
        })?;
        crate::Binomial::new(self.n, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Multinomial::new(5, vec![]).is_err());
        assert!(Multinomial::new(5, vec![0.5, 0.6]).is_err());
        assert!(Multinomial::new(5, vec![0.5, -0.5, 1.0]).is_err());
        assert!(Multinomial::new(5, vec![0.2, 0.3, 0.5]).is_ok());
    }

    #[test]
    fn pmf_binary_case_matches_binomial() {
        let m = Multinomial::new(10, vec![0.9, 0.1]).unwrap();
        let b = crate::Binomial::new(10, 0.9).unwrap();
        for k in 0..=10u32 {
            let pm = m.pmf(&[k, 10 - k]);
            let pb = b.pmf(k);
            assert!((pm - pb).abs() < 1e-12, "k={k}: {pm} vs {pb}");
        }
    }

    #[test]
    fn pmf_rejects_malformed_counts() {
        let m = Multinomial::new(10, vec![0.5, 0.5]).unwrap();
        assert_eq!(m.pmf(&[5, 4]), 0.0); // sums to 9
        assert_eq!(m.pmf(&[10]), 0.0); // wrong arity
    }

    #[test]
    fn pmf_sums_to_one_three_categories() {
        let m = Multinomial::new(6, vec![0.5, 0.3, 0.2]).unwrap();
        let mut total = 0.0;
        for a in 0..=6u32 {
            for b in 0..=(6 - a) {
                let c = 6 - a - b;
                total += m.pmf(&[a, b, c]);
            }
        }
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn zero_probability_category() {
        let m = Multinomial::new(4, vec![0.7, 0.0, 0.3]).unwrap();
        assert_eq!(m.pmf(&[2, 1, 1]), 0.0);
        assert!(m.pmf(&[3, 0, 1]) > 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let counts = m.sample(&mut rng);
            assert_eq!(counts[1], 0, "never sample a zero-probability category");
        }
    }

    #[test]
    fn samples_sum_to_n_and_match_marginals() {
        let m = Multinomial::new(10, vec![0.85, 0.10, 0.05]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let trials = 20_000;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let counts = m.sample(&mut rng);
            assert_eq!(counts.iter().sum::<u32>(), 10);
            for (s, &c) in sums.iter_mut().zip(&counts) {
                *s += c as u64;
            }
        }
        for (i, &expected_p) in [0.85, 0.10, 0.05].iter().enumerate() {
            let mean = sums[i] as f64 / trials as f64;
            assert!(
                (mean - 10.0 * expected_p).abs() < 0.1,
                "category {i} mean {mean}"
            );
        }
    }

    #[test]
    fn marginal_is_binomial() {
        let m = Multinomial::new(12, vec![0.6, 0.4]).unwrap();
        let marg = m.marginal(0).unwrap();
        assert_eq!(marg.n(), 12);
        assert!((marg.p() - 0.6).abs() < 1e-15);
        assert!(m.marginal(2).is_err());
    }
}
