//! Streaming statistics: prefix sums and Welford running moments.
//!
//! [`PrefixSums`] is the backbone of the O(n) multi-testing optimization
//! (§5.5 of the paper): the number of good transactions in *any* contiguous
//! range of the history — and therefore any window count and any suffix
//! p̂ — is answered in O(1) after a single O(n) pass.

use crate::error::StatsError;

/// Prefix sums over a boolean (good/bad) transaction sequence.
///
/// `sums[i]` is the number of good transactions among the first `i`.
///
/// # Examples
///
/// ```
/// use hp_stats::PrefixSums;
///
/// let ps = PrefixSums::from_bools([true, false, true, true].into_iter());
/// assert_eq!(ps.count_range(0, 4), 3);
/// assert_eq!(ps.count_range(1, 2), 0);
/// assert!((ps.rate_range(2, 4).unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSums {
    sums: Vec<u64>,
}

impl PrefixSums {
    /// Creates an empty prefix-sum structure.
    pub fn new() -> Self {
        PrefixSums { sums: vec![0] }
    }

    /// Builds prefix sums from an iterator of good/bad outcomes.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut ps = PrefixSums::new();
        for good in iter {
            ps.push(good);
        }
        ps
    }

    /// Appends one outcome.
    pub fn push(&mut self, good: bool) {
        let last = *self.sums.last().expect("sums is never empty");
        self.sums.push(last + u64::from(good));
    }

    /// Removes and returns the most recent outcome, or `None` when empty.
    ///
    /// Lets callers evaluate hypothetical continuations (append, test,
    /// revert) in O(1) — the strategic attacker of the paper's §5.1 does
    /// exactly this before every move.
    pub fn pop(&mut self) -> Option<bool> {
        if self.is_empty() {
            return None;
        }
        let last = self.sums.pop().expect("len checked above");
        Some(last > *self.sums.last().expect("sums is never empty"))
    }

    /// Number of outcomes recorded.
    pub fn len(&self) -> usize {
        self.sums.len() - 1
    }

    /// Whether no outcomes are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of good outcomes.
    pub fn total_good(&self) -> u64 {
        *self.sums.last().expect("sums is never empty")
    }

    /// Number of good outcomes in the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn count_range(&self, start: usize, end: usize) -> u64 {
        assert!(start <= end && end <= self.len(), "range [{start},{end}) out of bounds");
        self.sums[end] - self.sums[start]
    }

    /// Fraction of good outcomes in `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty range.
    pub fn rate_range(&self, start: usize, end: usize) -> Result<f64, StatsError> {
        if start >= end {
            return Err(StatsError::EmptyInput {
                what: "rate over an empty range",
            });
        }
        Ok(self.count_range(start, end) as f64 / (end - start) as f64)
    }

    /// Window counts of size `m` covering `[start, end)`, aligned to
    /// `start`; a trailing partial window is dropped (paper semantics).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `m == 0`.
    pub fn window_counts(&self, start: usize, end: usize, m: usize) -> Result<Vec<u32>, StatsError> {
        if m == 0 {
            return Err(StatsError::InvalidCount {
                what: "window size",
                value: 0,
            });
        }
        assert!(start <= end && end <= self.len());
        let k = (end - start) / m;
        let mut out = Vec::with_capacity(k);
        for w in 0..k {
            let s = start + w * m;
            out.push(self.count_range(s, s + m) as u32);
        }
        Ok(out)
    }
}

impl Default for PrefixSums {
    fn default() -> Self {
        PrefixSums::new()
    }
}

/// Welford's online algorithm for running mean and variance.
///
/// Used by the sweep runner to aggregate replicated experiment measurements
/// without storing them all.
///
/// # Examples
///
/// ```
/// use hp_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0 when fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / self.count as f64
    }

    /// Sample variance (divides by `n-1`; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / (self.count - 1) as f64
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel formula).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_basic_ranges() {
        let ps = PrefixSums::from_bools([true, true, false, true, false]);
        assert_eq!(ps.len(), 5);
        assert_eq!(ps.total_good(), 3);
        assert_eq!(ps.count_range(0, 5), 3);
        assert_eq!(ps.count_range(2, 3), 0);
        assert_eq!(ps.count_range(3, 4), 1);
        assert_eq!(ps.count_range(2, 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn prefix_sums_out_of_bounds_panics() {
        let ps = PrefixSums::from_bools([true]);
        let _ = ps.count_range(0, 2);
    }

    #[test]
    fn rate_range_errors_on_empty() {
        let ps = PrefixSums::from_bools([true, false]);
        assert!(ps.rate_range(1, 1).is_err());
        assert!((ps.rate_range(0, 2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_counts_drop_trailing_partial() {
        // 7 outcomes, window 3 → 2 windows, last outcome dropped.
        let ps =
            PrefixSums::from_bools([true, true, false, false, true, true, true]);
        let w = ps.window_counts(0, 7, 3).unwrap();
        assert_eq!(w, vec![2, 2]);
        assert!(ps.window_counts(0, 7, 0).is_err());
    }

    #[test]
    fn window_counts_with_offset_start() {
        let ps =
            PrefixSums::from_bools([true, false, true, true, false, true]);
        // Suffix [2, 6): outcomes T T F T, window 2 → [2, 1]
        let w = ps.window_counts(2, 6, 2).unwrap();
        assert_eq!(w, vec![2, 1]);
    }

    #[test]
    fn window_counts_match_naive_recount() {
        let outcomes: Vec<bool> = (0..103).map(|i| i % 3 != 0).collect();
        let ps = PrefixSums::from_bools(outcomes.iter().copied());
        for m in [1usize, 2, 5, 10, 50] {
            let fast = ps.window_counts(0, outcomes.len(), m).unwrap();
            let slow: Vec<u32> = outcomes
                .chunks_exact(m)
                .map(|c| c.iter().filter(|&&g| g).count() as u32)
                .collect();
            assert_eq!(fast, slow, "m={m}");
        }
    }

    #[test]
    fn pop_reverses_push() {
        let mut ps = PrefixSums::new();
        assert_eq!(ps.pop(), None);
        ps.push(true);
        ps.push(false);
        ps.push(true);
        assert_eq!(ps.pop(), Some(true));
        assert_eq!(ps.pop(), Some(false));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.total_good(), 1);
        assert_eq!(ps.pop(), Some(true));
        assert_eq!(ps.pop(), None);
    }

    #[test]
    fn welford_single_value() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.count(), 1);
        assert!((w.mean() - 42.0).abs() < 1e-12);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 1.3).collect();
        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
