//! Special functions: log-gamma, log-factorial, log-binomial-coefficient.
//!
//! The behavior tests evaluate binomial probability mass functions for
//! window sizes that are usually small (m ≈ 10) but may legitimately be in
//! the thousands for coarse-grained audits, so all combinatorics are done in
//! log space with a Lanczos approximation of Γ.

/// Lanczos coefficients for g = 7, n = 9 (Boost/GSL parameterization).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accurate to ~14 significant digits over the range used by this crate.
///
/// # Panics
///
/// Panics in debug builds if `x` is not a positive finite number.
///
/// # Examples
///
/// ```
/// let lg = hp_stats::special::ln_gamma(5.0);
/// assert!((lg - 24.0f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the exact log-factorial lookup table.
const FACT_TABLE_LEN: usize = 257;

/// Natural logarithm of `n!`.
///
/// Exact table lookup for `n < 257`, Lanczos `ln Γ(n+1)` beyond.
///
/// # Examples
///
/// ```
/// assert_eq!(hp_stats::special::ln_factorial(0), 0.0);
/// assert!((hp_stats::special::ln_factorial(4) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; FACT_TABLE_LEN]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0_f64; FACT_TABLE_LEN];
        let mut acc = 0.0_f64;
        for (i, slot) in t.iter_mut().enumerate().skip(1) {
            acc += (i as f64).ln();
            *slot = acc;
        }
        t
    });
    if (n as usize) < FACT_TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
///
/// # Examples
///
/// ```
/// let lc = hp_stats::special::ln_choose(10, 3);
/// assert!((lc - 120.0f64.ln()).abs() < 1e-12);
/// assert_eq!(hp_stats::special::ln_choose(3, 10), f64::NEG_INFINITY);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(5) = 24
        assert_close(ln_gamma(1.0), 0.0, 1e-13);
        assert_close(ln_gamma(2.0), 0.0, 1e-13);
        assert_close(ln_gamma(3.0), 2.0_f64.ln(), 1e-13);
        assert_close(ln_gamma(4.0), 6.0_f64.ln(), 1e-13);
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12);
        // Γ(3/2) = √π / 2
        assert_close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_large_argument_stirling_regime() {
        // Compare against Stirling series with correction terms for x = 1000.
        let x: f64 = 1000.0;
        let stirling = (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln()
            + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3));
        assert_close(ln_gamma(x), stirling, 1e-9);
    }

    #[test]
    fn ln_factorial_exact_small_values() {
        let mut acc = 1.0_f64;
        for n in 1..20u64 {
            acc *= n as f64;
            assert_close(ln_factorial(n), acc.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_factorial_table_boundary_is_continuous() {
        // Values straddling the table/Lanczos boundary must agree with each
        // other through the recurrence ln (n+1)! = ln n! + ln(n+1).
        for n in 250..265u64 {
            let lhs = ln_factorial(n + 1);
            let rhs = ln_factorial(n) + ((n + 1) as f64).ln();
            assert_close(lhs, rhs, 1e-9);
        }
    }

    #[test]
    fn ln_choose_pascal_triangle() {
        for n in 0..30u64 {
            for k in 0..=n {
                let direct = ln_choose(n, k).exp().round() as u64;
                let expected = pascal(n, k);
                assert_eq!(direct, expected, "C({n},{k})");
            }
        }
    }

    fn pascal(n: u64, k: u64) -> u64 {
        if k == 0 || k == n {
            return 1;
        }
        pascal(n - 1, k - 1) + pascal(n - 1, k)
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in [10u64, 100, 1000] {
            for k in [0u64, 1, 3, n / 2] {
                let a = ln_choose(n, k);
                let b = ln_choose(n, n - k);
                assert_close(a, b, 1e-9);
            }
        }
    }

    #[test]
    fn ln_choose_out_of_range_is_neg_infinity() {
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(0, 1), f64::NEG_INFINITY);
    }
}
