//! Monte-Carlo calibration of distribution-distance thresholds.
//!
//! The paper (§3.2) rejects deriving the distribution of the L¹ distance
//! analytically and instead generates "a reasonably large number of sets"
//! of window counts from `B(m, p̂)`, measures their distances to the model,
//! and picks ε at the 95% confidence point. [`ThresholdCalibrator`]
//! implements exactly that, plus the engineering the paper glosses over:
//!
//! * **caching** keyed by `(m, k, p̂-bucket, confidence)` so that the
//!   strategic attacker loop and the multi-test (which call this thousands
//!   of times with nearly identical parameters) stay fast,
//! * **parallel** Monte Carlo via crossbeam scoped threads for large jobs
//!   (jobs below [`CalibrationConfig::serial_cutoff`] stay serial), with
//!   trials drawn from fixed per-chunk RNG streams so thresholds are
//!   bit-identical at every thread count,
//! * **asymptotic extrapolation** for very large sample counts `k`: the L¹
//!   statistic scales as `Θ(1/√k)`, so beyond a cutoff we calibrate at the
//!   cutoff and scale by `√(k₀/k)` instead of simulating hundreds of
//!   millions of draws (needed for the Fig. 9 scaling experiment).

use crate::binomial::Binomial;
use crate::distance::DistanceKind;
use crate::empirical::Histogram;
use crate::error::StatsError;
use crate::quantile::quantile;
use crate::rng::{derive_seed, seeded_rng};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration for [`ThresholdCalibrator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Number of Monte-Carlo trials per calibration (paper: "a reasonably
    /// large number"; default 2000). Treated as a *floor*: extreme
    /// confidence levels automatically raise the trial count so the
    /// requested quantile stays resolvable.
    pub trials: usize,
    /// Confidence level for the threshold (paper: 0.95).
    pub confidence: f64,
    /// Width of the p̂ cache buckets (default 0.005). Calibration uses the
    /// bucket midpoint, so a smaller bucket is more faithful but caches
    /// worse.
    pub p_bucket: f64,
    /// Distance metric to calibrate (paper: L¹).
    pub distance: DistanceKind,
    /// Above this number of windows `k`, thresholds are extrapolated from a
    /// calibration at the cutoff using the `1/√k` law instead of simulated
    /// directly (default 2048).
    pub large_k_cutoff: usize,
    /// Number of worker threads for large Monte-Carlo jobs (1 = serial).
    ///
    /// Thread count never changes results: trials are drawn from fixed
    /// per-chunk RNG streams (see [`ThresholdCalibrator`]), so any
    /// `threads` value produces bit-identical thresholds.
    pub threads: usize,
    /// Jobs with `trials * k` below this run serially regardless of
    /// `threads` — thread spawn/join overhead dwarfs small jobs (default
    /// `1 << 16`; `0` parallelizes everything). A pure performance knob:
    /// chunked RNG streams make the output identical either way.
    pub serial_cutoff: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            trials: 2000,
            confidence: 0.95,
            p_bucket: 0.005,
            distance: DistanceKind::L1,
            large_k_cutoff: 2048,
            threads: 1,
            serial_cutoff: 1 << 16,
        }
    }
}

impl CalibrationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: trials ≥ 2, confidence and
    /// p_bucket in (0, 1), cutoff ≥ 2, threads ≥ 1.
    pub fn validate(&self) -> Result<(), StatsError> {
        if self.trials < 2 {
            return Err(StatsError::InvalidCount {
                what: "calibration trials",
                value: self.trials,
            });
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(StatsError::InvalidLevel {
                value: self.confidence,
            });
        }
        if !(self.p_bucket > 0.0 && self.p_bucket < 1.0) {
            return Err(StatsError::InvalidLevel {
                value: self.p_bucket,
            });
        }
        if self.large_k_cutoff < 2 {
            return Err(StatsError::InvalidCount {
                what: "large-k cutoff",
                value: self.large_k_cutoff,
            });
        }
        if self.threads == 0 {
            return Err(StatsError::InvalidCount {
                what: "calibration threads",
                value: 0,
            });
        }
        Ok(())
    }
}

/// Cache key: everything a threshold depends on, with `p̂` and confidence
/// quantized to buckets so floating-point jitter still hits the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    m: u32,
    k: usize,
    p_bucket_index: u32,
    confidence_millis: u32,
}

/// One exported threshold-cache entry: the quantized key a threshold was
/// calibrated under plus the threshold itself, bit-exact.
///
/// Exported by [`ThresholdCalibrator::export_cache`] and accepted back by
/// [`ThresholdCalibrator::preload_cache`], so a calibration cache can be
/// persisted across process restarts and a warm restart never repeats a
/// Monte-Carlo job it has already run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationEntry {
    /// Window size `m` of the binomial model.
    pub m: u32,
    /// Sample-set size `k` (complete windows).
    pub k: usize,
    /// Quantized p̂ bucket index (`round(p̂ / p_bucket)`).
    pub p_bucket_index: u32,
    /// Quantized confidence (`round(confidence · 100000)`).
    pub confidence_millis: u32,
    /// The calibrated threshold ε.
    pub epsilon: f64,
}

/// Calibrates and caches goodness-of-fit thresholds.
///
/// # Examples
///
/// ```
/// use hp_stats::{CalibrationConfig, ThresholdCalibrator};
///
/// let cal = ThresholdCalibrator::new(CalibrationConfig::default())?;
/// // 95% of honest B(10, 0.9) window-count samples of size 40 sit below ε:
/// let eps = cal.threshold(10, 40, 0.9)?;
/// assert!(eps > 0.0 && eps < 2.0);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug)]
pub struct ThresholdCalibrator {
    config: CalibrationConfig,
    seed: u64,
    cache: RwLock<HashMap<CacheKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ThresholdCalibrator {
    /// Creates a calibrator with the given configuration and a fixed
    /// default seed (calibrations are reproducible by default).
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationConfig::validate`] failures.
    pub fn new(config: CalibrationConfig) -> Result<Self, StatsError> {
        config.validate()?;
        Ok(ThresholdCalibrator {
            config,
            seed: 0x5EED_CA1B,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Replaces the Monte-Carlo seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Number of cached thresholds (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Lifetime `(hits, misses)` of the threshold cache. A hit answered a
    /// [`Self::threshold_at`] lookup from the cache; a miss ran a
    /// Monte-Carlo calibration. Large-`k` extrapolations count as the
    /// anchor lookup they recurse into.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// A stable fingerprint of everything that determines what this
    /// calibrator's thresholds *are*: the Monte-Carlo seed, trial floor,
    /// confidence, p̂ bucket width, distance metric, and large-`k` cutoff.
    ///
    /// Two calibrators with equal fingerprints produce bit-identical
    /// thresholds for every key, so a persisted cache is valid exactly
    /// when its recorded fingerprint matches. Thread count and the serial
    /// cutoff are deliberately excluded: chunked RNG streams make them
    /// pure performance knobs that never change a threshold.
    pub fn fingerprint(&self) -> u64 {
        let c = &self.config;
        let mut fp = derive_seed(0x4650_4341_4C31, self.seed); // "FPCAL1"
        fp = derive_seed(fp, c.trials as u64);
        fp = derive_seed(fp, c.confidence.to_bits());
        fp = derive_seed(fp, c.p_bucket.to_bits());
        fp = derive_seed(fp, c.distance as u64);
        fp = derive_seed(fp, c.large_k_cutoff as u64);
        fp
    }

    /// Exports every cached threshold, sorted by key so the output is
    /// deterministic regardless of insertion order.
    pub fn export_cache(&self) -> Vec<CalibrationEntry> {
        let cache = self.cache.read();
        let mut entries: Vec<CalibrationEntry> = cache
            .iter()
            .map(|(key, &epsilon)| CalibrationEntry {
                m: key.m,
                k: key.k,
                p_bucket_index: key.p_bucket_index,
                confidence_millis: key.confidence_millis,
                epsilon,
            })
            .collect();
        entries.sort_by_key(|e| (e.m, e.k, e.p_bucket_index, e.confidence_millis));
        entries
    }

    /// Seeds the cache with previously exported entries (e.g. loaded from
    /// disk at boot), returning how many were installed. Entries with a
    /// non-finite or negative ε are rejected; an entry already present is
    /// left untouched (the live value was calibrated by this process and
    /// is equally authoritative).
    ///
    /// Preloading only makes sense from a calibrator with the same
    /// [`Self::fingerprint`]; callers own that check — this method trusts
    /// its input.
    pub fn preload_cache(
        &self,
        entries: impl IntoIterator<Item = CalibrationEntry>,
    ) -> usize {
        let mut cache = self.cache.write();
        let mut installed = 0;
        for e in entries {
            if !e.epsilon.is_finite() || e.epsilon < 0.0 {
                continue;
            }
            let key = CacheKey {
                m: e.m,
                k: e.k,
                p_bucket_index: e.p_bucket_index,
                confidence_millis: e.confidence_millis,
            };
            cache.entry(key).or_insert_with(|| {
                installed += 1;
                e.epsilon
            });
        }
        installed
    }

    /// Threshold ε such that `confidence` of honest sample-sets of `k`
    /// window counts drawn from `B(m, p̂)` have distance below ε.
    ///
    /// Uses the configured confidence; see [`Self::threshold_at`] to
    /// override it (the Bonferroni-corrected multi-test does).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `k == 0`, or
    /// [`StatsError::InvalidProbability`] for a bad `p_hat`.
    pub fn threshold(&self, m: u32, k: usize, p_hat: f64) -> Result<f64, StatsError> {
        self.threshold_at(m, k, p_hat, self.config.confidence)
    }

    /// Like [`Self::threshold`] with an explicit confidence level.
    ///
    /// # Errors
    ///
    /// As [`Self::threshold`], plus [`StatsError::InvalidLevel`] for a
    /// confidence outside `(0, 1)`.
    pub fn threshold_at(
        &self,
        m: u32,
        k: usize,
        p_hat: f64,
        confidence: f64,
    ) -> Result<f64, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidCount {
                what: "sample-set size k",
                value: 0,
            });
        }
        if !(0.0..=1.0).contains(&p_hat) || !p_hat.is_finite() {
            return Err(StatsError::InvalidProbability { value: p_hat });
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(StatsError::InvalidLevel { value: confidence });
        }

        // Beyond the cutoff, use the 1/√k law anchored at the cutoff.
        if k > self.config.large_k_cutoff {
            let k0 = self.config.large_k_cutoff;
            let base = self.threshold_at(m, k0, p_hat, confidence)?;
            return Ok(base * (k0 as f64 / k as f64).sqrt());
        }

        let p_index = self.p_bucket_index(p_hat);
        let key = CacheKey {
            m,
            k,
            p_bucket_index: p_index,
            confidence_millis: (confidence * 100_000.0).round() as u32,
        };
        if let Some(&eps) = self.cache.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(eps);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p_center = self.p_bucket_center(p_index);
        let samples = self.sample_distances(m, k, p_center, self.config.trials)?;
        let eps = tail_quantile(&samples, confidence)?;
        self.cache.write().insert(key, eps);
        Ok(eps)
    }

    /// Raw Monte-Carlo distance samples for `(m, k, p)` — the distribution
    /// the threshold is a quantile of. Exposed for Fig. 8-style analyses.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `k == 0`, or propagates
    /// distribution-construction failures.
    pub fn distance_samples(&self, m: u32, k: usize, p: f64) -> Result<Vec<f64>, StatsError> {
        self.sample_distances(m, k, p, self.config.trials)
    }

    /// As [`Self::distance_samples`] with an explicit trial count (used
    /// internally to resolve extreme quantiles).
    fn sample_distances(
        &self,
        m: u32,
        k: usize,
        p: f64,
        trials: usize,
    ) -> Result<Vec<f64>, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidCount {
                what: "sample-set size k",
                value: 0,
            });
        }
        let model = Binomial::new(m, p)?;
        let pmf = model.pmf_table();
        // The job seed mixes every parameter so distinct calibrations use
        // independent randomness.
        let job_seed = derive_seed(
            self.seed,
            derive_seed(m as u64, derive_seed(k as u64, (p * 1e9) as u64)),
        );

        // Trials are drawn in fixed chunks, each from its own RNG stream
        // derived from (job_seed, chunk index). Serial evaluation walks the
        // chunks in order; parallel evaluation hands each worker a
        // *contiguous* chunk range and concatenates in worker order — the
        // same chunk sequence either way, so the sample vector (and thus
        // every threshold) is bit-identical at any thread count.
        let chunks = trials.div_ceil(CHUNK_TRIALS);
        let distance = self.config.distance;
        let run_chunk = |c: usize, out: &mut Vec<f64>| {
            let count = CHUNK_TRIALS.min(trials - c * CHUNK_TRIALS);
            run_trials(
                &model,
                &pmf,
                distance,
                m,
                k,
                count,
                derive_seed(job_seed, c as u64 + 1),
                out,
            );
        };

        let threads = self.config.threads.min(chunks).max(1);
        let mut out: Vec<f64> = Vec::with_capacity(trials);
        if threads == 1 || trials * k < self.config.serial_cutoff {
            for c in 0..chunks {
                run_chunk(c, &mut out);
            }
            return Ok(out);
        }

        let per = chunks.div_ceil(threads);
        crossbeam::scope(|scope| {
            let run_chunk = &run_chunk;
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * per;
                let hi = chunks.min(lo + per);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    let mut part = Vec::with_capacity((hi - lo) * CHUNK_TRIALS);
                    for c in lo..hi {
                        run_chunk(c, &mut part);
                    }
                    part
                }));
            }
            for h in handles {
                out.extend(h.join().expect("calibration worker panicked"));
            }
        })
        .expect("calibration scope panicked");
        Ok(out)
    }

    fn p_bucket_index(&self, p: f64) -> u32 {
        (p / self.config.p_bucket).round() as u32
    }

    fn p_bucket_center(&self, index: u32) -> f64 {
        (index as f64 * self.config.p_bucket).clamp(0.0, 1.0)
    }
}

/// Quantile estimation that stays meaningful beyond the Monte-Carlo
/// resolution.
///
/// A Bonferroni-corrected multi-test may ask for the 99.96th percentile;
/// with 2000 trials the empirical quantile would simply return the sample
/// maximum. Beyond the highest quantile the sample can resolve (leaving
/// ~10 samples in the tail), we extend with a normal tail anchored at the
/// resolvable quantile: `ε(c) ≈ q_a + (z_c − z_a)·σ`. The distance
/// statistic is a sum of many bounded terms, so its upper tail is
/// approximately Gaussian; the extension is monotone in the confidence
/// and exact at `c = a`.
fn tail_quantile(samples: &[f64], confidence: f64) -> Result<f64, StatsError> {
    let n = samples.len();
    let achievable = 1.0 - (10.0 / n as f64).min(0.5);
    if confidence <= achievable {
        return quantile(samples, confidence);
    }
    let anchor = quantile(samples, achievable)?;
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1).max(1) as f64;
    let sigma = var.sqrt();
    if sigma == 0.0 {
        return Ok(anchor);
    }
    let z_anchor = crate::ci::standard_normal_quantile(achievable);
    let z_conf = crate::ci::standard_normal_quantile(confidence);
    Ok(anchor + (z_conf - z_anchor) * sigma)
}

/// Trials per independent RNG stream. Each chunk of this many trials is
/// seeded by `(job_seed, chunk index)` alone, which is what makes serial
/// and parallel schedules emit the same sample sequence: the partition of
/// chunks over threads can change, the chunks themselves cannot.
const CHUNK_TRIALS: usize = 64;

#[allow(clippy::too_many_arguments)]
fn run_trials(
    model: &Binomial,
    pmf: &[f64],
    distance: DistanceKind,
    m: u32,
    k: usize,
    trials: usize,
    seed: u64,
    out: &mut Vec<f64>,
) {
    let sampler = model.table_sampler();
    let mut rng = seeded_rng(seed);
    let mut hist = Histogram::new(m).expect("support construction cannot fail");
    let mut drawn: Vec<u32> = Vec::with_capacity(k);
    for _ in 0..trials {
        drawn.clear();
        for _ in 0..k {
            let s = sampler.sample(&mut rng);
            hist.add(s).expect("sample within support by construction");
            drawn.push(s);
        }
        let d = distance
            .distance(&hist, pmf)
            .expect("non-empty histogram with matching support");
        out.push(d);
        for &s in &drawn {
            hist.remove(s).expect("removing what was just added");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrator(trials: usize) -> ThresholdCalibrator {
        ThresholdCalibrator::new(CalibrationConfig {
            trials,
            ..CalibrationConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let bad = |cfg: CalibrationConfig| cfg.validate().is_err();
        assert!(bad(CalibrationConfig {
            trials: 1,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            confidence: 1.0,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            p_bucket: 0.0,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            threads: 0,
            ..Default::default()
        }));
        assert!(CalibrationConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_arguments() {
        let cal = calibrator(100);
        assert!(cal.threshold(10, 0, 0.9).is_err());
        assert!(cal.threshold(10, 10, 1.5).is_err());
        assert!(cal.threshold_at(10, 10, 0.9, 0.0).is_err());
    }

    #[test]
    fn threshold_is_deterministic_given_seed() {
        let a = calibrator(500).with_seed(9).threshold(10, 20, 0.9).unwrap();
        let b = calibrator(500).with_seed(9).threshold(10, 20, 0.9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threshold_decreases_with_more_windows() {
        let cal = calibrator(1500);
        let small = cal.threshold(10, 10, 0.9).unwrap();
        let medium = cal.threshold(10, 100, 0.9).unwrap();
        let large = cal.threshold(10, 1000, 0.9).unwrap();
        assert!(
            small > medium && medium > large,
            "ε must shrink with k: {small} {medium} {large}"
        );
    }

    #[test]
    fn threshold_honors_confidence_ordering() {
        let cal = calibrator(1500);
        let lo = cal.threshold_at(10, 50, 0.9, 0.80).unwrap();
        let hi = cal.threshold_at(10, 50, 0.9, 0.99).unwrap();
        assert!(lo < hi, "higher confidence ⇒ looser threshold: {lo} vs {hi}");
    }

    #[test]
    fn honest_samples_pass_at_roughly_the_nominal_rate() {
        // Draw fresh honest sample-sets and check ~95% fall under ε.
        let cal = calibrator(3000).with_seed(1);
        let m = 10u32;
        let k = 50usize;
        let p = 0.9;
        let eps = cal.threshold(m, k, p).unwrap();
        let model = Binomial::new(m, p).unwrap();
        let pmf = model.pmf_table();
        let mut rng = seeded_rng(777);
        let reps = 2000;
        let mut passes = 0;
        for _ in 0..reps {
            let hist =
                Histogram::from_samples(m, model.sample_many(&mut rng, k)).unwrap();
            if DistanceKind::L1.distance(&hist, &pmf).unwrap() <= eps {
                passes += 1;
            }
        }
        let rate = passes as f64 / reps as f64;
        assert!(
            (rate - 0.95).abs() < 0.03,
            "honest pass rate {rate} should be near 0.95"
        );
    }

    #[test]
    fn degenerate_p_one_gives_zero_threshold() {
        let cal = calibrator(200);
        let eps = cal.threshold(10, 30, 1.0).unwrap();
        assert_eq!(eps, 0.0);
    }

    #[test]
    fn cache_hits_for_nearby_p_hat() {
        let cal = calibrator(200);
        let _ = cal.threshold(10, 30, 0.9001).unwrap();
        let len_after_first = cal.cache_len();
        let _ = cal.threshold(10, 30, 0.9002).unwrap();
        assert_eq!(cal.cache_len(), len_after_first, "bucketed p̂ must share entries");
        let _ = cal.threshold(10, 30, 0.8).unwrap();
        assert_eq!(cal.cache_len(), len_after_first + 1);
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let cal = calibrator(200);
        assert_eq!(cal.cache_stats(), (0, 0));
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        assert_eq!(cal.cache_stats(), (0, 1), "first lookup calibrates");
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        let _ = cal.threshold(10, 30, 0.9001).unwrap();
        assert_eq!(cal.cache_stats(), (2, 1), "same bucket hits");
    }

    #[test]
    fn large_k_extrapolation_follows_sqrt_law() {
        let cal = ThresholdCalibrator::new(CalibrationConfig {
            trials: 800,
            large_k_cutoff: 256,
            ..Default::default()
        })
        .unwrap();
        let base = cal.threshold(10, 256, 0.9).unwrap();
        let far = cal.threshold(10, 1024, 0.9).unwrap();
        assert!((far - base / 2.0).abs() < 1e-12, "√(256/1024)=1/2 scaling");
    }

    #[test]
    fn parallel_matches_serial_distribution() {
        // Chunked RNG streams make the thread count irrelevant to the
        // output: every thread layout must produce the *bit-identical*
        // threshold, not merely a statistically close one.
        let serial = ThresholdCalibrator::new(CalibrationConfig {
            trials: 4000,
            threads: 1,
            ..Default::default()
        })
        .unwrap()
        .with_seed(3);
        let reference = serial.threshold(10, 64, 0.9).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = ThresholdCalibrator::new(CalibrationConfig {
                trials: 4000,
                threads,
                ..Default::default()
            })
            .unwrap()
            .with_seed(3);
            let got = parallel.threshold(10, 64, 0.9).unwrap();
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "threads={threads}: {got} vs serial {reference}"
            );
        }
    }

    #[test]
    fn parallel_samples_are_bit_identical_to_serial() {
        // The raw sample *sequence* — not just its quantile — must be
        // independent of the thread count and of the serial cutoff.
        let base = CalibrationConfig {
            trials: 1000,
            serial_cutoff: 0, // force the parallel dispatch path
            ..Default::default()
        };
        let serial = ThresholdCalibrator::new(CalibrationConfig {
            threads: 1,
            ..base
        })
        .unwrap()
        .with_seed(11);
        let reference = serial.distance_samples(10, 80, 0.9).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = ThresholdCalibrator::new(CalibrationConfig {
                threads,
                ..base
            })
            .unwrap()
            .with_seed(11);
            let got = parallel.distance_samples(10, 80, 0.9).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
        // A high serial cutoff routes the same job serially; output is
        // unchanged because the chunk sequence is.
        let cutoff = ThresholdCalibrator::new(CalibrationConfig {
            threads: 8,
            serial_cutoff: usize::MAX,
            ..base
        })
        .unwrap()
        .with_seed(11);
        assert_eq!(cutoff.distance_samples(10, 80, 0.9).unwrap(), reference);
    }

    #[test]
    fn export_preload_round_trip_is_bit_exact() {
        let cal = calibrator(300).with_seed(5);
        let a = cal.threshold(10, 30, 0.9).unwrap();
        let b = cal.threshold(12, 50, 0.85).unwrap();
        let exported = cal.export_cache();
        assert_eq!(exported.len(), 2);

        let warm = calibrator(300).with_seed(5);
        assert_eq!(warm.preload_cache(exported.clone()), 2);
        assert_eq!(warm.cache_len(), 2);
        // Preloaded thresholds answer without a Monte-Carlo run and are
        // bit-identical to the originals.
        assert_eq!(warm.threshold(10, 30, 0.9).unwrap().to_bits(), a.to_bits());
        assert_eq!(warm.threshold(12, 50, 0.85).unwrap().to_bits(), b.to_bits());
        assert_eq!(warm.cache_stats(), (2, 0), "warm lookups never calibrate");

        // Export order is deterministic (sorted by key).
        let again = warm.export_cache();
        assert_eq!(again, exported);
    }

    #[test]
    fn preload_rejects_garbage_and_keeps_live_entries() {
        let cal = calibrator(300);
        let live = cal.threshold(10, 30, 0.9).unwrap();
        let exported = cal.export_cache();
        let mut tampered = exported[0];
        tampered.epsilon = f64::NAN;
        assert_eq!(cal.preload_cache(vec![tampered]), 0, "NaN rejected");
        let mut stale = exported[0];
        stale.epsilon = live + 1.0;
        assert_eq!(cal.preload_cache(vec![stale]), 0, "live entry wins");
        assert_eq!(cal.threshold(10, 30, 0.9).unwrap().to_bits(), live.to_bits());
    }

    #[test]
    fn fingerprint_tracks_threshold_determining_knobs_only() {
        let base = CalibrationConfig::default();
        let fp = |cfg: CalibrationConfig, seed: u64| {
            ThresholdCalibrator::new(cfg).unwrap().with_seed(seed).fingerprint()
        };
        let reference = fp(base, 1);
        assert_eq!(fp(base, 1), reference, "fingerprint is stable");
        assert_ne!(fp(base, 2), reference, "seed changes thresholds");
        assert_ne!(
            fp(CalibrationConfig { trials: 4000, ..base }, 1),
            reference
        );
        assert_ne!(
            fp(CalibrationConfig { confidence: 0.99, ..base }, 1),
            reference
        );
        // Pure performance knobs never invalidate a persisted cache.
        assert_eq!(
            fp(CalibrationConfig { threads: 8, serial_cutoff: 0, ..base }, 1),
            reference
        );
    }

    #[test]
    fn distance_samples_have_requested_count() {
        let cal = calibrator(123);
        let s = cal.distance_samples(10, 5, 0.9).unwrap();
        assert_eq!(s.len(), 123);
        assert!(s.iter().all(|d| (0.0..=2.0).contains(d)));
    }

    #[test]
    fn extreme_confidence_uses_tail_extension_monotonically() {
        let cal = calibrator(1000);
        let base = cal.threshold_at(10, 40, 0.9, 0.95).unwrap();
        let high = cal.threshold_at(10, 40, 0.9, 0.999).unwrap();
        let higher = cal.threshold_at(10, 40, 0.9, 0.99995).unwrap();
        assert!(base < high, "{base} < {high}");
        assert!(high < higher, "{high} < {higher}");
        assert!(higher.is_finite() && higher < 2.0, "tail stays sane: {higher}");
    }

    #[test]
    fn tail_extension_is_continuous_at_the_anchor() {
        // Just below and just above the resolvable quantile must agree
        // closely (the extension is exact at the anchor).
        let cal = calibrator(2000);
        let achievable = 1.0 - 10.0 / 2000.0; // 0.995
        let below = cal.threshold_at(10, 40, 0.9, achievable - 1e-6).unwrap();
        let above = cal.threshold_at(10, 40, 0.9, achievable + 1e-6).unwrap();
        assert!((below - above).abs() < 0.05, "{below} vs {above}");
    }
}
