//! Monte-Carlo calibration of distribution-distance thresholds.
//!
//! The paper (§3.2) rejects deriving the distribution of the L¹ distance
//! analytically and instead generates "a reasonably large number of sets"
//! of window counts from `B(m, p̂)`, measures their distances to the model,
//! and picks ε at the 95% confidence point. [`ThresholdCalibrator`]
//! implements exactly that, plus the engineering the paper glosses over:
//!
//! * **common random numbers** — one batch of `k` sorted uniform draws per
//!   `(m, k)` is pushed through every p̂ bucket's binomial inverse cdf, so
//!   a single Monte-Carlo job calibrates the *entire p̂ row* of the cache
//!   (every bucket × a ladder of confidence levels) instead of one key,
//! * **single-flight dedup** — concurrent misses on the same `(m, k)` row
//!   wait for one in-flight job instead of each running their own,
//! * **an interpolated threshold surface** ([`crate::surface`]) consulted
//!   before the cache, with a measured error bound and oracle fallback,
//! * **caching** keyed by `(m, k, p̂-bucket, confidence)` so that the
//!   strategic attacker loop and the multi-test (which call this thousands
//!   of times with nearly identical parameters) stay fast,
//! * **parallel** Monte Carlo via crossbeam scoped threads for large jobs
//!   (jobs below [`CalibrationConfig::serial_cutoff`] stay serial), with
//!   trials drawn from fixed per-chunk RNG streams so thresholds are
//!   bit-identical at every thread count,
//! * **asymptotic extrapolation** for very large sample counts `k`: the L¹
//!   statistic scales as `Θ(1/√k)`, so beyond a cutoff we calibrate at the
//!   cutoff and scale by `√(k₀/k)` instead of simulating hundreds of
//!   millions of draws (needed for the Fig. 9 scaling experiment).

use crate::binomial::Binomial;
use crate::distance::DistanceKind;
use crate::empirical::Histogram;
use crate::error::StatsError;
use crate::quantile::quantile_sorted;
use crate::rng::{derive_seed, seeded_rng};
use crate::surface::{SurfaceLayer, SurfaceParams, ThresholdSurface};
use parking_lot::{Mutex, RwLock};
use rand::RngExt;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

/// Configuration for [`ThresholdCalibrator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Number of Monte-Carlo trials per calibration (paper: "a reasonably
    /// large number"; default 2000). Treated as a *floor*: extreme
    /// confidence levels automatically raise the trial count so the
    /// requested quantile stays resolvable.
    pub trials: usize,
    /// Confidence level for the threshold (paper: 0.95).
    pub confidence: f64,
    /// Width of the p̂ cache buckets (default 0.005). Calibration uses the
    /// bucket midpoint, so a smaller bucket is more faithful but caches
    /// worse.
    pub p_bucket: f64,
    /// Distance metric to calibrate (paper: L¹).
    pub distance: DistanceKind,
    /// Above this number of windows `k`, thresholds are extrapolated from a
    /// calibration at the cutoff using the `1/√k` law instead of simulated
    /// directly (default 2048).
    pub large_k_cutoff: usize,
    /// Number of worker threads for large Monte-Carlo jobs (1 = serial).
    ///
    /// Thread count never changes results: trials are drawn from fixed
    /// per-chunk RNG streams (see [`ThresholdCalibrator`]), so any
    /// `threads` value produces bit-identical thresholds.
    pub threads: usize,
    /// Jobs with `trials · k · buckets` below this run serially regardless
    /// of `threads` — thread spawn/join overhead dwarfs small jobs (default
    /// `1 << 16`; `0` parallelizes everything). A pure performance knob:
    /// chunked RNG streams make the output identical either way.
    pub serial_cutoff: usize,
    /// When set, an interpolated threshold surface is built over the
    /// oracle (see [`ThresholdCalibrator::ensure_surface_for`]) and
    /// consulted before the cache. `None` (the default) serves every
    /// threshold from the oracle row cache.
    ///
    /// Deliberately excluded from [`ThresholdCalibrator::fingerprint`]:
    /// the surface is gated by its own measured error bound and falls
    /// back to the oracle, so it never changes what the *oracle*
    /// thresholds are.
    pub surface: Option<SurfaceParams>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            trials: 2000,
            confidence: 0.95,
            p_bucket: 0.005,
            distance: DistanceKind::L1,
            large_k_cutoff: 2048,
            threads: 1,
            serial_cutoff: 1 << 16,
            surface: None,
        }
    }
}

impl CalibrationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: trials ≥ 2, confidence and
    /// p_bucket in (0, 1), cutoff ≥ 2, threads ≥ 1, and (when a surface
    /// is configured) [`SurfaceParams::validate`].
    pub fn validate(&self) -> Result<(), StatsError> {
        if self.trials < 2 {
            return Err(StatsError::InvalidCount {
                what: "calibration trials",
                value: self.trials,
            });
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(StatsError::InvalidLevel {
                value: self.confidence,
            });
        }
        if !(self.p_bucket > 0.0 && self.p_bucket < 1.0) {
            return Err(StatsError::InvalidLevel {
                value: self.p_bucket,
            });
        }
        if self.large_k_cutoff < 2 {
            return Err(StatsError::InvalidCount {
                what: "large-k cutoff",
                value: self.large_k_cutoff,
            });
        }
        if self.threads == 0 {
            return Err(StatsError::InvalidCount {
                what: "calibration threads",
                value: 0,
            });
        }
        if let Some(surface) = &self.surface {
            surface.validate()?;
        }
        Ok(())
    }
}

/// Cache key: everything a threshold depends on, with `p̂` and confidence
/// quantized to buckets so floating-point jitter still hits the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    m: u32,
    k: usize,
    p_bucket_index: u32,
    confidence_millis: u32,
}

/// One exported threshold-cache entry: the quantized key a threshold was
/// calibrated under plus the threshold itself, bit-exact.
///
/// Exported by [`ThresholdCalibrator::export_cache`] and accepted back by
/// [`ThresholdCalibrator::preload_cache`], so a calibration cache can be
/// persisted across process restarts and a warm restart never repeats a
/// Monte-Carlo job it has already run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationEntry {
    /// Window size `m` of the binomial model.
    pub m: u32,
    /// Sample-set size `k` (complete windows).
    pub k: usize,
    /// Quantized p̂ bucket index (`round(p̂ / p_bucket)`).
    pub p_bucket_index: u32,
    /// Quantized confidence (`round(confidence · 100000)`).
    pub confidence_millis: u32,
    /// The calibrated threshold ε.
    pub epsilon: f64,
}

/// Where a served threshold came from, tagged into the audit trail so
/// every verdict records whether its ε was interpolated (surface), read
/// back (cache), or freshly simulated (Monte Carlo).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdProvenance {
    /// Interpolated from the precomputed threshold surface (within its
    /// measured error bound).
    Surface,
    /// Answered from the oracle row cache (an earlier job calibrated it).
    Cache,
    /// A Monte-Carlo row job ran (or was waited on) for this request.
    MonteCarlo,
}

impl std::fmt::Display for ThresholdProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ThresholdProvenance::Surface => "surface",
            ThresholdProvenance::Cache => "cache",
            ThresholdProvenance::MonteCarlo => "monte_carlo",
        })
    }
}

/// Lifetime counters for one [`ThresholdCalibrator`] (all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalibrationStats {
    /// Lookups answered from the row cache.
    pub hits: u64,
    /// Lookups that missed both surface and cache (a row job ran, or was
    /// waited on).
    pub misses: u64,
    /// Lookups answered by the interpolated surface.
    pub surface_hits: u64,
    /// Monte-Carlo row jobs actually executed (single-flight leaders).
    pub oracle_jobs: u64,
    /// Cache entries inserted by common-random-number row fills.
    pub crn_row_fills: u64,
    /// Lookups that slept on another thread's in-flight row job instead
    /// of running their own.
    pub singleflight_waits: u64,
}

thread_local! {
    /// Per-thread total wall time spent inside calibration misses (row
    /// jobs run by this thread plus single-flight waits). The service
    /// shard reads the delta around an assessment to attribute
    /// calibration wait separately from compute.
    static CALIBRATION_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Monotone per-thread nanoseconds spent blocked on threshold
/// calibration (Monte-Carlo row jobs plus single-flight waits). Sampling
/// it before and after a call that may calibrate yields that call's
/// calibration wall time; threads that never calibrate read 0.
pub fn thread_calibration_nanos() -> u64 {
    CALIBRATION_NANOS.with(|c| c.get())
}

fn add_calibration_nanos(ns: u64) {
    CALIBRATION_NANOS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Halvings on the precomputed confidence ladder: a row job fills every
/// bucket at `1 − (1 − confidence)/2^j` for `j ∈ 0..=LADDER_LEVELS`,
/// which is exactly the Bonferroni-corrected per-test confidence the
/// multi-test requests for up to `2^LADDER_LEVELS` simultaneous tests —
/// so multi-test lookups land on prefilled keys.
const LADDER_LEVELS: u32 = 16;

/// The `(quantized, exact)` confidence ladder for a base confidence,
/// deduplicated by quantized key (high rungs collapse once the halving
/// falls below the quantization step).
fn confidence_ladder(confidence: f64) -> Vec<(u32, f64)> {
    let mut ladder: Vec<(u32, f64)> = Vec::with_capacity(LADDER_LEVELS as usize + 1);
    for j in 0..=LADDER_LEVELS {
        let c = 1.0 - (1.0 - confidence) / (1u64 << j) as f64;
        let millis = quantize_confidence(c);
        if !ladder.iter().any(|&(q, _)| q == millis) {
            ladder.push((millis, c));
        }
    }
    ladder
}

fn quantize_confidence(confidence: f64) -> u32 {
    (confidence * 100_000.0).round() as u32
}

/// Calibrates and caches goodness-of-fit thresholds.
///
/// # Examples
///
/// ```
/// use hp_stats::{CalibrationConfig, ThresholdCalibrator};
///
/// let cal = ThresholdCalibrator::new(CalibrationConfig {
///     trials: 200,
///     ..CalibrationConfig::default()
/// })?;
/// // 95% of honest B(10, 0.9) window-count samples of size 40 sit below ε:
/// let eps = cal.threshold(10, 40, 0.9)?;
/// assert!(eps > 0.0 && eps < 2.0);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug)]
pub struct ThresholdCalibrator {
    config: CalibrationConfig,
    seed: u64,
    cache: RwLock<HashMap<CacheKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    surface_hits: AtomicU64,
    oracle_jobs: AtomicU64,
    crn_row_fills: AtomicU64,
    singleflight_waits: AtomicU64,
    /// `(m, k)` rows with a Monte-Carlo job currently running; misses on
    /// an in-flight row sleep on `inflight_done` instead of duplicating
    /// the job. (`std` primitives: the vendored `parking_lot` shim has no
    /// condition variable.)
    inflight: StdMutex<HashSet<(u32, usize)>>,
    inflight_done: Condvar,
    surface: RwLock<Option<Arc<ThresholdSurface>>>,
    /// Serializes surface construction (not lookups).
    surface_build: Mutex<()>,
}

impl ThresholdCalibrator {
    /// Creates a calibrator with the given configuration and a fixed
    /// default seed (calibrations are reproducible by default).
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationConfig::validate`] failures.
    pub fn new(config: CalibrationConfig) -> Result<Self, StatsError> {
        config.validate()?;
        Ok(ThresholdCalibrator {
            config,
            seed: 0x5EED_CA1B,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            surface_hits: AtomicU64::new(0),
            oracle_jobs: AtomicU64::new(0),
            crn_row_fills: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            inflight: StdMutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            surface: RwLock::new(None),
            surface_build: Mutex::new(()),
        })
    }

    /// Replaces the Monte-Carlo seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// Number of cached thresholds (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Lifetime `(hits, misses)` of the threshold cache. A hit answered a
    /// [`Self::threshold_at`] lookup from the cache; a miss ran (or
    /// waited on) a Monte-Carlo row job. Surface answers count in
    /// neither — see [`Self::stats`]. Large-`k` extrapolations count as
    /// the anchor lookup they recurse into.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The full lifetime counter set (cache, surface, oracle jobs,
    /// row fills, single-flight waits).
    pub fn stats(&self) -> CalibrationStats {
        CalibrationStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            surface_hits: self.surface_hits.load(Ordering::Relaxed),
            oracle_jobs: self.oracle_jobs.load(Ordering::Relaxed),
            crn_row_fills: self.crn_row_fills.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
        }
    }

    /// A stable fingerprint of everything that determines what this
    /// calibrator's oracle thresholds *are*: the Monte-Carlo seed, trial
    /// floor, confidence, p̂ bucket width, distance metric, and large-`k`
    /// cutoff.
    ///
    /// Two calibrators with equal fingerprints produce bit-identical
    /// thresholds for every key, so a persisted cache is valid exactly
    /// when its recorded fingerprint matches. Thread count, the serial
    /// cutoff, and the surface parameters are deliberately excluded:
    /// chunked RNG streams make the first two pure performance knobs,
    /// and the surface is an error-bounded view over the oracle, not a
    /// change to it (persisted surfaces additionally record their own
    /// parameters).
    pub fn fingerprint(&self) -> u64 {
        let c = &self.config;
        // "FPCAL2": common-random-number row jobs draw from an (m, k)
        // seed, so thresholds differ from the FPCAL1 per-(m, k, p̂) jobs
        // and caches persisted by either scheme must not cross-load.
        let mut fp = derive_seed(0x4650_4341_4C32, self.seed);
        fp = derive_seed(fp, c.trials as u64);
        fp = derive_seed(fp, c.confidence.to_bits());
        fp = derive_seed(fp, c.p_bucket.to_bits());
        fp = derive_seed(fp, c.distance as u64);
        fp = derive_seed(fp, c.large_k_cutoff as u64);
        fp
    }

    /// Exports every cached threshold, sorted by key so the output is
    /// deterministic regardless of insertion order.
    pub fn export_cache(&self) -> Vec<CalibrationEntry> {
        let cache = self.cache.read();
        let mut entries: Vec<CalibrationEntry> = cache
            .iter()
            .map(|(key, &epsilon)| CalibrationEntry {
                m: key.m,
                k: key.k,
                p_bucket_index: key.p_bucket_index,
                confidence_millis: key.confidence_millis,
                epsilon,
            })
            .collect();
        entries.sort_by_key(|e| (e.m, e.k, e.p_bucket_index, e.confidence_millis));
        entries
    }

    /// Seeds the cache with previously exported entries (e.g. loaded from
    /// disk at boot), returning how many were installed. Entries with a
    /// non-finite or negative ε are rejected; an entry already present is
    /// left untouched (the live value was calibrated by this process and
    /// is equally authoritative).
    ///
    /// Preloading only makes sense from a calibrator with the same
    /// [`Self::fingerprint`]; callers own that check — this method trusts
    /// its input.
    pub fn preload_cache(
        &self,
        entries: impl IntoIterator<Item = CalibrationEntry>,
    ) -> usize {
        let mut cache = self.cache.write();
        let mut installed = 0;
        for e in entries {
            if !e.epsilon.is_finite() || e.epsilon < 0.0 {
                continue;
            }
            let key = CacheKey {
                m: e.m,
                k: e.k,
                p_bucket_index: e.p_bucket_index,
                confidence_millis: e.confidence_millis,
            };
            cache.entry(key).or_insert_with(|| {
                installed += 1;
                e.epsilon
            });
        }
        installed
    }

    /// The currently installed threshold surface, if any.
    pub fn surface(&self) -> Option<Arc<ThresholdSurface>> {
        self.surface.read().clone()
    }

    /// Installs a pre-built surface (e.g. loaded from a persisted
    /// calibration cache), replacing any current one. The caller owns
    /// compatibility: the surface must have been built by a calibrator
    /// with the same [`Self::fingerprint`] and surface parameters.
    pub fn install_surface(&self, surface: Arc<ThresholdSurface>) {
        *self.surface.write() = Some(surface);
    }

    /// Builds (or verifies) the interpolated threshold surface for window
    /// size `m`, when [`CalibrationConfig::surface`] is configured.
    /// Returns whether a surface now covers `m` (`Ok(false)` when no
    /// surface is configured).
    ///
    /// Idempotent and cheap when warm: rows already in the cache (from a
    /// persisted calibration file or earlier traffic) are reused, so a
    /// warm rebuild is hash lookups plus interpolation arithmetic. Builds
    /// for distinct `m` accumulate layers into one surface.
    ///
    /// # Errors
    ///
    /// Propagates oracle calibration failures and
    /// [`SurfaceParams::validate`].
    pub fn ensure_surface_for(&self, m: u32) -> Result<bool, StatsError> {
        let Some(params) = self.config.surface else {
            return Ok(false);
        };
        let covered = |slot: &Option<Arc<ThresholdSurface>>| {
            slot.as_ref().is_some_and(|s| s.covers(m))
        };
        if covered(&self.surface.read()) {
            return Ok(true);
        }
        let _build = self.surface_build.lock();
        if covered(&self.surface.read()) {
            return Ok(true);
        }
        let new_layers = self.build_layers(m, params)?;
        let mut layers = self
            .surface
            .read()
            .as_ref()
            .map(|s| s.layers().to_vec())
            .unwrap_or_default();
        layers.retain(|l| l.m != m);
        layers.extend(new_layers);
        let surface = Arc::new(ThresholdSurface::from_parts(params, layers)?);
        *self.surface.write() = Some(surface);
        Ok(true)
    }

    /// Threshold ε such that `confidence` of honest sample-sets of `k`
    /// window counts drawn from `B(m, p̂)` have distance below ε.
    ///
    /// Uses the configured confidence; see [`Self::threshold_at`] to
    /// override it (the Bonferroni-corrected multi-test does).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `k == 0`, or
    /// [`StatsError::InvalidProbability`] for a bad `p_hat`.
    pub fn threshold(&self, m: u32, k: usize, p_hat: f64) -> Result<f64, StatsError> {
        self.threshold_at(m, k, p_hat, self.config.confidence)
    }

    /// Like [`Self::threshold`] with an explicit confidence level.
    ///
    /// # Errors
    ///
    /// As [`Self::threshold`], plus [`StatsError::InvalidLevel`] for a
    /// confidence outside `(0, 1)`.
    pub fn threshold_at(
        &self,
        m: u32,
        k: usize,
        p_hat: f64,
        confidence: f64,
    ) -> Result<f64, StatsError> {
        self.threshold_with_provenance(m, k, p_hat, confidence)
            .map(|(eps, _)| eps)
    }

    /// [`Self::threshold_at`] plus where the answer came from: the
    /// interpolated surface, the row cache, or a Monte-Carlo job run (or
    /// waited on) by this call. Large-`k` extrapolations inherit the
    /// provenance of their anchor lookup.
    ///
    /// # Errors
    ///
    /// As [`Self::threshold_at`].
    pub fn threshold_with_provenance(
        &self,
        m: u32,
        k: usize,
        p_hat: f64,
        confidence: f64,
    ) -> Result<(f64, ThresholdProvenance), StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidCount {
                what: "sample-set size k",
                value: 0,
            });
        }
        if !(0.0..=1.0).contains(&p_hat) || !p_hat.is_finite() {
            return Err(StatsError::InvalidProbability { value: p_hat });
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(StatsError::InvalidLevel { value: confidence });
        }

        // Beyond the cutoff, use the 1/√k law anchored at the cutoff.
        if k > self.config.large_k_cutoff {
            let k0 = self.config.large_k_cutoff;
            let (base, provenance) = self.threshold_with_provenance(m, k0, p_hat, confidence)?;
            return Ok((base * (k0 as f64 / k as f64).sqrt(), provenance));
        }

        let p_index = self.p_bucket_index(p_hat);
        let confidence_millis = quantize_confidence(confidence);
        if let Some(surface) = self.surface.read().as_ref() {
            if let Some(eps) = surface.lookup(m, k, p_index, confidence_millis) {
                self.surface_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((eps, ThresholdProvenance::Surface));
            }
        }
        let key = CacheKey {
            m,
            k,
            p_bucket_index: p_index,
            confidence_millis,
        };
        if let Some(&eps) = self.cache.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((eps, ThresholdProvenance::Cache));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let result = self.calibrate_row(m, k, key, confidence);
        add_calibration_nanos(start.elapsed().as_nanos() as u64);
        result.map(|eps| (eps, ThresholdProvenance::MonteCarlo))
    }

    /// The miss path: join or lead the single-flight row job for `(m, k)`
    /// until the requested key is cached.
    fn calibrate_row(
        &self,
        m: u32,
        k: usize,
        key: CacheKey,
        confidence: f64,
    ) -> Result<f64, StatsError> {
        loop {
            let leader = {
                let mut inflight = self.inflight.lock().expect("in-flight lock poisoned");
                if inflight.insert((m, k)) {
                    true
                } else {
                    self.singleflight_waits.fetch_add(1, Ordering::Relaxed);
                    let _guard = self
                        .inflight_done
                        .wait(inflight)
                        .expect("in-flight lock poisoned");
                    false
                }
            };
            if leader {
                let job = self.run_row_job(m, k, key.confidence_millis, confidence);
                self.inflight
                    .lock()
                    .expect("in-flight lock poisoned")
                    .remove(&(m, k));
                self.inflight_done.notify_all();
                job?;
            }
            if let Some(&eps) = self.cache.read().get(&key) {
                return Ok(eps);
            }
            // Only reachable as a waiter whose confidence the leader's job
            // did not request (off the precomputed ladder): loop and lead
            // a job for it ourselves.
        }
    }

    /// One common-random-number Monte-Carlo job for the `(m, k)` row:
    /// samples every p̂ bucket from one shared uniform batch and fills the
    /// cache at the whole confidence ladder (plus the requested
    /// confidence) for every bucket.
    fn run_row_job(
        &self,
        m: u32,
        k: usize,
        requested_millis: u32,
        requested_confidence: f64,
    ) -> Result<(), StatsError> {
        self.oracle_jobs.fetch_add(1, Ordering::Relaxed);
        let max_index = self.p_bucket_index(1.0);
        let centers: Vec<f64> = (0..=max_index).map(|i| self.p_bucket_center(i)).collect();
        let per_bucket = self.crn_samples(m, k, &centers, self.config.trials)?;

        let mut confidences = confidence_ladder(self.config.confidence);
        if !confidences.iter().any(|&(q, _)| q == requested_millis) {
            confidences.push((requested_millis, requested_confidence));
        }

        // Quantiles for every confidence come from one sorted copy per
        // bucket; mean/variance are taken in draw order first so each
        // value is bit-identical to `tail_quantile` on the raw samples.
        let mut computed: Vec<(CacheKey, f64)> =
            Vec::with_capacity(per_bucket.len() * confidences.len());
        for (index, samples) in per_bucket.into_iter().enumerate() {
            let var = variance(&samples);
            let mut sorted = samples;
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            for &(millis, confidence) in &confidences {
                let eps = tail_quantile_sorted(&sorted, var, confidence)?;
                computed.push((
                    CacheKey {
                        m,
                        k,
                        p_bucket_index: index as u32,
                        confidence_millis: millis,
                    },
                    eps,
                ));
            }
        }

        let mut filled = 0u64;
        {
            let mut cache = self.cache.write();
            for (key, eps) in computed {
                // A live entry (same deterministic value) wins, matching
                // `preload_cache` semantics.
                cache.entry(key).or_insert_with(|| {
                    filled += 1;
                    eps
                });
            }
        }
        self.crn_row_fills.fetch_add(filled, Ordering::Relaxed);
        Ok(())
    }

    /// Raw Monte-Carlo distance samples for `(m, k, p)` — the distribution
    /// the threshold is a quantile of. Exposed for Fig. 8-style analyses.
    ///
    /// Served by the same common-random-number engine as the row jobs: the
    /// uniform batch depends only on `(seed, m, k)`, so the samples for a
    /// bucket center are bit-identical whether requested alone or as part
    /// of a full row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `k == 0`, or propagates
    /// distribution-construction failures.
    pub fn distance_samples(&self, m: u32, k: usize, p: f64) -> Result<Vec<f64>, StatsError> {
        let mut rows = self.crn_samples(m, k, std::slice::from_ref(&p), self.config.trials)?;
        Ok(rows.pop().expect("one bucket was requested"))
    }

    /// The common-random-number sampler: draws `trials` batches of `k`
    /// sorted uniforms from RNG streams seeded by `(seed, m, k)` alone and
    /// thresholds each batch through every bucket's binomial inverse cdf.
    /// Returns one distance-sample vector per entry of `ps`, each in trial
    /// order.
    fn crn_samples(
        &self,
        m: u32,
        k: usize,
        ps: &[f64],
        trials: usize,
    ) -> Result<Vec<Vec<f64>>, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidCount {
                what: "sample-set size k",
                value: 0,
            });
        }
        let models = ps
            .iter()
            .map(|&p| BucketModel::new(m, p))
            .collect::<Result<Vec<_>, _>>()?;
        // The job seed deliberately ignores p: every bucket is carved from
        // the same uniform batch (common random numbers), which is what
        // lets one job fill a whole row and keeps the threshold-vs-p̂
        // curve free of sampling jitter.
        let job_seed = derive_seed(self.seed, derive_seed(m as u64, k as u64));

        // Trials are drawn in fixed chunks, each from its own RNG stream
        // derived from (job_seed, chunk index). Serial evaluation walks the
        // chunks in order; parallel evaluation hands each worker a
        // *contiguous* chunk range and concatenates in worker order — the
        // same chunk sequence either way, so the sample vectors (and thus
        // every threshold) are bit-identical at any thread count.
        let chunks = trials.div_ceil(CHUNK_TRIALS);
        let distance = self.config.distance;
        let run_chunk = |c: usize, outs: &mut [Vec<f64>]| {
            let count = CHUNK_TRIALS.min(trials - c * CHUNK_TRIALS);
            run_crn_trials(
                &models,
                distance,
                m,
                k,
                count,
                derive_seed(job_seed, c as u64 + 1),
                outs,
            );
        };

        let threads = self.config.threads.min(chunks).max(1);
        let mut outs: Vec<Vec<f64>> = ps.iter().map(|_| Vec::with_capacity(trials)).collect();
        if threads == 1 || trials * k * ps.len().max(1) < self.config.serial_cutoff {
            for c in 0..chunks {
                run_chunk(c, &mut outs);
            }
            return Ok(outs);
        }

        let per = chunks.div_ceil(threads);
        let buckets = ps.len();
        crossbeam::scope(|scope| {
            let run_chunk = &run_chunk;
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * per;
                let hi = chunks.min(lo + per);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    let mut part: Vec<Vec<f64>> =
                        (0..buckets).map(|_| Vec::with_capacity((hi - lo) * CHUNK_TRIALS)).collect();
                    for c in lo..hi {
                        run_chunk(c, &mut part);
                    }
                    part
                }));
            }
            for h in handles {
                let part = h.join().expect("calibration worker panicked");
                for (bucket, partial) in part.into_iter().enumerate() {
                    outs[bucket].extend(partial);
                }
            }
        })
        .expect("calibration scope panicked");
        Ok(outs)
    }

    /// Builds the surface layers for window size `m`: warms the oracle
    /// rows on the geometric k-grid (plus the midpoints used for error
    /// measurement), reads the grid values from the cache, and measures
    /// the interpolation error exhaustively along p̂ and at the geometric
    /// k midpoints.
    fn build_layers(&self, m: u32, params: SurfaceParams) -> Result<Vec<SurfaceLayer>, StatsError> {
        params.validate()?;
        let cutoff = self.config.large_k_cutoff;
        let mut k_grid = vec![params.k_min.min(cutoff).max(1)];
        while k_grid.last().expect("non-empty") * 2 < cutoff {
            k_grid.push(k_grid.last().expect("non-empty") * 2);
        }
        if *k_grid.last().expect("non-empty") != cutoff {
            k_grid.push(cutoff);
        }
        // Geometric midpoints between adjacent grid ks: where the ln-k
        // interpolation error peaks — measured, never served from.
        let k_mids: Vec<usize> = k_grid
            .windows(2)
            .filter_map(|w| {
                let mid = ((w[0] as f64) * (w[1] as f64)).sqrt().round() as usize;
                (mid > w[0] && mid < w[1]).then_some(mid)
            })
            .collect();
        let max_index = self.p_bucket_index(1.0);
        let mut p_nodes: Vec<u32> = (0..max_index).step_by(params.p_stride as usize).collect();
        p_nodes.push(max_index);
        let confidences = confidence_ladder(self.config.confidence);

        // Warm every needed row: one single-flight Monte-Carlo job per k
        // (cache hits when a persisted file or live traffic already
        // filled it).
        for &k in k_grid.iter().chain(k_mids.iter()) {
            self.threshold_at(m, k, 0.0, self.config.confidence)?;
        }

        let mut layers = Vec::with_capacity(confidences.len());
        for &(millis, confidence) in &confidences {
            let mut values = Vec::with_capacity(k_grid.len() * p_nodes.len());
            for &k in &k_grid {
                for &node in &p_nodes {
                    values.push(self.threshold_at(m, k, self.p_bucket_center(node), confidence)?);
                }
            }
            let mut layer = SurfaceLayer {
                m,
                confidence_millis: millis,
                error_bound: f64::INFINITY,
                k_grid: k_grid.clone(),
                p_nodes: p_nodes.clone(),
                values,
            };
            let mut worst = 0.0f64;
            for &k in k_grid.iter().chain(k_mids.iter()) {
                for index in 0..=max_index {
                    let oracle =
                        self.threshold_at(m, k, self.p_bucket_center(index), confidence)?;
                    let interpolated = layer
                        .interpolate(k, index)
                        .expect("measurement point inside the grid span");
                    worst = worst.max((interpolated - oracle).abs());
                }
            }
            // 1.5× headroom over the worst measured point: the error
            // surface is smooth between measurement points (common random
            // numbers along p̂, peak-sampled midpoints along k).
            layer.error_bound = 1.5 * worst;
            layers.push(layer);
        }
        Ok(layers)
    }

    fn p_bucket_index(&self, p: f64) -> u32 {
        (p / self.config.p_bucket).round() as u32
    }

    fn p_bucket_center(&self, index: u32) -> f64 {
        (index as f64 * self.config.p_bucket).clamp(0.0, 1.0)
    }
}

/// One p̂ bucket's binomial model, ready for inverse-cdf thresholding: the
/// cdf table mirrors `Binomial::table_sampler`'s construction (pmf prefix
/// sums with the last entry forced to 1.0), so carving a sorted uniform
/// batch at the cdf steps draws the same distribution the sampler would.
struct BucketModel {
    cdf: Vec<f64>,
    pmf: Vec<f64>,
}

impl BucketModel {
    fn new(m: u32, p: f64) -> Result<Self, StatsError> {
        let model = Binomial::new(m, p)?;
        let pmf = model.pmf_table();
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &w in &pmf {
            acc += w;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(BucketModel { cdf, pmf })
    }
}

/// Quantile estimation that stays meaningful beyond the Monte-Carlo
/// resolution.
///
/// A Bonferroni-corrected multi-test may ask for the 99.96th percentile;
/// with 2000 trials the empirical quantile would simply return the sample
/// maximum. Beyond the highest quantile the sample can resolve (leaving
/// ~10 samples in the tail), we extend with a normal tail anchored at the
/// resolvable quantile: `ε(c) ≈ q_a + (z_c − z_a)·σ`. The distance
/// statistic is a sum of many bounded terms, so its upper tail is
/// approximately Gaussian; the extension is monotone in the confidence
/// and exact at `c = a`.
#[cfg(test)] // production callers go through `tail_quantile_sorted` row fills
fn tail_quantile(samples: &[f64], confidence: f64) -> Result<f64, StatsError> {
    let var = variance(samples);
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    tail_quantile_sorted(&sorted, var, confidence)
}

/// The row-fill fast path of [`tail_quantile`]: callers that take many
/// quantiles of one sample sort once and pass the variance computed in the
/// original draw order, which keeps every value bit-identical to
/// `tail_quantile` on the unsorted samples (summation order matters in
/// floating point).
fn tail_quantile_sorted(sorted: &[f64], var: f64, confidence: f64) -> Result<f64, StatsError> {
    let n = sorted.len();
    if n == 0 {
        return Err(StatsError::EmptyInput { what: "quantile" });
    }
    let achievable = 1.0 - (10.0 / n as f64).min(0.5);
    if confidence <= achievable {
        return Ok(quantile_sorted(sorted, confidence));
    }
    let anchor = quantile_sorted(sorted, achievable);
    let sigma = var.sqrt();
    if sigma == 0.0 {
        return Ok(anchor);
    }
    let z_anchor = crate::ci::standard_normal_quantile(achievable);
    let z_conf = crate::ci::standard_normal_quantile(confidence);
    Ok(anchor + (z_conf - z_anchor) * sigma)
}

/// `(n−1)`-denominator variance, summed in input order (bit-stability
/// across the sorted/unsorted quantile paths depends on that).
fn variance(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    samples
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1).max(1) as f64
}

/// Trials per independent RNG stream. Each chunk of this many trials is
/// seeded by `(job_seed, chunk index)` alone, which is what makes serial
/// and parallel schedules emit the same sample sequence: the partition of
/// chunks over threads can change, the chunks themselves cannot.
const CHUNK_TRIALS: usize = 64;

/// Draws `trials` sorted uniform batches and thresholds each through every
/// bucket model, appending one distance per trial to each bucket's output
/// vector (common random numbers: every bucket sees the same batch).
fn run_crn_trials(
    models: &[BucketModel],
    distance: DistanceKind,
    m: u32,
    k: usize,
    trials: usize,
    seed: u64,
    outs: &mut [Vec<f64>],
) {
    let mut rng = seeded_rng(seed);
    let mut uniforms = vec![0.0f64; k];
    let mut counts = vec![0u64; m as usize + 1];
    let mut hist = Histogram::new(m).expect("support construction cannot fail");
    for _ in 0..trials {
        for u in uniforms.iter_mut() {
            *u = rng.random();
        }
        uniforms.sort_by(|a, b| a.partial_cmp(b).expect("uniform draws are finite"));
        for (bucket, model) in models.iter().enumerate() {
            // Bin counts by cumulative partition: #{u ≤ cdf[c]} is the
            // number of draws the inverse cdf maps into 0..=c, so
            // adjacent differences are the per-value counts — O(m log k)
            // per bucket instead of O(k log m) resampling.
            let mut prev = 0usize;
            for (slot, &bound) in counts.iter_mut().zip(&model.cdf) {
                let cum = uniforms.partition_point(|&u| u <= bound);
                *slot = (cum - prev) as u64;
                prev = cum;
            }
            hist.set_counts(&counts)
                .expect("counts vector matches the support by construction");
            let d = distance
                .distance(&hist, &model.pmf)
                .expect("non-empty histogram with matching support");
            outs[bucket].push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrator(trials: usize) -> ThresholdCalibrator {
        ThresholdCalibrator::new(CalibrationConfig {
            trials,
            ..CalibrationConfig::default()
        })
        .unwrap()
    }

    /// A coarse p̂ bucket (0.05 → 21 buckets) keeps row jobs fast in tests
    /// that don't depend on the default bucket width.
    fn coarse_calibrator(trials: usize) -> ThresholdCalibrator {
        ThresholdCalibrator::new(CalibrationConfig {
            trials,
            p_bucket: 0.05,
            ..CalibrationConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let bad = |cfg: CalibrationConfig| cfg.validate().is_err();
        assert!(bad(CalibrationConfig {
            trials: 1,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            confidence: 1.0,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            p_bucket: 0.0,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            threads: 0,
            ..Default::default()
        }));
        assert!(bad(CalibrationConfig {
            surface: Some(SurfaceParams {
                tolerance: -1.0,
                ..Default::default()
            }),
            ..Default::default()
        }));
        assert!(CalibrationConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_arguments() {
        let cal = calibrator(100);
        assert!(cal.threshold(10, 0, 0.9).is_err());
        assert!(cal.threshold(10, 10, 1.5).is_err());
        assert!(cal.threshold_at(10, 10, 0.9, 0.0).is_err());
    }

    #[test]
    fn threshold_is_deterministic_given_seed() {
        let a = coarse_calibrator(500).with_seed(9).threshold(10, 20, 0.9).unwrap();
        let b = coarse_calibrator(500).with_seed(9).threshold(10, 20, 0.9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threshold_decreases_with_more_windows() {
        let cal = coarse_calibrator(1500);
        let small = cal.threshold(10, 10, 0.9).unwrap();
        let medium = cal.threshold(10, 100, 0.9).unwrap();
        let large = cal.threshold(10, 1000, 0.9).unwrap();
        assert!(
            small > medium && medium > large,
            "ε must shrink with k: {small} {medium} {large}"
        );
    }

    #[test]
    fn threshold_honors_confidence_ordering() {
        let cal = coarse_calibrator(1500);
        let lo = cal.threshold_at(10, 50, 0.9, 0.80).unwrap();
        let hi = cal.threshold_at(10, 50, 0.9, 0.99).unwrap();
        assert!(lo < hi, "higher confidence ⇒ looser threshold: {lo} vs {hi}");
    }

    #[test]
    fn honest_samples_pass_at_roughly_the_nominal_rate() {
        // Draw fresh honest sample-sets and check ~95% fall under ε.
        let cal = coarse_calibrator(3000).with_seed(1);
        let m = 10u32;
        let k = 50usize;
        let p = 0.9;
        let eps = cal.threshold(m, k, p).unwrap();
        let model = Binomial::new(m, p).unwrap();
        let pmf = model.pmf_table();
        let mut rng = seeded_rng(777);
        let reps = 2000;
        let mut passes = 0;
        for _ in 0..reps {
            let hist =
                Histogram::from_samples(m, model.sample_many(&mut rng, k)).unwrap();
            if DistanceKind::L1.distance(&hist, &pmf).unwrap() <= eps {
                passes += 1;
            }
        }
        let rate = passes as f64 / reps as f64;
        assert!(
            (rate - 0.95).abs() < 0.03,
            "honest pass rate {rate} should be near 0.95"
        );
    }

    #[test]
    fn degenerate_p_one_gives_zero_threshold() {
        let cal = coarse_calibrator(200);
        let eps = cal.threshold(10, 30, 1.0).unwrap();
        assert_eq!(eps, 0.0);
    }

    #[test]
    fn one_job_fills_the_whole_p_row() {
        let cal = calibrator(200);
        let _ = cal.threshold(10, 30, 0.9001).unwrap();
        let len_after_first = cal.cache_len();
        // 201 p̂ buckets × the confidence ladder, from one Monte-Carlo job.
        assert!(
            len_after_first >= 201,
            "row fill must cover every bucket: {len_after_first}"
        );
        assert_eq!(cal.stats().oracle_jobs, 1);
        assert_eq!(cal.stats().crn_row_fills, len_after_first as u64);
        let _ = cal.threshold(10, 30, 0.9002).unwrap();
        assert_eq!(cal.cache_len(), len_after_first, "bucketed p̂ must share entries");
        let _ = cal.threshold(10, 30, 0.8).unwrap();
        assert_eq!(
            cal.cache_len(),
            len_after_first,
            "distant p̂ was prefilled by the same row job"
        );
        assert_eq!(cal.cache_stats(), (2, 1), "both follow-ups were cache hits");
    }

    #[test]
    fn row_fill_covers_the_bonferroni_confidence_ladder() {
        let cal = coarse_calibrator(300);
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        let (_, misses_before) = cal.cache_stats();
        // The multi-test's per-test confidence for up to 2^16 tests:
        for tests in [1usize, 2, 5, 16, 100, 4096, 60000] {
            let rounded = tests.next_power_of_two() as f64;
            let confidence = 1.0 - (1.0 - 0.95) / rounded;
            let _ = cal.threshold_at(10, 30, 0.9, confidence).unwrap();
        }
        let (_, misses_after) = cal.cache_stats();
        assert_eq!(
            misses_after, misses_before,
            "every Bonferroni confidence must hit the prefilled ladder"
        );
    }

    #[test]
    fn threshold_is_a_tail_quantile_of_its_distance_samples() {
        let cal = coarse_calibrator(400);
        // 0.9 sits exactly on a 0.05 bucket center.
        let eps = cal.threshold(10, 25, 0.9).unwrap();
        let samples = cal.distance_samples(10, 25, 0.9).unwrap();
        let expected = tail_quantile(&samples, 0.95).unwrap();
        assert_eq!(
            eps.to_bits(),
            expected.to_bits(),
            "row-filled threshold must equal the single-bucket quantile"
        );
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let cal = coarse_calibrator(200);
        assert_eq!(cal.cache_stats(), (0, 0));
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        assert_eq!(cal.cache_stats(), (0, 1), "first lookup calibrates");
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        let _ = cal.threshold(10, 30, 0.9001).unwrap();
        assert_eq!(cal.cache_stats(), (2, 1), "same bucket hits");
    }

    #[test]
    fn single_flight_runs_one_job_per_row() {
        let cal = std::sync::Arc::new(calibrator(400));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cal = std::sync::Arc::clone(&cal);
                scope.spawn(move || cal.threshold(10, 40, 0.9).unwrap());
            }
        });
        let stats = cal.stats();
        assert_eq!(stats.oracle_jobs, 1, "concurrent misses share one job");
        assert_eq!(stats.hits + stats.misses, 8, "every request was answered");
        // The reference value is what a lone calibrator computes.
        let reference = calibrator(400).threshold(10, 40, 0.9).unwrap();
        assert_eq!(cal.threshold(10, 40, 0.9).unwrap().to_bits(), reference.to_bits());
    }

    #[test]
    fn provenance_tracks_the_serving_tier() {
        let cal = ThresholdCalibrator::new(CalibrationConfig {
            trials: 200,
            p_bucket: 0.05,
            large_k_cutoff: 64,
            surface: Some(SurfaceParams {
                tolerance: 10.0, // generous: provenance, not accuracy, under test
                p_stride: 4,
                k_min: 8,
            }),
            ..CalibrationConfig::default()
        })
        .unwrap();
        let (_, cold) = cal.threshold_with_provenance(10, 30, 0.9, 0.95).unwrap();
        assert_eq!(cold, ThresholdProvenance::MonteCarlo);
        let (_, warm) = cal.threshold_with_provenance(10, 30, 0.9, 0.95).unwrap();
        assert_eq!(warm, ThresholdProvenance::Cache);
        assert!(cal.ensure_surface_for(10).unwrap());
        let (_, surfed) = cal.threshold_with_provenance(10, 30, 0.9, 0.95).unwrap();
        assert_eq!(surfed, ThresholdProvenance::Surface);
        assert!(cal.stats().surface_hits >= 1);
        // Beyond the cutoff the extrapolation inherits its anchor's tier.
        let (_, far) = cal.threshold_with_provenance(10, 1000, 0.9, 0.95).unwrap();
        assert_eq!(far, ThresholdProvenance::Surface);
    }

    #[test]
    fn ensure_surface_is_idempotent_and_off_by_default() {
        let cal = coarse_calibrator(200);
        assert!(!cal.ensure_surface_for(10).unwrap(), "no surface configured");
        assert!(cal.surface().is_none());

        let cal = ThresholdCalibrator::new(CalibrationConfig {
            trials: 200,
            p_bucket: 0.05,
            large_k_cutoff: 32,
            surface: Some(SurfaceParams {
                tolerance: 10.0,
                ..Default::default()
            }),
            ..CalibrationConfig::default()
        })
        .unwrap();
        assert!(cal.ensure_surface_for(10).unwrap());
        let jobs_after_build = cal.stats().oracle_jobs;
        assert!(cal.ensure_surface_for(10).unwrap(), "second call is a no-op");
        assert_eq!(cal.stats().oracle_jobs, jobs_after_build);
        // A second m accumulates layers without dropping the first.
        assert!(cal.ensure_surface_for(6).unwrap());
        let surface = cal.surface().unwrap();
        assert!(surface.covers(10) && surface.covers(6));
    }

    #[test]
    fn large_k_extrapolation_follows_sqrt_law() {
        let cal = ThresholdCalibrator::new(CalibrationConfig {
            trials: 800,
            p_bucket: 0.05,
            large_k_cutoff: 256,
            ..Default::default()
        })
        .unwrap();
        let base = cal.threshold(10, 256, 0.9).unwrap();
        let far = cal.threshold(10, 1024, 0.9).unwrap();
        assert!((far - base / 2.0).abs() < 1e-12, "√(256/1024)=1/2 scaling");
    }

    #[test]
    fn parallel_matches_serial_distribution() {
        // Chunked RNG streams make the thread count irrelevant to the
        // output: every thread layout must produce the *bit-identical*
        // threshold, not merely a statistically close one.
        let serial = ThresholdCalibrator::new(CalibrationConfig {
            trials: 4000,
            threads: 1,
            p_bucket: 0.05,
            ..Default::default()
        })
        .unwrap()
        .with_seed(3);
        let reference = serial.threshold(10, 64, 0.9).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = ThresholdCalibrator::new(CalibrationConfig {
                trials: 4000,
                threads,
                p_bucket: 0.05,
                ..Default::default()
            })
            .unwrap()
            .with_seed(3);
            let got = parallel.threshold(10, 64, 0.9).unwrap();
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "threads={threads}: {got} vs serial {reference}"
            );
        }
    }

    #[test]
    fn parallel_samples_are_bit_identical_to_serial() {
        // The raw sample *sequence* — not just its quantile — must be
        // independent of the thread count and of the serial cutoff.
        let base = CalibrationConfig {
            trials: 1000,
            serial_cutoff: 0, // force the parallel dispatch path
            ..Default::default()
        };
        let serial = ThresholdCalibrator::new(CalibrationConfig {
            threads: 1,
            ..base
        })
        .unwrap()
        .with_seed(11);
        let reference = serial.distance_samples(10, 80, 0.9).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = ThresholdCalibrator::new(CalibrationConfig {
                threads,
                ..base
            })
            .unwrap()
            .with_seed(11);
            let got = parallel.distance_samples(10, 80, 0.9).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
        // A high serial cutoff routes the same job serially; output is
        // unchanged because the chunk sequence is.
        let cutoff = ThresholdCalibrator::new(CalibrationConfig {
            threads: 8,
            serial_cutoff: usize::MAX,
            ..base
        })
        .unwrap()
        .with_seed(11);
        assert_eq!(cutoff.distance_samples(10, 80, 0.9).unwrap(), reference);
    }

    #[test]
    fn export_preload_round_trip_is_bit_exact() {
        let cal = coarse_calibrator(300).with_seed(5);
        let a = cal.threshold(10, 30, 0.9).unwrap();
        let b = cal.threshold(12, 50, 0.85).unwrap();
        let exported = cal.export_cache();
        assert_eq!(exported.len(), cal.cache_len(), "export covers the row fills");

        let warm = coarse_calibrator(300).with_seed(5);
        assert_eq!(warm.preload_cache(exported.clone()), exported.len());
        assert_eq!(warm.cache_len(), exported.len());
        // Preloaded thresholds answer without a Monte-Carlo run and are
        // bit-identical to the originals.
        assert_eq!(warm.threshold(10, 30, 0.9).unwrap().to_bits(), a.to_bits());
        assert_eq!(warm.threshold(12, 50, 0.85).unwrap().to_bits(), b.to_bits());
        assert_eq!(warm.cache_stats(), (2, 0), "warm lookups never calibrate");

        // Export order is deterministic (sorted by key).
        let again = warm.export_cache();
        assert_eq!(again, exported);
    }

    #[test]
    fn preload_rejects_garbage_and_keeps_live_entries() {
        let cal = coarse_calibrator(300);
        let live = cal.threshold(10, 30, 0.9).unwrap();
        let exported = cal.export_cache();
        let mut tampered = exported[0];
        tampered.epsilon = f64::NAN;
        assert_eq!(cal.preload_cache(vec![tampered]), 0, "NaN rejected");
        let mut stale = exported[0];
        stale.epsilon = live + 1.0;
        assert_eq!(cal.preload_cache(vec![stale]), 0, "live entry wins");
        assert_eq!(cal.threshold(10, 30, 0.9).unwrap().to_bits(), live.to_bits());
    }

    #[test]
    fn fingerprint_tracks_threshold_determining_knobs_only() {
        let base = CalibrationConfig::default();
        let fp = |cfg: CalibrationConfig, seed: u64| {
            ThresholdCalibrator::new(cfg).unwrap().with_seed(seed).fingerprint()
        };
        let reference = fp(base, 1);
        assert_eq!(fp(base, 1), reference, "fingerprint is stable");
        assert_ne!(fp(base, 2), reference, "seed changes thresholds");
        assert_ne!(
            fp(CalibrationConfig { trials: 4000, ..base }, 1),
            reference
        );
        assert_ne!(
            fp(CalibrationConfig { confidence: 0.99, ..base }, 1),
            reference
        );
        // Pure performance knobs never invalidate a persisted cache —
        // and neither does the error-gated surface view.
        assert_eq!(
            fp(CalibrationConfig { threads: 8, serial_cutoff: 0, ..base }, 1),
            reference
        );
        assert_eq!(
            fp(
                CalibrationConfig {
                    surface: Some(SurfaceParams::default()),
                    ..base
                },
                1
            ),
            reference
        );
    }

    #[test]
    fn distance_samples_have_requested_count() {
        let cal = calibrator(123);
        let s = cal.distance_samples(10, 5, 0.9).unwrap();
        assert_eq!(s.len(), 123);
        assert!(s.iter().all(|d| (0.0..=2.0).contains(d)));
    }

    #[test]
    fn extreme_confidence_uses_tail_extension_monotonically() {
        let cal = coarse_calibrator(1000);
        let base = cal.threshold_at(10, 40, 0.9, 0.95).unwrap();
        let high = cal.threshold_at(10, 40, 0.9, 0.999).unwrap();
        let higher = cal.threshold_at(10, 40, 0.9, 0.99995).unwrap();
        assert!(base < high, "{base} < {high}");
        assert!(high < higher, "{high} < {higher}");
        assert!(higher.is_finite() && higher < 2.0, "tail stays sane: {higher}");
    }

    #[test]
    fn tail_extension_is_continuous_at_the_anchor() {
        // Just below and just above the resolvable quantile must agree
        // closely (the extension is exact at the anchor).
        let cal = coarse_calibrator(2000);
        let achievable = 1.0 - 10.0 / 2000.0; // 0.995
        let below = cal.threshold_at(10, 40, 0.9, achievable - 1e-6).unwrap();
        let above = cal.threshold_at(10, 40, 0.9, achievable + 1e-6).unwrap();
        assert!((below - above).abs() < 0.05, "{below} vs {above}");
    }

    #[test]
    fn calibration_time_is_attributed_to_the_calling_thread() {
        let cal = coarse_calibrator(300);
        let before = thread_calibration_nanos();
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        let after_miss = thread_calibration_nanos();
        assert!(after_miss > before, "a miss accrues calibration time");
        let _ = cal.threshold(10, 30, 0.9).unwrap();
        assert_eq!(
            thread_calibration_nanos(),
            after_miss,
            "cache hits accrue nothing"
        );
    }

    #[test]
    fn surface_error_stays_within_the_measured_bound() {
        // Build a small surface and sweep off-grid queries against the
        // oracle: every served value must sit inside the layer's bound.
        let cal = ThresholdCalibrator::new(CalibrationConfig {
            trials: 400,
            p_bucket: 0.05,
            large_k_cutoff: 128,
            surface: Some(SurfaceParams {
                tolerance: 10.0, // serve everything; we check the bound itself
                p_stride: 3,
                k_min: 8,
            }),
            ..CalibrationConfig::default()
        })
        .unwrap();
        cal.ensure_surface_for(10).unwrap();
        let surface = cal.surface().unwrap();
        let oracle = coarse_calibrator(400); // same seed, no surface
        let mut checked = 0;
        for k in [9usize, 13, 27, 40, 77, 100] {
            for index in 0..=20u32 {
                let p = (index as f64 * 0.05).clamp(0.0, 1.0);
                let Some(served) = surface.lookup(10, k, index, 95_000) else {
                    continue;
                };
                let truth = oracle.threshold(10, k, p).unwrap();
                let bound = surface.max_error_bound(10).unwrap();
                assert!(
                    (served - truth).abs() <= bound,
                    "k={k} index={index}: |{served} - {truth}| > {bound}"
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "sweep must actually exercise the surface");
    }
}
