//! Error types for `hp-stats`.

use std::fmt;

/// Errors raised by statistical constructors and operations.
///
/// All constructors in this crate validate their arguments
/// (probabilities in `[0,1]`, non-empty supports, …) and report violations
/// through this type rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A required count or size parameter was zero or otherwise unusable.
    InvalidCount {
        /// Human-readable description of the parameter.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A sample fell outside the declared support of a distribution.
    OutOfSupport {
        /// The offending value.
        value: u64,
        /// The maximum allowed value.
        max: u64,
    },
    /// A probability vector did not sum to 1 (within tolerance).
    UnnormalizedProbabilities {
        /// The actual sum of the vector.
        sum: f64,
    },
    /// An empty input was given where at least one element is required.
    EmptyInput {
        /// Human-readable description of the input.
        what: &'static str,
    },
    /// A quantile/confidence level was outside `(0, 1)`.
    InvalidLevel {
        /// The offending value.
        value: f64,
    },
    /// A query reached past the retained full-resolution suffix of a
    /// tiered (horizon-compacted) history. The folded prefix keeps only
    /// exact summary counts, so the query cannot be answered at full
    /// resolution — the caller must shorten the query to the retained
    /// suffix or re-materialize the history. Never a silently wrong
    /// count.
    HorizonExceeded {
        /// Position (transaction index) the query wanted to start at.
        start: usize,
        /// First position still held at full resolution.
        retained_start: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { value } => {
                write!(f, "probability must lie in [0, 1], got {value}")
            }
            StatsError::InvalidCount { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            StatsError::OutOfSupport { value, max } => {
                write!(f, "value {value} outside support [0, {max}]")
            }
            StatsError::UnnormalizedProbabilities { sum } => {
                write!(f, "probability vector sums to {sum}, expected 1")
            }
            StatsError::EmptyInput { what } => {
                write!(f, "empty input: {what} requires at least one element")
            }
            StatsError::InvalidLevel { value } => {
                write!(f, "level must lie strictly inside (0, 1), got {value}")
            }
            StatsError::HorizonExceeded {
                start,
                retained_start,
            } => {
                write!(
                    f,
                    "query starts at {start}, before the retained suffix at \
                     {retained_start}: the prefix was folded past the assessment horizon"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(StatsError, &str)> = vec![
            (StatsError::InvalidProbability { value: 1.5 }, "1.5"),
            (
                StatsError::InvalidCount {
                    what: "window size",
                    value: 0,
                },
                "window size",
            ),
            (StatsError::OutOfSupport { value: 11, max: 10 }, "11"),
            (
                StatsError::UnnormalizedProbabilities { sum: 0.8 },
                "0.8",
            ),
            (StatsError::EmptyInput { what: "samples" }, "samples"),
            (StatsError::InvalidLevel { value: 0.0 }, "0"),
            (
                StatsError::HorizonExceeded {
                    start: 3,
                    retained_start: 64,
                },
                "retained suffix at 64",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
