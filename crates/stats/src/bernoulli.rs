//! The Bernoulli distribution — one transaction of an honest player.
//!
//! The paper's core assumption (§3.1) is that each transaction of an honest
//! player is an independent Bernoulli trial whose success probability is the
//! server's trustworthiness.

use crate::error::StatsError;
use rand::{Rng, RngExt};

/// A Bernoulli distribution with success probability `p`.
///
/// # Examples
///
/// ```
/// use hp_stats::Bernoulli;
/// use rand::SeedableRng;
///
/// let honest = Bernoulli::new(0.95)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcomes: Vec<bool> = (0..1000).map(|_| honest.sample(&mut rng)).collect();
/// let good = outcomes.iter().filter(|&&g| g).count();
/// assert!(good > 900);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability { value: p });
        }
        Ok(Bernoulli { p })
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean (= `p`).
    pub fn mean(&self) -> f64 {
        self.p
    }

    /// Variance `p(1-p)`.
    pub fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p == 1.0 {
            return true;
        }
        if self.p == 0.0 {
            return false;
        }
        rng.random::<f64>() < self.p
    }

    /// Draws `count` trials and returns the number of successes.
    ///
    /// Equivalent to a single draw of `Binomial::new(count, p)` but kept
    /// here for workloads that also need the individual outcomes.
    pub fn count_successes<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> usize {
        (0..count).filter(|_| self.sample(rng)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_p() {
        assert!(Bernoulli::new(-0.5).is_err());
        assert!(Bernoulli::new(2.0).is_err());
        assert!(Bernoulli::new(f64::INFINITY).is_err());
    }

    #[test]
    fn degenerate_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let always = Bernoulli::new(1.0).unwrap();
        let never = Bernoulli::new(0.0).unwrap();
        for _ in 0..100 {
            assert!(always.sample(&mut rng));
            assert!(!never.sample(&mut rng));
        }
    }

    #[test]
    fn moments() {
        let b = Bernoulli::new(0.3).unwrap();
        assert!((b.mean() - 0.3).abs() < 1e-15);
        assert!((b.variance() - 0.21).abs() < 1e-15);
    }

    #[test]
    fn empirical_rate_close_to_p() {
        let b = Bernoulli::new(0.95).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 50_000;
        let successes = b.count_successes(&mut rng, n);
        let rate = successes as f64 / n as f64;
        assert!((rate - 0.95).abs() < 0.01, "rate {rate}");
    }
}
