//! The binomial distribution `B(n, p)` — the honest-player model.
//!
//! The paper models the number of good transactions inside a transaction
//! window of size `m` as `B(m, p)` where `p` is the server's (unknown, later
//! estimated) trustworthiness. This module provides exact log-space pmf/cdf
//! evaluation, quantiles, and sampling.

use crate::error::StatsError;
use crate::special::ln_choose;
use rand::{Rng, RngExt};

/// A binomial distribution `B(n, p)`.
///
/// # Examples
///
/// ```
/// use hp_stats::Binomial;
///
/// let b = Binomial::new(10, 0.9)?;
/// assert!((b.mean() - 9.0).abs() < 1e-12);
/// assert!((b.pmf(10) - 0.9f64.powi(10)).abs() < 1e-12);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `p ∈ [0, 1]` and is
    /// finite. `n = 0` is allowed (the distribution is then a point mass at
    /// zero), matching the degenerate windows that can arise from very short
    /// transaction histories.
    pub fn new(n: u32, p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability { value: p });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the probability mass at `k`.
    ///
    /// Returns `f64::NEG_INFINITY` for `k > n` and for values made
    /// impossible by a degenerate `p` (e.g. `k < n` with `p = 1`).
    pub fn ln_pmf(&self, k: u32) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Handle the degenerate endpoints exactly: 0.ln() would otherwise
        // produce NaN via 0 * ln 0.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n as u64, k as u64)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (-self.p).ln_1p()
    }

    /// Probability mass at `k`, `P(X = k)`.
    pub fn pmf(&self, k: u32) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution `P(X ≤ k)`.
    ///
    /// Exact summation; cost O(min(k, n)+1). Window sizes in reputation
    /// testing are small, so summation beats continued-fraction incomplete
    /// beta evaluation in both simplicity and (here) speed.
    pub fn cdf(&self, k: u32) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mut acc = 0.0;
        for j in 0..=k {
            acc += self.pmf(j);
        }
        acc.min(1.0)
    }

    /// Survival function `P(X > k)`.
    pub fn sf(&self, k: u32) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        // Sum the smaller tail for accuracy.
        if (k as f64) < self.mean() {
            1.0 - self.cdf(k)
        } else {
            let mut acc = 0.0;
            for j in (k + 1)..=self.n {
                acc += self.pmf(j);
            }
            acc.min(1.0)
        }
    }

    /// Smallest `k` such that `P(X ≤ k) ≥ q`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidLevel`] unless `q ∈ (0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<u32, StatsError> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(StatsError::InvalidLevel { value: q });
        }
        let mut acc = 0.0;
        for k in 0..=self.n {
            acc += self.pmf(k);
            if acc >= q - 1e-12 {
                return Ok(k);
            }
        }
        Ok(self.n)
    }

    /// The full pmf table `[P(X=0), …, P(X=n)]`.
    ///
    /// This is the reference distribution the behavior tests compare
    /// empirical window-count histograms against.
    pub fn pmf_table(&self) -> Vec<f64> {
        (0..=self.n).map(|k| self.pmf(k)).collect()
    }

    /// Draws one sample.
    ///
    /// Uses inverse-transform for small `n` and a sum of Bernoulli draws
    /// otherwise; both are exact. Calibration draws millions of samples with
    /// `n ≈ 10`, where inversion from the cached table is fastest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            // Inverse transform on the fly (n is tiny in our workloads).
            let u: f64 = rng.random();
            let mut acc = 0.0;
            for k in 0..self.n {
                acc += self.pmf(k);
                if u < acc {
                    return k;
                }
            }
            self.n
        } else {
            let mut count = 0;
            for _ in 0..self.n {
                if rng.random::<f64>() < self.p {
                    count += 1;
                }
            }
            count
        }
    }

    /// Draws `count` samples into a fresh vector.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u32> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// A sampler that amortizes the pmf table across many draws.
    ///
    /// Roughly an order of magnitude faster than [`Binomial::sample`] in the
    /// calibration hot loop.
    pub fn table_sampler(&self) -> TableSampler {
        let mut cdf = Vec::with_capacity(self.n as usize + 1);
        let mut acc = 0.0;
        for k in 0..=self.n {
            acc += self.pmf(k);
            cdf.push(acc);
        }
        // Guard against floating point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        TableSampler { cdf }
    }
}

/// Amortized inverse-transform sampler built by [`Binomial::table_sampler`].
#[derive(Debug, Clone)]
pub struct TableSampler {
    cdf: Vec<f64>,
}

impl TableSampler {
    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        // Binary search for the first cdf entry ≥ u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf entries are finite"))
        {
            Ok(idx) | Err(idx) => idx.min(self.cdf.len() - 1) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(0u32, 0.5), (1, 0.3), (10, 0.9), (10, 0.0), (10, 1.0), (100, 0.95)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = b.pmf_table().iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "B({n},{p}) sums to {total}");
        }
    }

    #[test]
    fn pmf_matches_hand_computed_values() {
        let b = Binomial::new(10, 0.9).unwrap();
        // P(X=10) = 0.9^10
        assert!((b.pmf(10) - 0.9f64.powi(10)).abs() < 1e-12);
        // P(X=9) = 10 * 0.9^9 * 0.1
        assert!((b.pmf(9) - 10.0 * 0.9f64.powi(9) * 0.1).abs() < 1e-12);
        // P(X=0) = 0.1^10
        assert!((b.pmf(0) - 0.1f64.powi(10)).abs() < 1e-20);
    }

    #[test]
    fn degenerate_p_zero_and_one() {
        let b0 = Binomial::new(10, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        assert_eq!(b0.sample(&mut rng(1)), 0);

        let b1 = Binomial::new(10, 1.0).unwrap();
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.pmf(9), 0.0);
        assert_eq!(b1.sample(&mut rng(1)), 10);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let b = Binomial::new(20, 0.7).unwrap();
        let mut prev = 0.0;
        for k in 0..=20 {
            let c = b.cdf(k);
            assert!(c >= prev - 1e-12, "cdf must be monotone");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((b.cdf(20) - 1.0).abs() < 1e-12);
        assert!((b.cdf(25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sf_complements_cdf() {
        let b = Binomial::new(15, 0.4).unwrap();
        for k in 0..=15 {
            assert!((b.cdf(k) + b.sf(k) - 1.0).abs() < 1e-10, "k={k}");
        }
        assert_eq!(b.sf(15), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let b = Binomial::new(10, 0.9).unwrap();
        for q in [0.01, 0.05, 0.5, 0.95, 0.99, 1.0] {
            let k = b.quantile(q).unwrap();
            assert!(b.cdf(k) >= q - 1e-9, "q={q} k={k}");
            if k > 0 {
                assert!(b.cdf(k - 1) < q + 1e-9, "q={q} k={k} not minimal");
            }
        }
        assert!(b.quantile(0.0).is_err());
        assert!(b.quantile(1.5).is_err());
    }

    #[test]
    fn sample_mean_close_to_np() {
        let b = Binomial::new(10, 0.9).unwrap();
        let mut r = rng(42);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| b.sample(&mut r) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 9.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn large_n_sampling_path() {
        let b = Binomial::new(200, 0.25).unwrap();
        let mut r = rng(7);
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| b.sample(&mut r) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "sample mean {mean}");
    }

    #[test]
    fn table_sampler_matches_distribution() {
        let b = Binomial::new(10, 0.8).unwrap();
        let sampler = b.table_sampler();
        let mut r = rng(11);
        let n = 50_000usize;
        let mut counts = [0u64; 11];
        for _ in 0..n {
            counts[sampler.sample(&mut r) as usize] += 1;
        }
        for k in 0..=10u32 {
            let emp = counts[k as usize] as f64 / n as f64;
            let exp = b.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01,
                "k={k}: empirical {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn zero_trials_point_mass() {
        let b = Binomial::new(0, 0.5).unwrap();
        assert_eq!(b.pmf(0), 1.0);
        assert_eq!(b.sample(&mut rng(3)), 0);
        assert_eq!(b.pmf_table(), vec![1.0]);
    }
}
