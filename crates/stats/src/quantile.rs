//! Quantiles of finite samples.
//!
//! Threshold calibration takes the 95th percentile of a Monte-Carlo sample
//! of distribution distances (§3.2: "ε is selected such that 95% of the
//! distances of the generated sample sets are smaller than ε").

use crate::error::StatsError;

/// Returns the `q`-quantile of `samples` using linear interpolation between
/// order statistics (type-7, the R/NumPy default).
///
/// The input does not need to be sorted; a sorted copy is made internally.
///
/// # Errors
///
/// * [`StatsError::EmptyInput`] if `samples` is empty.
/// * [`StatsError::InvalidLevel`] unless `q ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// let median = hp_stats::quantile(&[3.0, 1.0, 2.0], 0.5)?;
/// assert!((median - 2.0).abs() < 1e-12);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput { what: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(StatsError::InvalidLevel { value: q });
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    Ok(quantile_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending.
///
/// Useful when many quantiles are taken from one sample (e.g. reporting a
/// whole threshold curve from one calibration run).
///
/// # Panics
///
/// Panics (in debug builds) if the slice is empty; callers are expected to
/// have validated through [`quantile`]'s error path first.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let xs = [5.0, -1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), -1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert!((quantile(&[1.0, 2.0, 3.0], 0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.quantile([1,2,3,4], 0.95) = 3.85
        let q = quantile(&[1.0, 2.0, 3.0, 4.0], 0.95).unwrap();
        assert!((q - 3.85).abs() < 1e-12, "got {q}");
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
    }

    #[test]
    fn unsorted_input_handled() {
        let q = quantile(&[9.0, 1.0, 5.0, 3.0, 7.0], 0.5).unwrap();
        assert!((q - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let xs: Vec<f64> = (0..57).map(|i| ((i * 31) % 57) as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = quantile(&xs, q).unwrap();
            assert!(v >= prev - 1e-12, "q={q}");
            prev = v;
        }
    }
}
