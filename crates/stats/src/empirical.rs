//! Empirical histograms over a bounded integer support `0..=max`.
//!
//! The behavior tests turn a transaction history into window counts
//! `G_1, …, G_k ∈ {0, …, m}` and compare their empirical distribution to a
//! binomial pmf. [`Histogram`] is that empirical distribution, with O(1)
//! incremental insertion/removal so the multi-test can slide over suffixes
//! in linear total time.

use crate::error::StatsError;

/// An empirical distribution of integer samples in `0..=max`.
///
/// Supports O(1) incremental updates, which the optimized multi-test relies
/// on: removing the windows of the oldest `k` transactions and re-testing is
/// O(k/m) instead of O(n/m).
///
/// # Examples
///
/// ```
/// use hp_stats::Histogram;
///
/// let mut h = Histogram::new(10)?;
/// h.add(9)?;
/// h.add(10)?;
/// h.add(9)?;
/// assert_eq!(h.len(), 3);
/// assert!((h.pmf(9) - 2.0 / 3.0).abs() < 1e-12);
/// h.remove(10)?;
/// assert!((h.pmf(9) - 1.0).abs() < 1e-12);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over the support `0..=max`.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` return keeps the door open for
    /// support-size limits and mirrors the other constructors in this crate.
    pub fn new(max: u32) -> Result<Self, StatsError> {
        Ok(Histogram {
            counts: vec![0; max as usize + 1],
            total: 0,
        })
    }

    /// Builds a histogram from an iterator of samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if any sample exceeds `max`.
    pub fn from_samples<I>(max: u32, samples: I) -> Result<Self, StatsError>
    where
        I: IntoIterator<Item = u32>,
    {
        let mut h = Histogram::new(max)?;
        for s in samples {
            h.add(s)?;
        }
        Ok(h)
    }

    /// Upper end of the support (inclusive).
    pub fn max_value(&self) -> u32 {
        self.counts.len() as u32 - 1
    }

    /// Number of samples currently recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Raw count of samples equal to `value` (0 if out of support).
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Raw counts for the whole support.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical probability mass at `value`.
    ///
    /// Returns 0 for an empty histogram.
    pub fn pmf(&self, value: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(value) as f64 / self.total as f64
    }

    /// The full empirical pmf as a vector aligned with the support.
    pub fn pmf_table(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let t = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Records one sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if `value > max`.
    pub fn add(&mut self, value: u32) -> Result<(), StatsError> {
        let max = self.max_value() as u64;
        let slot = self
            .counts
            .get_mut(value as usize)
            .ok_or(StatsError::OutOfSupport {
                value: value as u64,
                max,
            })?;
        *slot += 1;
        self.total += 1;
        Ok(())
    }

    /// Removes one previously recorded sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if `value > max` or if no sample
    /// with this value is currently recorded (removal must mirror a prior
    /// [`Histogram::add`]).
    pub fn remove(&mut self, value: u32) -> Result<(), StatsError> {
        let max = self.max_value() as u64;
        let slot = self
            .counts
            .get_mut(value as usize)
            .ok_or(StatsError::OutOfSupport {
                value: value as u64,
                max,
            })?;
        if *slot == 0 {
            return Err(StatsError::OutOfSupport {
                value: value as u64,
                max,
            });
        }
        *slot -= 1;
        self.total -= 1;
        Ok(())
    }

    /// Empirical mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        weighted / self.total as f64
    }

    /// Empirical variance (population form; 0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| {
                let d = v as f64 - mean;
                d * d * c as f64
            })
            .sum();
        ss / self.total as f64
    }

    /// Builds a histogram directly from per-value counts (index = value).
    ///
    /// The common-random-numbers calibration path computes bin counts by
    /// partitioning one sorted uniform batch through a cdf table; this
    /// constructor turns those counts into a histogram without replaying
    /// individual samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty counts vector (a
    /// histogram always has a support).
    pub fn from_counts(counts: Vec<u64>) -> Result<Self, StatsError> {
        if counts.is_empty() {
            return Err(StatsError::EmptyInput { what: "histogram counts" });
        }
        let total = counts.iter().sum();
        Ok(Histogram { counts, total })
    }

    /// Replaces the recorded counts wholesale, keeping the support.
    ///
    /// O(support) and allocation-free — the hot-loop counterpart of
    /// [`Histogram::from_counts`] for callers that reuse one histogram
    /// across many trials.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if `counts` does not match the
    /// support length exactly.
    pub fn set_counts(&mut self, counts: &[u64]) -> Result<(), StatsError> {
        if counts.len() != self.counts.len() {
            return Err(StatsError::OutOfSupport {
                value: counts.len() as u64,
                max: self.max_value() as u64,
            });
        }
        self.counts.copy_from_slice(counts);
        self.total = counts.iter().sum();
        Ok(())
    }

    /// Merges another histogram over the same support into this one.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] if supports differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), StatsError> {
        if other.counts.len() != self.counts.len() {
            return Err(StatsError::OutOfSupport {
                value: other.max_value() as u64,
                max: self.max_value() as u64,
            });
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

impl Extend<u32> for Histogram {
    /// Extends the histogram; samples outside the support are ignored
    /// silently (use [`Histogram::add`] when strictness matters).
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            let _ = self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut h = Histogram::new(10).unwrap();
        for v in [0u32, 5, 10, 5, 5] {
            h.add(v).unwrap();
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.count(5), 3);
        h.remove(5).unwrap();
        assert_eq!(h.count(5), 2);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn remove_unrecorded_value_fails() {
        let mut h = Histogram::new(10).unwrap();
        h.add(3).unwrap();
        assert!(h.remove(4).is_err());
        assert!(h.remove(11).is_err());
        assert_eq!(h.len(), 1, "failed removal must not change state");
    }

    #[test]
    fn add_out_of_support_fails() {
        let mut h = Histogram::new(10).unwrap();
        assert!(matches!(
            h.add(11),
            Err(StatsError::OutOfSupport { value: 11, max: 10 })
        ));
        assert!(h.is_empty());
    }

    #[test]
    fn pmf_normalizes() {
        let h = Histogram::from_samples(3, [0u32, 1, 1, 2, 2, 2, 3, 3]).unwrap();
        let table = h.pmf_table();
        let sum: f64 = table.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.pmf(2) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_pmf_is_zero() {
        let h = Histogram::new(5).unwrap();
        assert_eq!(h.pmf(0), 0.0);
        assert_eq!(h.pmf_table(), vec![0.0; 6]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.variance(), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        let h = Histogram::from_samples(4, [2u32, 4, 4, 2]).unwrap();
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert!((h.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::from_samples(3, [1u32, 2]).unwrap();
        let b = Histogram::from_samples(3, [2u32, 3]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.count(2), 2);
        let mismatched = Histogram::new(5).unwrap();
        assert!(a.merge(&mismatched).is_err());
    }

    #[test]
    fn extend_ignores_out_of_support() {
        let mut h = Histogram::new(2).unwrap();
        h.extend([0u32, 1, 2, 3, 99]);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn from_counts_and_set_counts_match_sampled_construction() {
        let sampled = Histogram::from_samples(3, [0u32, 1, 1, 2, 2, 2, 3, 3]).unwrap();
        let built = Histogram::from_counts(vec![1, 2, 3, 2]).unwrap();
        assert_eq!(built, sampled);
        let mut reused = Histogram::new(3).unwrap();
        reused.add(0).unwrap();
        reused.set_counts(&[1, 2, 3, 2]).unwrap();
        assert_eq!(reused, sampled);
        assert_eq!(reused.len(), 8);
        assert!(Histogram::from_counts(vec![]).is_err());
        assert!(reused.set_counts(&[1, 2]).is_err());
    }

    #[test]
    fn incremental_matches_batch() {
        // Sliding a window over samples via add/remove must equal rebuilding.
        let samples: Vec<u32> = (0..100u32).map(|i| (i * 7) % 11).collect();
        let window = 30usize;
        let mut sliding = Histogram::from_samples(10, samples[..window].iter().copied()).unwrap();
        for start in 1..(samples.len() - window) {
            sliding.remove(samples[start - 1]).unwrap();
            sliding.add(samples[start + window - 1]).unwrap();
            let batch =
                Histogram::from_samples(10, samples[start..start + window].iter().copied())
                    .unwrap();
            assert_eq!(sliding, batch, "window starting at {start}");
        }
    }
}
