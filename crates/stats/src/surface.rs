//! Interpolated threshold surfaces over `(m, k, p̂)`.
//!
//! The Monte-Carlo oracle in [`calibration`](crate::calibration) answers
//! one quantized key at a time; a [`ThresholdSurface`] answers *any* key
//! inside its span from a small precomputed grid:
//!
//! * **p̂ axis** — thresholds vary smoothly in the bucket center (under
//!   common random numbers the same uniform batch is thresholded through
//!   every bucket's cdf, so the curve has no sampling jitter between
//!   buckets); nodes every [`SurfaceParams::p_stride`] buckets are joined
//!   by monotone (overshoot-free) linear interpolation.
//! * **k axis** — the L¹ statistic scales as `Θ(1/√k)`, so the surface
//!   stores a geometric k-grid and interpolates `y(k) = ε·√k` linearly in
//!   `ln k`, where `y` is slowly varying by construction.
//! * **confidence axis** — never interpolated: a layer exists per exact
//!   quantized confidence (the multi-test's Bonferroni ladder is finite),
//!   and an unknown confidence falls back to the oracle.
//!
//! Every layer carries a conservative **error bound**: 1.5× the worst
//! observed |surface − oracle| over every p̂ bucket at every grid `k` and
//! at every geometric midpoint between adjacent grid `k`s (where the
//! `ln k` interpolation error peaks). A layer whose bound exceeds
//! [`SurfaceParams::tolerance`] refuses to serve, so a caller that gets
//! `Some(ε)` from [`ThresholdSurface::lookup`] holds a threshold within
//! tolerance of what the Monte-Carlo oracle would have said.
//!
//! Surfaces are built (and the bound measured) by
//! [`ThresholdCalibrator::ensure_surface_for`](crate::ThresholdCalibrator::ensure_surface_for);
//! this module owns the data model, interpolation, and validation so a
//! persisted surface can be re-attached without re-running the oracle.

use crate::error::StatsError;

/// Knobs for building and serving a [`ThresholdSurface`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceParams {
    /// Maximum tolerated |surface − oracle| threshold error. A layer
    /// whose measured error bound exceeds this never serves (lookups
    /// fall back to the Monte-Carlo oracle). Default 0.08: between
    /// geometric grid rows the comparison oracle itself carries
    /// Monte-Carlo quantile noise of ~0.045 at the deep end of the
    /// confidence ladder (flat in grid density — refining the grid does
    /// not reduce it), so the default sits just above that floor times
    /// the 1.5× measurement headroom. Verdict compatibility is enforced
    /// separately by the equivalence suite and the calibration bench's
    /// zero-flip gate.
    pub tolerance: f64,
    /// Grid-node spacing along the p̂ axis, in cache-bucket indices.
    /// Default 1 — every bucket is a node. This is free: a
    /// common-random-number row job computes *every* bucket of a `(m, k)`
    /// row anyway, so denser p̂ nodes cost no extra Monte Carlo, make
    /// grid-`k` lookups bit-identical to the oracle, and leave
    /// interpolation error only along the `k` axis.
    pub p_stride: u32,
    /// Smallest `k` the surface serves (default 32). Below it thresholds
    /// curve too fast in `k` for the geometric grid (measured error more
    /// than doubles); the oracle row cache is cheap there anyway — a
    /// small-`k` job is proportionally small.
    pub k_min: usize,
}

impl Default for SurfaceParams {
    fn default() -> Self {
        SurfaceParams {
            tolerance: 0.08,
            p_stride: 1,
            k_min: 32,
        }
    }
}

impl SurfaceParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: tolerance finite and > 0,
    /// p_stride ≥ 1, k_min ≥ 1.
    pub fn validate(&self) -> Result<(), StatsError> {
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(StatsError::InvalidLevel {
                value: self.tolerance,
            });
        }
        if self.p_stride == 0 {
            return Err(StatsError::InvalidCount {
                what: "surface p-stride",
                value: 0,
            });
        }
        if self.k_min == 0 {
            return Err(StatsError::InvalidCount {
                what: "surface k-min",
                value: 0,
            });
        }
        Ok(())
    }
}

/// One `(m, confidence)` slice of a [`ThresholdSurface`]: a `k × p̂` grid
/// of oracle thresholds plus the measured interpolation-error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceLayer {
    /// Window size `m` of the binomial model.
    pub m: u32,
    /// Quantized confidence (`round(confidence · 100000)`), matched
    /// exactly at lookup — confidence is never interpolated.
    pub confidence_millis: u32,
    /// Conservative bound on |surface − oracle| anywhere in the span:
    /// 1.5× the worst error observed at every p̂ bucket over every grid
    /// `k` and every geometric midpoint between adjacent grid `k`s.
    pub error_bound: f64,
    /// Ascending sample-set sizes the grid was calibrated at.
    pub k_grid: Vec<usize>,
    /// Ascending p̂ grid nodes, as cache-bucket indices.
    pub p_nodes: Vec<u32>,
    /// Oracle thresholds, row-major: `values[a * p_nodes.len() + t]` is
    /// the threshold at `(k_grid[a], p_nodes[t])`.
    pub values: Vec<f64>,
}

impl SurfaceLayer {
    /// Interpolated threshold at `(k, p̂-bucket index)`, or `None` when
    /// `k` lies outside the grid span or the index beyond the last node.
    /// Exact (bit-identical to the stored oracle value) when both
    /// coordinates sit on grid nodes.
    ///
    /// This is raw interpolation — the error-bound/tolerance gate lives
    /// in [`ThresholdSurface::lookup`].
    pub fn interpolate(&self, k: usize, p_index: u32) -> Option<f64> {
        let (&k_lo, &k_hi) = (self.k_grid.first()?, self.k_grid.last()?);
        if k < k_lo || k > k_hi || p_index > *self.p_nodes.last()? {
            return None;
        }
        match self.k_grid.binary_search(&k) {
            Ok(row) => Some(self.interpolate_p(row, p_index)),
            Err(pos) => {
                // Bounds guarantee 1 <= pos <= len-1: bracket and
                // interpolate y = ε·√k linearly in ln k (y is slowly
                // varying under the Θ(1/√k) law, so the geometric grid
                // keeps the residual small).
                let (k0, k1) = (self.k_grid[pos - 1] as f64, self.k_grid[pos] as f64);
                let y0 = self.interpolate_p(pos - 1, p_index) * k0.sqrt();
                let y1 = self.interpolate_p(pos, p_index) * k1.sqrt();
                let t = ((k as f64).ln() - k0.ln()) / (k1.ln() - k0.ln());
                Some((y0 + (y1 - y0) * t) / (k as f64).sqrt())
            }
        }
    }

    /// Linear interpolation along the p̂ axis at one grid row. Linear
    /// interpolation never overshoots its endpoints, so values between
    /// nodes stay inside the enclosing node interval (monotone where the
    /// oracle curve is).
    fn interpolate_p(&self, row: usize, p_index: u32) -> f64 {
        let cols = self.p_nodes.len();
        let at = |t: usize| self.values[row * cols + t];
        match self.p_nodes.binary_search(&p_index) {
            Ok(t) => at(t),
            Err(pos) => {
                // Node 0 is always index 0 and the last node the maximum
                // index, so 1 <= pos <= len-1 here.
                let (n0, n1) = (self.p_nodes[pos - 1] as f64, self.p_nodes[pos] as f64);
                let w = (p_index as f64 - n0) / (n1 - n0);
                at(pos - 1) * (1.0 - w) + at(pos) * w
            }
        }
    }

    /// Shape and value sanity for one layer.
    fn validate(&self) -> Result<(), StatsError> {
        if self.k_grid.is_empty() || self.p_nodes.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "surface layer grid",
            });
        }
        if self.values.len() != self.k_grid.len() * self.p_nodes.len() {
            return Err(StatsError::InvalidCount {
                what: "surface layer values",
                value: self.values.len(),
            });
        }
        let ascending_k = self.k_grid.windows(2).all(|w| w[0] < w[1]);
        let ascending_p = self.p_nodes.windows(2).all(|w| w[0] < w[1]);
        if !ascending_k || !ascending_p {
            return Err(StatsError::EmptyInput {
                what: "surface layer grid order",
            });
        }
        if !(self.error_bound.is_finite() && self.error_bound >= 0.0) {
            return Err(StatsError::InvalidLevel {
                value: self.error_bound,
            });
        }
        if self.values.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(StatsError::EmptyInput {
                what: "surface layer values",
            });
        }
        Ok(())
    }
}

/// A set of [`SurfaceLayer`]s (one per `(m, confidence)`) behind a single
/// tolerance gate.
///
/// # Examples
///
/// ```
/// use hp_stats::{SurfaceLayer, SurfaceParams, ThresholdSurface};
///
/// // A hand-built 2×2 layer: thresholds at k ∈ {8, 32}, p̂ nodes {0, 200}.
/// let layer = SurfaceLayer {
///     m: 10,
///     confidence_millis: 95_000,
///     error_bound: 0.01,
///     k_grid: vec![8, 32],
///     p_nodes: vec![0, 200],
///     values: vec![0.9, 0.4, 0.45, 0.2],
/// };
/// let surface = ThresholdSurface::from_parts(SurfaceParams::default(), vec![layer])?;
/// // Exact at a grid node:
/// assert_eq!(surface.lookup(10, 8, 0, 95_000), Some(0.9));
/// // Interpolated between nodes, absent outside the span:
/// assert!(surface.lookup(10, 16, 100, 95_000).is_some());
/// assert_eq!(surface.lookup(10, 4, 0, 95_000), None);
/// assert_eq!(surface.lookup(11, 8, 0, 95_000), None);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSurface {
    params: SurfaceParams,
    layers: Vec<SurfaceLayer>,
}

impl ThresholdSurface {
    /// Assembles a surface from parameters and layers (e.g. loaded from a
    /// persisted calibration cache), validating shapes. Layers are sorted
    /// by `(m, confidence)` internally; duplicates are rejected.
    ///
    /// # Errors
    ///
    /// Propagates [`SurfaceParams::validate`] and per-layer shape
    /// violations; returns [`StatsError::InvalidCount`] for duplicate
    /// `(m, confidence)` layers.
    pub fn from_parts(
        params: SurfaceParams,
        mut layers: Vec<SurfaceLayer>,
    ) -> Result<Self, StatsError> {
        params.validate()?;
        for layer in &layers {
            layer.validate()?;
        }
        layers.sort_by_key(|l| (l.m, l.confidence_millis));
        let duplicate = layers
            .windows(2)
            .any(|w| (w[0].m, w[0].confidence_millis) == (w[1].m, w[1].confidence_millis));
        if duplicate {
            return Err(StatsError::InvalidCount {
                what: "duplicate surface layers",
                value: layers.len(),
            });
        }
        Ok(ThresholdSurface { params, layers })
    }

    /// The parameters the surface was built (and is gated) under.
    pub fn params(&self) -> &SurfaceParams {
        &self.params
    }

    /// The layers, sorted by `(m, confidence_millis)`.
    pub fn layers(&self) -> &[SurfaceLayer] {
        &self.layers
    }

    /// Whether any layer exists for window size `m`.
    pub fn covers(&self, m: u32) -> bool {
        self.layers.iter().any(|l| l.m == m)
    }

    /// Whether the surface actually *serves* window size `m`: at least
    /// one layer exists and every `m` layer's error bound is within
    /// tolerance (the /healthz readiness signal).
    pub fn serves(&self, m: u32) -> bool {
        let mut any = false;
        for layer in self.layers.iter().filter(|l| l.m == m) {
            if layer.error_bound > self.params.tolerance {
                return false;
            }
            any = true;
        }
        any
    }

    /// The worst error bound across `m`'s layers (`None` when uncovered).
    pub fn max_error_bound(&self, m: u32) -> Option<f64> {
        self.layers
            .iter()
            .filter(|l| l.m == m)
            .map(|l| l.error_bound)
            .reduce(f64::max)
    }

    /// Interpolated threshold for the quantized key, or `None` when no
    /// layer matches `(m, confidence)` exactly, `k` lies outside the
    /// layer's grid span, or the layer's error bound exceeds the
    /// configured tolerance (callers then fall back to the oracle).
    pub fn lookup(&self, m: u32, k: usize, p_index: u32, confidence_millis: u32) -> Option<f64> {
        let row = self
            .layers
            .binary_search_by_key(&(m, confidence_millis), |l| (l.m, l.confidence_millis))
            .ok()?;
        let layer = &self.layers[row];
        if layer.error_bound > self.params.tolerance {
            return None;
        }
        layer.interpolate(k, p_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> SurfaceLayer {
        SurfaceLayer {
            m: 10,
            confidence_millis: 95_000,
            error_bound: 0.01,
            k_grid: vec![8, 32, 128],
            p_nodes: vec![0, 100, 200],
            values: vec![
                0.90, 0.70, 0.10, // k = 8
                0.45, 0.35, 0.05, // k = 32
                0.22, 0.17, 0.02, // k = 128
            ],
        }
    }

    #[test]
    fn params_validation() {
        assert!(SurfaceParams::default().validate().is_ok());
        let bad = |p: SurfaceParams| p.validate().is_err();
        assert!(bad(SurfaceParams {
            tolerance: 0.0,
            ..Default::default()
        }));
        assert!(bad(SurfaceParams {
            tolerance: f64::NAN,
            ..Default::default()
        }));
        assert!(bad(SurfaceParams {
            p_stride: 0,
            ..Default::default()
        }));
        assert!(bad(SurfaceParams {
            k_min: 0,
            ..Default::default()
        }));
    }

    #[test]
    fn from_parts_rejects_malformed_layers() {
        let params = SurfaceParams::default();
        let mut short = layer();
        short.values.pop();
        assert!(ThresholdSurface::from_parts(params, vec![short]).is_err());
        let mut unsorted = layer();
        unsorted.k_grid = vec![32, 8, 128];
        assert!(ThresholdSurface::from_parts(params, vec![unsorted]).is_err());
        let mut nan = layer();
        nan.values[0] = f64::NAN;
        assert!(ThresholdSurface::from_parts(params, vec![nan]).is_err());
        assert!(ThresholdSurface::from_parts(params, vec![layer(), layer()]).is_err());
        assert!(ThresholdSurface::from_parts(params, vec![layer()]).is_ok());
    }

    #[test]
    fn lookup_is_exact_at_grid_nodes() {
        let surface = ThresholdSurface::from_parts(SurfaceParams::default(), vec![layer()]).unwrap();
        let l = layer();
        for (a, &k) in l.k_grid.iter().enumerate() {
            for (t, &node) in l.p_nodes.iter().enumerate() {
                let got = surface.lookup(10, k, node, 95_000).unwrap();
                assert_eq!(got.to_bits(), l.values[a * 3 + t].to_bits(), "k={k} node={node}");
            }
        }
    }

    #[test]
    fn interpolation_stays_inside_node_intervals() {
        let surface = ThresholdSurface::from_parts(SurfaceParams::default(), vec![layer()]).unwrap();
        // Between p nodes at a grid k: linear interpolation cannot
        // overshoot its endpoints.
        for p_index in 0..=200u32 {
            let v = surface.lookup(10, 32, p_index, 95_000).unwrap();
            assert!((0.05..=0.45).contains(&v), "p_index={p_index}: {v}");
        }
        // Between grid ks: ε stays inside the bracketing rows' range.
        for k in 8..=128usize {
            let v = surface.lookup(10, k, 0, 95_000).unwrap();
            assert!((0.22..=0.90).contains(&v), "k={k}: {v}");
            // and ε·√k interpolation keeps ε decreasing in k here.
        }
        let coarse = surface.lookup(10, 9, 0, 95_000).unwrap();
        let fine = surface.lookup(10, 100, 0, 95_000).unwrap();
        assert!(coarse > fine);
    }

    #[test]
    fn out_of_span_and_unknown_layers_miss() {
        let surface = ThresholdSurface::from_parts(SurfaceParams::default(), vec![layer()]).unwrap();
        assert_eq!(surface.lookup(10, 7, 0, 95_000), None, "k below grid");
        assert_eq!(surface.lookup(10, 129, 0, 95_000), None, "k above grid");
        assert_eq!(surface.lookup(10, 32, 201, 95_000), None, "p̂ beyond last node");
        assert_eq!(surface.lookup(10, 32, 0, 99_000), None, "unknown confidence");
        assert_eq!(surface.lookup(9, 32, 0, 95_000), None, "unknown m");
    }

    #[test]
    fn tolerance_gates_serving() {
        let mut wide = layer();
        wide.error_bound = 0.2; // above the 0.05 default tolerance
        let surface = ThresholdSurface::from_parts(SurfaceParams::default(), vec![wide]).unwrap();
        assert_eq!(surface.lookup(10, 32, 0, 95_000), None);
        assert!(surface.covers(10));
        assert!(!surface.serves(10));
        assert_eq!(surface.max_error_bound(10), Some(0.2));

        let surface =
            ThresholdSurface::from_parts(SurfaceParams::default(), vec![layer()]).unwrap();
        assert!(surface.serves(10));
        assert!(!surface.serves(11));
        assert!(surface.lookup(10, 32, 0, 95_000).is_some());
    }
}
