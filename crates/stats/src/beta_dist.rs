//! The Beta distribution — posterior of a Bernoulli trustworthiness.
//!
//! The beta reputation system models a server's unknown trustworthiness
//! `p` as `Beta(α₀ + good, β₀ + bad)`. This module supplies the density,
//! CDF (regularized incomplete beta function), quantiles and sampling
//! needed to put *credible intervals* around trust values.

use crate::error::StatsError;
use crate::special::ln_gamma;
use rand::{Rng, RngExt};

/// A Beta(α, β) distribution.
///
/// # Examples
///
/// ```
/// use hp_stats::BetaDist;
///
/// // Posterior after 90 good / 10 bad with a uniform prior:
/// let post = BetaDist::new(91.0, 11.0)?;
/// assert!((post.mean() - 91.0 / 102.0).abs() < 1e-12);
/// let (lo, hi) = post.credible_interval(0.95)?;
/// assert!(lo < 0.9 && 0.9 < hi);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    alpha: f64,
    beta: f64,
}

impl BetaDist {
    /// Creates a Beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless both shape
    /// parameters are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, StatsError> {
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(StatsError::InvalidProbability { value: alpha });
        }
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(StatsError::InvalidProbability { value: beta });
        }
        Ok(BetaDist { alpha, beta })
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Variance `αβ / ((α+β)²(α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Log-density at `x ∈ (0, 1)` (−∞ outside).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            return if self.alpha < 1.0 {
                f64::INFINITY
            } else if self.alpha == 1.0 {
                (self.beta).ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        if x == 1.0 {
            return if self.beta < 1.0 {
                f64::INFINITY
            } else if self.beta == 1.0 {
                (self.alpha).ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        ln_gamma(self.alpha + self.beta) - ln_gamma(self.alpha) - ln_gamma(self.beta)
            + (self.alpha - 1.0) * x.ln()
            + (self.beta - 1.0) * (1.0 - x).ln()
    }

    /// CDF — the regularized incomplete beta function `I_x(α, β)`,
    /// evaluated with Lentz's continued fraction.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        let ln_prefactor = ln_gamma(self.alpha + self.beta)
            - ln_gamma(self.alpha)
            - ln_gamma(self.beta)
            + self.alpha * x.ln()
            + self.beta * (1.0 - x).ln();
        // Use the symmetry relation for faster convergence.
        if x < (self.alpha + 1.0) / (self.alpha + self.beta + 2.0) {
            (ln_prefactor.exp() * beta_cf(self.alpha, self.beta, x) / self.alpha).clamp(0.0, 1.0)
        } else {
            (1.0 - ln_prefactor.exp() * beta_cf(self.beta, self.alpha, 1.0 - x) / self.beta)
                .clamp(0.0, 1.0)
        }
    }

    /// Quantile (inverse CDF) by bisection (the CDF is monotone and
    /// continuous; 60 iterations give ~1e-18 interval width).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidLevel`] unless `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) || !q.is_finite() {
            return Err(StatsError::InvalidLevel { value: q });
        }
        if q == 0.0 {
            return Ok(0.0);
        }
        if q == 1.0 {
            return Ok(1.0);
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// The equal-tailed credible interval at `level` (e.g. 0.95).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidLevel`] unless `level ∈ (0, 1)`.
    pub fn credible_interval(&self, level: f64) -> Result<(f64, f64), StatsError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(StatsError::InvalidLevel { value: level });
        }
        let tail = (1.0 - level) / 2.0;
        Ok((self.quantile(tail)?, self.quantile(1.0 - tail)?))
    }

    /// Draws one sample (via two gamma variates, Marsaglia–Tsang).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        if x + y == 0.0 {
            return 0.5;
        }
        x / (x + y)
    }
}

/// Continued-fraction core of the incomplete beta function
/// (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Marsaglia–Tsang gamma sampling (with the α < 1 boost).
fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^{1/α}
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(BetaDist::new(0.0, 1.0).is_err());
        assert!(BetaDist::new(1.0, -2.0).is_err());
        assert!(BetaDist::new(f64::NAN, 1.0).is_err());
        assert!(BetaDist::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1): cdf(x) = x.
        let u = BetaDist::new(1.0, 1.0).unwrap();
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((u.cdf(x) - x).abs() < 1e-12, "cdf({x})");
            assert!((u.quantile(x).unwrap() - x).abs() < 1e-9);
        }
        assert!((u.mean() - 0.5).abs() < 1e-12);
        assert!((u.variance() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_closed_form_beta_2_2() {
        // Beta(2,2): cdf(x) = 3x² − 2x³.
        let b = BetaDist::new(2.0, 2.0).unwrap();
        for x in [0.1, 0.3, 0.5, 0.7, 0.95] {
            let expected = 3.0 * x * x - 2.0 * x * x * x;
            assert!((b.cdf(x) - expected).abs() < 1e-10, "cdf({x})");
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = BetaDist::new(91.0, 11.0).unwrap();
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let c = b.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev, "monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let b = BetaDist::new(5.0, 2.0).unwrap();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = b.quantile(q).unwrap();
            assert!((b.cdf(x) - q).abs() < 1e-9, "q={q}");
        }
        assert!(b.quantile(-0.1).is_err());
    }

    #[test]
    fn credible_interval_covers_mean() {
        let b = BetaDist::new(91.0, 11.0).unwrap();
        let (lo, hi) = b.credible_interval(0.95).unwrap();
        assert!(lo < b.mean() && b.mean() < hi);
        // Tight for this much data: width well under 0.2.
        assert!(hi - lo < 0.2, "width {}", hi - lo);
        let (lo99, hi99) = b.credible_interval(0.99).unwrap();
        assert!(lo99 < lo && hi < hi99, "wider at higher level");
    }

    #[test]
    fn sampling_matches_moments() {
        let b = BetaDist::new(3.0, 7.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| b.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "sample mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - b.variance()).abs() < 0.005, "sample var {var}");
    }

    #[test]
    fn small_shape_sampling_path() {
        let b = BetaDist::new(0.5, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean = (0..n).map(|_| b.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "arcsine mean {mean}");
    }

    #[test]
    fn ln_pdf_edges() {
        let b = BetaDist::new(2.0, 2.0).unwrap();
        assert_eq!(b.ln_pdf(-0.1), f64::NEG_INFINITY);
        assert_eq!(b.ln_pdf(1.1), f64::NEG_INFINITY);
        assert_eq!(b.ln_pdf(0.0), f64::NEG_INFINITY);
        // Interior value: pdf of Beta(2,2) at 0.5 is 1.5.
        assert!((b.ln_pdf(0.5).exp() - 1.5).abs() < 1e-10);
    }
}
