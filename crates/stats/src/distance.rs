//! Distribution distances between an empirical [`Histogram`] and a
//! reference pmf.
//!
//! The paper uses the **L¹ norm** of the difference between the empirical
//! window-count distribution and the binomial model (§3.2). We also provide
//! total variation (= L¹/2), L², Kolmogorov–Smirnov, and a χ² statistic so
//! the ablation benches can compare metric choices.

use crate::empirical::Histogram;
use crate::error::StatsError;

/// The distance metric used by a behavior test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// `Σ_j |f̂(j) − p(j)|` — the paper's choice.
    #[default]
    L1,
    /// `max_A |F̂(A) − P(A)| = L1 / 2`.
    TotalVariation,
    /// `sqrt(Σ_j (f̂(j) − p(j))²)`.
    L2,
    /// `max_k |F̂(k) − P(k)|` over cumulative distributions.
    KolmogorovSmirnov,
    /// `Σ_j (f̂(j) − p(j))² / p(j)` over bins with `p(j) > 0`.
    ChiSquare,
}

impl DistanceKind {
    /// Computes this distance between `hist` and the reference `pmf`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the histogram holds no samples
    /// and [`StatsError::OutOfSupport`] if the supports disagree.
    pub fn distance(&self, hist: &Histogram, pmf: &[f64]) -> Result<f64, StatsError> {
        check_inputs(hist, pmf)?;
        let emp = hist.pmf_table();
        Ok(match self {
            DistanceKind::L1 => l1(&emp, pmf),
            DistanceKind::TotalVariation => l1(&emp, pmf) / 2.0,
            DistanceKind::L2 => emp
                .iter()
                .zip(pmf)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
            DistanceKind::KolmogorovSmirnov => {
                let mut acc_e = 0.0;
                let mut acc_p = 0.0;
                let mut worst: f64 = 0.0;
                for (a, b) in emp.iter().zip(pmf) {
                    acc_e += a;
                    acc_p += b;
                    worst = worst.max((acc_e - acc_p).abs());
                }
                worst
            }
            DistanceKind::ChiSquare => emp
                .iter()
                .zip(pmf)
                .filter(|(_, &p)| p > 0.0)
                .map(|(a, &p)| (a - p) * (a - p) / p)
                .sum(),
        })
    }

    /// All supported metrics, for sweeps and ablations.
    pub fn all() -> [DistanceKind; 5] {
        [
            DistanceKind::L1,
            DistanceKind::TotalVariation,
            DistanceKind::L2,
            DistanceKind::KolmogorovSmirnov,
            DistanceKind::ChiSquare,
        ]
    }

    /// Stable human-readable name (used in reports and CSV headers).
    pub fn name(&self) -> &'static str {
        match self {
            DistanceKind::L1 => "l1",
            DistanceKind::TotalVariation => "tv",
            DistanceKind::L2 => "l2",
            DistanceKind::KolmogorovSmirnov => "ks",
            DistanceKind::ChiSquare => "chi2",
        }
    }
}

fn check_inputs(hist: &Histogram, pmf: &[f64]) -> Result<(), StatsError> {
    if hist.is_empty() {
        return Err(StatsError::EmptyInput {
            what: "distance over an empty histogram",
        });
    }
    if pmf.len() != hist.max_value() as usize + 1 {
        return Err(StatsError::OutOfSupport {
            value: pmf.len() as u64,
            max: hist.max_value() as u64 + 1,
        });
    }
    Ok(())
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// L¹ distance between an empirical histogram and a reference pmf —
/// the paper's metric, as a convenience free function.
///
/// # Panics
///
/// Panics if the histogram is empty or the supports disagree; use
/// [`DistanceKind::distance`] for a fallible variant.
///
/// # Examples
///
/// ```
/// use hp_stats::{Binomial, Histogram, distance::l1_distance};
///
/// let b = Binomial::new(2, 0.5)?;
/// let h = Histogram::from_samples(2, [1u32, 1, 0, 2].into_iter())?;
/// let d = l1_distance(&h, &b.pmf_table());
/// assert!(d < 2.0);
/// # Ok::<(), hp_stats::StatsError>(())
/// ```
pub fn l1_distance(hist: &Histogram, pmf: &[f64]) -> f64 {
    DistanceKind::L1
        .distance(hist, pmf)
        .expect("histogram must be non-empty and supports must match")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Binomial;

    fn hist(samples: &[u32], max: u32) -> Histogram {
        Histogram::from_samples(max, samples.iter().copied()).unwrap()
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        // Empirical exactly matching the pmf: B(1, 0.5) with samples 0,1.
        let h = hist(&[0, 1], 1);
        let pmf = [0.5, 0.5];
        for kind in DistanceKind::all() {
            let d = kind.distance(&h, &pmf).unwrap();
            assert!(d.abs() < 1e-12, "{kind:?} gave {d}");
        }
    }

    #[test]
    fn l1_is_bounded_by_two() {
        // Disjoint supports: all mass at 0 vs reference all at max.
        let h = hist(&[0, 0, 0], 5);
        let mut pmf = vec![0.0; 6];
        pmf[5] = 1.0;
        let d = l1_distance(&h, &pmf);
        assert!((d - 2.0).abs() < 1e-12);
        let tv = DistanceKind::TotalVariation.distance(&h, &pmf).unwrap();
        assert!((tv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_hand_computed() {
        // Empirical: {0: 0.5, 1: 0.25, 2: 0.25}; reference: {0.25, 0.5, 0.25}.
        let h = hist(&[0, 0, 1, 2], 2);
        let d = l1_distance(&h, &[0.25, 0.5, 0.25]);
        assert!((d - 0.5).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn ks_matches_manual_cdf_computation() {
        let h = hist(&[0, 0, 2, 2], 2);
        // empirical cdf: 0.5, 0.5, 1.0; reference B(2, 0.5) cdf: .25, .75, 1.
        let b = Binomial::new(2, 0.5).unwrap();
        let d = DistanceKind::KolmogorovSmirnov
            .distance(&h, &b.pmf_table())
            .unwrap();
        assert!((d - 0.25).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn chi_square_zero_probability_bins_skipped() {
        let h = hist(&[0, 1], 2);
        let pmf = [0.5, 0.5, 0.0];
        let d = DistanceKind::ChiSquare.distance(&h, &pmf).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn tv_is_half_l1_always() {
        let b = Binomial::new(10, 0.9).unwrap();
        let h = hist(&[10, 9, 9, 8, 10, 7], 10);
        let l1 = DistanceKind::L1.distance(&h, &b.pmf_table()).unwrap();
        let tv = DistanceKind::TotalVariation
            .distance(&h, &b.pmf_table())
            .unwrap();
        assert!((tv - l1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_an_error() {
        let h = Histogram::new(3).unwrap();
        let pmf = [0.25; 4];
        for kind in DistanceKind::all() {
            assert!(kind.distance(&h, &pmf).is_err(), "{kind:?}");
        }
    }

    #[test]
    fn support_mismatch_is_an_error() {
        let h = hist(&[1], 3);
        assert!(DistanceKind::L1.distance(&h, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn distances_shrink_with_more_honest_samples() {
        use rand::SeedableRng;
        let b = Binomial::new(10, 0.9).unwrap();
        let pmf = b.pmf_table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let small = Histogram::from_samples(10, b.sample_many(&mut rng, 20)).unwrap();
        let large =
            Histogram::from_samples(10, b.sample_many(&mut rng, 20_000)).unwrap();
        let d_small = l1_distance(&small, &pmf);
        let d_large = l1_distance(&large, &pmf);
        assert!(
            d_large < d_small,
            "more samples should converge: {d_large} !< {d_small}"
        );
        assert!(d_large < 0.05);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = DistanceKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["l1", "tv", "l2", "ks", "chi2"]);
    }
}
