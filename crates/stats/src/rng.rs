//! Deterministic random number generation.
//!
//! Every simulation and calibration in this workspace is reproducible from a
//! single `u64` seed. Sub-streams (per entity, per replication, per Monte-
//! Carlo shard) are derived with [`derive_seed`], a SplitMix64 finalizer, so
//! seeds never collide by accident the way `seed + i` schemes do.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// use rand::RngExt;
///
/// let mut a = hp_stats::seeded_rng(7);
/// let mut b = hp_stats::seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Mixes both inputs through SplitMix64, which is a bijective avalanche
/// function — distinct `(seed, stream)` pairs map to well-separated outputs.
///
/// # Examples
///
/// ```
/// let a = hp_stats::derive_seed(1, 0);
/// let b = hp_stats::derive_seed(1, 1);
/// let c = hp_stats::derive_seed(2, 0);
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::collections::HashSet;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(12345);
        let mut b = seeded_rng(12345);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_have_no_small_collisions() {
        let mut seen = HashSet::new();
        for seed in 0..50u64 {
            for stream in 0..50u64 {
                assert!(
                    seen.insert(derive_seed(seed, stream)),
                    "collision at ({seed},{stream})"
                );
            }
        }
    }

    #[test]
    fn derive_seed_differs_from_naive_addition() {
        // (1, 1) and (2, 0) would collide under seed+stream.
        assert_ne!(derive_seed(1, 1), derive_seed(2, 0));
    }

    #[test]
    fn derived_streams_look_independent() {
        // Crude check: correlation of first outputs across adjacent streams
        // should not be structurally identical.
        let xs: Vec<u64> = (0..64)
            .map(|s| seeded_rng(derive_seed(42, s)).random::<u64>())
            .collect();
        let distinct: HashSet<&u64> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }
}
