//! The machine-readable load report (`experiments/out/bench_edge.json`).
//!
//! Written by `edge-soak` and the `hp-load` CLI; read by `ci.sh`'s SLO
//! gate, which compares `ingest_throughput_per_sec` and
//! `assess_p99_ms` against the committed baseline in
//! `experiments/baselines/`. Keep field names stable — they are the
//! contract with the gate.

use crate::runner::{LoadConfig, LoadOutcome};
use hp_service::obs::LatencySnapshot;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders one latency snapshot as a JSON object of milliseconds.
fn render_latency(out: &mut String, name: &str, snapshot: &LatencySnapshot) {
    let ms = |ns: u64| ns as f64 / 1e6;
    let _ = write!(
        out,
        "\"{name}\":{{\"count\":{},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\"p90_ms\":{:.4},\"p99_ms\":{:.4},\"max_ms\":{:.4}}}",
        snapshot.count,
        ms(snapshot.mean_ns()),
        ms(snapshot.quantile_ns(0.50)),
        ms(snapshot.quantile_ns(0.90)),
        ms(snapshot.quantile_ns(0.99)),
        ms(snapshot.max_ns),
    );
}

/// Renders the full report JSON.
pub fn render(config: &LoadConfig, outcome: &LoadOutcome) -> String {
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "{{\n  \"config\":{{\"connections\":{},\"feedback_rate\":{},\"batch_size\":{},\"duration_secs\":{:.3},\"assess_every\":{},\"servers\":{},\"clients\":{},\"seed\":{}}},\n",
        config.connections,
        config.feedback_rate,
        config.batch_size,
        config.duration.as_secs_f64(),
        config.assess_every,
        config.mix.servers,
        config.mix.clients,
        config.mix.seed,
    );
    let _ = writeln!(
        out,
        "  \"feedbacks\":{{\"sent\":{},\"accepted\":{},\"shed\":{}}},",
        outcome.feedbacks_sent, outcome.feedbacks_accepted, outcome.feedbacks_shed,
    );
    let _ = writeln!(
        out,
        "  \"requests\":{{\"ingest\":{},\"ingest_rejections\":{},\"assess\":{},\"assess_degraded\":{},\"errors\":{},\"late_sends\":{}}},",
        outcome.ingest_requests,
        outcome.ingest_rejections,
        outcome.assess_requests,
        outcome.assess_degraded,
        outcome.errors,
        outcome.late_sends,
    );
    let _ = write!(
        out,
        "  \"elapsed_secs\":{:.3},\n  \"ingest_throughput_per_sec\":{:.1},\n  ",
        outcome.elapsed.as_secs_f64(),
        outcome.accepted_rate(),
    );
    render_latency(&mut out, "ingest_latency", &outcome.ingest_latency);
    out.push_str(",\n  ");
    render_latency(&mut out, "assess_latency", &outcome.assess_latency);
    let _ = write!(
        out,
        ",\n  \"assess_p99_ms\":{:.4}\n}}\n",
        outcome.assess_latency.quantile_ns(0.99) as f64 / 1e6
    );
    out
}

/// Writes the report, creating parent directories.
///
/// # Errors
///
/// Filesystem errors.
pub fn write(path: &Path, config: &LoadConfig, outcome: &LoadOutcome) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(config, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationMix;
    use std::time::Duration;

    #[test]
    fn report_contains_gate_fields() {
        let config = LoadConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            connections: 2,
            feedback_rate: 1000.0,
            batch_size: 100,
            duration: Duration::from_secs(1),
            assess_every: 5,
            mix: PopulationMix::paper_mix(10, 1000, 3),
        };
        let outcome = LoadOutcome {
            feedbacks_accepted: 900,
            elapsed: Duration::from_secs(1),
            ..LoadOutcome::default()
        };
        let text = render(&config, &outcome);
        for field in [
            "ingest_throughput_per_sec",
            "assess_p99_ms",
            "\"accepted\":900",
            "ingest_latency",
            "assess_latency",
            "late_sends",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        assert!(hp_edge::wire::json_u64(&text, "sent").is_some());
    }
}
