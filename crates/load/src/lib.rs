//! hp-load: an open-loop load harness for the `hp-edge` front-end.
//!
//! Replays the paper's §5 population mixes — honest players,
//! hibernating attackers, windowed periodic attackers — against a
//! running edge at configurable rates: millions of simulated users,
//! hundreds of thousands of feedbacks per second (reached by batching
//! feedback lines into each `POST /ingest` body), with interleaved
//! `GET /assess` probes.
//!
//! Three properties matter more than raw speed:
//!
//! * **Open-loop arrival**: send times are scheduled up front and
//!   latency is measured from the *scheduled* time, so a struggling
//!   server shows up as queueing delay in the histogram instead of
//!   quietly throttling the generator (coordinated omission).
//! * **Deterministic population**: every feedback is a pure function of
//!   `(seed, server, t)` ([`population`]), so runs are reproducible and
//!   workers partition the population without coordination.
//! * **Exact accounting**: accepted/shed counts come from the service's
//!   own responses and are cross-checked against `/metrics` by the soak
//!   binary — the harness would catch a front-end that miscounts.
//!
//! Binaries: `hp-load` (CLI against any running edge) and `edge-soak`
//! (self-contained: boots service + edge in-process, runs a short soak,
//! writes `experiments/out/bench_edge.json` for the CI SLO gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod population;
pub mod report;
pub mod runner;

pub use client::{HttpClient, Response};
pub use population::{BehaviorClass, FeedbackStream, PopulationMix};
pub use runner::{run, LoadConfig, LoadOutcome};
