//! A deterministic, *stateless-per-event* population generator.
//!
//! `hp-sim`'s workload generators materialize one server's whole history
//! at a time; replaying millions of simulated users that way would hold
//! gigabytes of feedbacks in the load generator. This module instead
//! derives every feedback from `(seed, server, transaction index)` with
//! the same `derive_seed` chain the calibrator uses, so the stream
//!
//! * covers millions of distinct clients and an arbitrary server count
//!   in O(#servers) memory (one transaction counter per server),
//! * is bit-reproducible for a given seed at any worker count (each
//!   event's randomness depends only on its coordinates), and
//! * reproduces the paper's §5 population mix: honest players at
//!   trustworthiness `p`, hibernating attackers (honest preparation
//!   then an all-bad attack run), and windowed periodic attackers.
//!
//! The class mix mirrors `hp_sim::workload`: honest histories are
//! i.i.d. Bernoulli(`p`), hibernators turn bad after `hibernate_prep`
//! transactions, periodic attackers go bad for the first
//! `⌊window·rate⌋` slots of every window.

use hp_core::{ClientId, Feedback, Rating, ServerId};
use hp_stats::derive_seed;

/// Behavior class assigned to one simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviorClass {
    /// Honest player: i.i.d. Bernoulli(`p_honest`) outcomes (§5.1).
    Honest,
    /// Hibernating attacker: honest for `hibernate_prep` transactions,
    /// then every transaction bad (§5.2).
    Hibernating,
    /// Windowed periodic attacker: `⌊window·rate⌋` bad transactions per
    /// `periodic_window` (§5.3, the Fig. 7 workload).
    Periodic,
}

/// The population specification: how many servers/clients, the class
/// mix, and each class's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMix {
    /// Distinct rated servers.
    pub servers: u64,
    /// Distinct rating clients (the "million users").
    pub clients: u64,
    /// Fraction of servers that are honest players.
    pub honest_fraction: f64,
    /// Fraction that are hibernating attackers (the rest are periodic).
    pub hibernating_fraction: f64,
    /// Honest trustworthiness `p` (also the hibernators' preparation
    /// quality).
    pub p_honest: f64,
    /// Honest transactions a hibernator performs before attacking.
    pub hibernate_prep: u64,
    /// The periodic attacker's window length.
    pub periodic_window: u64,
    /// Fraction of each window the periodic attacker spends attacking.
    pub periodic_rate: f64,
    /// Master seed; every event derives from it.
    pub seed: u64,
}

/// Domain-separation tags for the per-event seed chains.
const TAG_CLASS: u64 = 0x48_504C_4443_4C53; // "HPLDCLS"
const TAG_RATING: u64 = 0x4850_4C44_5254; // "HPLDRT"
const TAG_CLIENT: u64 = 0x4850_4C44_434C; // "HPLDCL"

/// Maps a derived seed to a uniform f64 in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl PopulationMix {
    /// The paper's §5 evaluation mix: mostly honest servers at `p = 0.9`
    /// with hibernating and periodic attackers mixed in.
    pub fn paper_mix(servers: u64, clients: u64, seed: u64) -> PopulationMix {
        PopulationMix {
            servers,
            clients,
            honest_fraction: 0.8,
            hibernating_fraction: 0.1,
            p_honest: 0.9,
            hibernate_prep: 2_000,
            periodic_window: 200,
            periodic_rate: 0.1,
            seed,
        }
    }

    /// The behavior class of `server` (pure function of seed and id).
    pub fn class_of(&self, server: ServerId) -> BehaviorClass {
        let u = unit(derive_seed(
            derive_seed(self.seed, TAG_CLASS),
            server.value(),
        ));
        if u < self.honest_fraction {
            BehaviorClass::Honest
        } else if u < self.honest_fraction + self.hibernating_fraction {
            BehaviorClass::Hibernating
        } else {
            BehaviorClass::Periodic
        }
    }

    /// The `t`-th feedback for `server` — stateless: depends only on
    /// `(seed, server, t)`.
    pub fn feedback(&self, server: ServerId, t: u64) -> Feedback {
        let per_server = derive_seed(self.seed, server.value());
        let good = match self.class_of(server) {
            BehaviorClass::Honest => {
                unit(derive_seed(derive_seed(per_server, TAG_RATING), t)) < self.p_honest
            }
            BehaviorClass::Hibernating => {
                t < self.hibernate_prep
                    && unit(derive_seed(derive_seed(per_server, TAG_RATING), t)) < self.p_honest
            }
            BehaviorClass::Periodic => {
                let window = self.periodic_window.max(1);
                let attacks = (window as f64 * self.periodic_rate) as u64;
                t % window >= attacks
            }
        };
        let client = derive_seed(derive_seed(per_server, TAG_CLIENT), t) % self.clients.max(1);
        Feedback::new(t, server, ClientId::new(client), Rating::from_good(good))
    }
}

/// An infinite feedback stream over the population: servers are visited
/// round-robin and each keeps its own transaction clock, so every
/// server's history grows exactly as the paper's generators would have
/// produced it. Memory is one `u64` per server.
#[derive(Debug)]
pub struct FeedbackStream {
    mix: PopulationMix,
    /// Server ids this stream owns (an offset/stride slice of the
    /// population, so concurrent workers partition the servers and no
    /// two streams ever emit the same `(server, t)` coordinate).
    servers: Vec<u64>,
    next_idx: usize,
    clocks: Vec<u64>,
}

impl FeedbackStream {
    /// Creates the stream at time zero for every server.
    pub fn new(mix: PopulationMix) -> FeedbackStream {
        FeedbackStream::strided(mix, 0, 1)
    }

    /// Creates the stream over the servers `offset, offset+stride, …`:
    /// worker `w` of `C` uses `strided(mix, w, C)` and the workers
    /// jointly replay exactly the population [`FeedbackStream::new`]
    /// would have produced alone.
    pub fn strided(mix: PopulationMix, offset: u64, stride: u64) -> FeedbackStream {
        let stride = stride.max(1);
        let servers: Vec<u64> = (offset..mix.servers).step_by(stride as usize).collect();
        let clocks = vec![0u64; servers.len()];
        FeedbackStream {
            mix,
            servers,
            next_idx: 0,
            clocks,
        }
    }

    /// The population spec this stream replays.
    pub fn mix(&self) -> &PopulationMix {
        &self.mix
    }

    /// Fills `out` with the next `n` feedbacks (empty when this stream
    /// owns no servers).
    pub fn next_batch(&mut self, n: usize, out: &mut Vec<Feedback>) {
        out.clear();
        if self.servers.is_empty() {
            return;
        }
        out.reserve(n);
        for _ in 0..n {
            let idx = self.next_idx;
            self.next_idx = (self.next_idx + 1) % self.servers.len();
            let server = self.servers[idx];
            let t = self.clocks[idx];
            self.clocks[idx] += 1;
            out.push(self.mix.feedback(ServerId::new(server), t));
        }
    }

    /// A server this stream has already emitted feedback for (assess
    /// probes target warm servers); `None` before the first batch.
    pub fn touched_server(&self, salt: u64) -> Option<ServerId> {
        let emitted = if self.clocks.iter().any(|&c| c > 1) {
            self.servers.len()
        } else {
            self.next_idx
        };
        if emitted == 0 {
            return None;
        }
        let pick = derive_seed(self.mix.seed, salt) as usize % emitted;
        Some(ServerId::new(self.servers[pick]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> PopulationMix {
        PopulationMix::paper_mix(100, 1_000_000, 42)
    }

    #[test]
    fn class_mix_matches_requested_fractions() {
        let mix = PopulationMix::paper_mix(10_000, 1_000_000, 7);
        let honest = (0..10_000)
            .filter(|&s| mix.class_of(ServerId::new(s)) == BehaviorClass::Honest)
            .count();
        let hibernating = (0..10_000)
            .filter(|&s| mix.class_of(ServerId::new(s)) == BehaviorClass::Hibernating)
            .count();
        assert!((honest as f64 / 10_000.0 - 0.8).abs() < 0.02, "honest {honest}");
        assert!(
            (hibernating as f64 / 10_000.0 - 0.1).abs() < 0.02,
            "hibernating {hibernating}"
        );
    }

    #[test]
    fn events_are_stateless_and_deterministic() {
        let mix = mix();
        let a = mix.feedback(ServerId::new(3), 17);
        let b = mix.feedback(ServerId::new(3), 17);
        assert_eq!(a, b);
        // Different coordinates give different randomness.
        assert_ne!(
            mix.feedback(ServerId::new(3), 18).client,
            mix.feedback(ServerId::new(4), 18).client
        );
    }

    #[test]
    fn honest_servers_track_p() {
        let mix = mix();
        let server = (0..100)
            .map(ServerId::new)
            .find(|&s| mix.class_of(s) == BehaviorClass::Honest)
            .unwrap();
        let good = (0..5_000)
            .filter(|&t| mix.feedback(server, t).is_good())
            .count();
        assert!((good as f64 / 5_000.0 - 0.9).abs() < 0.02, "good {good}");
    }

    #[test]
    fn hibernators_turn_all_bad_after_prep() {
        let mix = mix();
        let server = (0..100)
            .map(ServerId::new)
            .find(|&s| mix.class_of(s) == BehaviorClass::Hibernating)
            .unwrap();
        assert!((mix.hibernate_prep..mix.hibernate_prep + 200)
            .all(|t| !mix.feedback(server, t).is_good()));
    }

    #[test]
    fn stream_advances_per_server_clocks() {
        let mut stream = FeedbackStream::new(PopulationMix::paper_mix(4, 1_000, 1));
        let mut batch = Vec::new();
        stream.next_batch(12, &mut batch);
        assert_eq!(batch.len(), 12);
        // Round-robin: each of the 4 servers saw transactions 0, 1, 2.
        for server in 0..4u64 {
            let times: Vec<u64> = batch
                .iter()
                .filter(|f| f.server.value() == server)
                .map(|f| f.time)
                .collect();
            assert_eq!(times, vec![0, 1, 2]);
        }
        assert!(stream.touched_server(9).is_some());
    }
}
