//! A minimal blocking HTTP/1.1 client with keep-alive, sufficient to
//! drive `hp-edge` (and nothing else): one request in flight per
//! connection, `Content-Length` bodies only.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl Response {
    /// The body, asserting the expected status first.
    ///
    /// # Errors
    ///
    /// An `InvalidData` error naming the mismatched status.
    pub fn expect_status(self, status: u16) -> io::Result<String> {
        if self.status == status {
            Ok(self.body)
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected {status}, got {}: {}", self.status, self.body),
            ))
        }
    }
}

/// A keep-alive connection to the edge. Transport errors poison the
/// connection; the caller reconnects (the runner counts those).
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    read_timeout: Duration,
}

impl HttpClient {
    /// Creates a client for `addr`; the connection is opened lazily.
    pub fn new(addr: SocketAddr, read_timeout: Duration) -> HttpClient {
        HttpClient {
            addr,
            stream: None,
            read_timeout,
        }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full response. On a transport
    /// error the connection is dropped so the next call reconnects.
    ///
    /// # Errors
    ///
    /// Connect, write, read, or response-framing errors.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        self.request_with_headers(method, path, &[], body)
    }

    /// As [`HttpClient::request`], with extra request headers (the soak
    /// pins a known trace ID on one request via `x-hp-trace`).
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let result = self.request_inner(method, path, headers, body);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// `GET` sugar.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST` sugar.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<Response> {
        self.request("POST", path, body)
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let stream = self.stream()?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: hp-edge\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(stream)
    }
}

/// Reads one response: status line, headers (only `content-length` and
/// `connection` matter), then exactly the declared body.
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::with_capacity(512);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
        if buf.len() > 64 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }

    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            n => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok(Response { status, body })
}
