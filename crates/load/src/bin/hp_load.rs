//! The `hp-load` CLI: open-loop load against a running `hp-edge`.
//!
//! ```text
//! hp-load --addr HOST:PORT [--rate FEEDBACKS_PER_SEC] [--duration-secs N]
//!         [--connections N] [--batch-size N] [--servers N] [--clients N]
//!         [--assess-every N] [--seed N] [--report PATH]
//! ```

use hp_load::{population::PopulationMix, report, runner, LoadConfig};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hp-load --addr HOST:PORT [--rate N] [--duration-secs N] [--connections N]\n\
         \x20              [--batch-size N] [--servers N] [--clients N] [--assess-every N]\n\
         \x20              [--seed N] [--report PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = None;
    let mut rate = 100_000.0f64;
    let mut duration = Duration::from_secs(10);
    let mut connections = 4usize;
    let mut batch_size = 512usize;
    let mut servers = 10_000u64;
    let mut clients = 1_000_000u64;
    let mut assess_every = 4usize;
    let mut seed = 42u64;
    let mut report_path: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value().parse().unwrap_or_else(|_| usage())),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => {
                duration = Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()));
            }
            "--connections" => connections = value().parse().unwrap_or_else(|_| usage()),
            "--batch-size" => batch_size = value().parse().unwrap_or_else(|_| usage()),
            "--servers" => servers = value().parse().unwrap_or_else(|_| usage()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--assess-every" => assess_every = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--report" => report_path = Some(PathBuf::from(value())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let config = LoadConfig {
        addr,
        connections,
        feedback_rate: rate,
        batch_size,
        duration,
        assess_every,
        mix: PopulationMix::paper_mix(servers, clients, seed),
    };
    eprintln!(
        "hp-load: {rate} feedbacks/s for {:.1}s over {connections} connections (batch {batch_size})",
        duration.as_secs_f64(),
    );
    let outcome = runner::run(&config);
    let text = report::render(&config, &outcome);
    if let Some(path) = report_path {
        if let Err(e) = report::write(&path, &config, &outcome) {
            eprintln!("hp-load: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("hp-load: report written to {}", path.display());
    }
    println!("{text}");
    if outcome.errors > 0 {
        eprintln!("hp-load: {} request errors", outcome.errors);
        std::process::exit(1);
    }
}
