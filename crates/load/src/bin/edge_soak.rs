//! `edge-soak`: the self-contained CI soak for the network edge.
//!
//! Boots a real `ReputationService` behind a real `EdgeServer` on an
//! ephemeral port (exercising the warming path and the persisted
//! calibration cache), replays the paper-mix population at the target
//! rate with the open-loop runner, then
//!
//! 1. cross-checks the *exact* accepted/shed accounting three ways:
//!    client-observed response bodies, `ServiceStats`, and the
//!    `/metrics` Prometheus exposition must all agree;
//! 2. writes `experiments/out/bench_edge.json` for `ci.sh`'s SLO gate
//!    (throughput + assess p99 vs the committed baseline);
//! 3. drains the edge gracefully, persisting the calibration cache so a
//!    warm re-run skips the Monte-Carlo calibration wall.
//!
//! Knobs (env): `EDGE_SOAK_RATE` (feedbacks/sec, default 120000),
//! `EDGE_SOAK_SECS` (default 4), `EDGE_SOAK_OUT` (report path).

use hp_core::testing::BehaviorTestConfig;
use hp_edge::{EdgeConfig, EdgeServer};
use hp_load::{population::PopulationMix, report, runner, HttpClient, LoadConfig};
use hp_service::{IngestPolicy, ServiceConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Sums every `name{…} value` sample of one metric in a Prometheus
/// exposition (the service publishes per-shard series).
fn prom_sum(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Pulls one top-level `"key":123` number out of a span-tree body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn fail(msg: &str) -> ! {
    eprintln!("edge-soak: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let rate = env_f64("EDGE_SOAK_RATE", 120_000.0);
    let secs = env_f64("EDGE_SOAK_SECS", 4.0);
    let out_path = std::env::var("EDGE_SOAK_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("experiments/out/bench_edge.json"));
    let calibration_cache = out_path
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."))
        .join("edge_soak_calibration.hpcal");

    // Small calibration trials keep the cold calibration wall low in CI;
    // the persisted cache makes warm re-runs skip it entirely.
    let service_config = ServiceConfig::default()
        .with_shards(4)
        .with_test(
            BehaviorTestConfig::builder()
                .calibration_trials(300)
                .build()
                .expect("static test config"),
        )
        .with_prewarm_grid(vec![], vec![])
        .with_ingest_policy(IngestPolicy::TryFor(Duration::from_millis(50)))
        .with_calibration_cache(calibration_cache);
    let edge_config = EdgeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(8)
        .with_assess_deadline(Some(Duration::from_millis(250)));

    let boot = Instant::now();
    let edge = EdgeServer::start(service_config, edge_config).unwrap_or_else(|e| {
        fail(&format!("could not start edge: {e}"));
    });
    let addr = edge.local_addr();

    // The listener answers while warming; readiness flips /healthz to 200.
    let mut probe = HttpClient::new(addr, Duration::from_secs(10));
    let health = probe.get("/healthz").expect("warming /healthz");
    if health.status == 503 && !health.body.contains("warming") {
        fail(&format!("unexpected warming body: {}", health.body));
    }
    if !edge.wait_ready(Duration::from_secs(120)) {
        fail("edge never became ready");
    }
    let ready = probe.get("/healthz").expect("ready /healthz");
    if ready.status != 200 {
        fail(&format!("ready /healthz was {}: {}", ready.status, ready.body));
    }
    eprintln!(
        "edge-soak: ready on {addr} after {:.2}s (was {})",
        boot.elapsed().as_secs_f64(),
        health.status,
    );

    let load = LoadConfig {
        addr,
        connections: 8,
        feedback_rate: rate,
        batch_size: 512,
        duration: Duration::from_secs_f64(secs),
        assess_every: 4,
        mix: PopulationMix::paper_mix(2_000, 1_000_000, 42),
    };
    eprintln!("edge-soak: offering {rate} feedbacks/s for {secs}s");
    let outcome = runner::run(&load);

    // Quiesce: shard queues drain asynchronously after the last request.
    let service = edge.service().expect("service after ready");
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let stats = service.stats();
        if stats.shard_queue_depths.iter().all(|&d| d == 0)
            && stats.ingested_feedbacks + stats.shed_feedbacks
                >= outcome.feedbacks_accepted + outcome.feedbacks_shed
        {
            break stats;
        }
        if Instant::now() > deadline {
            fail("shard queues never quiesced");
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    // Exact accounting, three ways.
    if stats.ingested_feedbacks != outcome.feedbacks_accepted {
        fail(&format!(
            "accepted mismatch: client saw {}, service counted {}",
            outcome.feedbacks_accepted, stats.ingested_feedbacks
        ));
    }
    if stats.shed_feedbacks != outcome.feedbacks_shed {
        fail(&format!(
            "shed mismatch: client saw {}, service counted {}",
            outcome.feedbacks_shed, stats.shed_feedbacks
        ));
    }
    let exposition = probe.get("/metrics").expect("/metrics").body;
    let prom_ingested = prom_sum(&exposition, "hp_feedbacks_ingested_total");
    let prom_shed = prom_sum(&exposition, "hp_feedbacks_shed_total");
    if prom_ingested != outcome.feedbacks_accepted || prom_shed != outcome.feedbacks_shed {
        fail(&format!(
            "/metrics mismatch: ingested {prom_ingested} vs {}, shed {prom_shed} vs {}",
            outcome.feedbacks_accepted, outcome.feedbacks_shed
        ));
    }
    let prom_degraded = prom_sum(&exposition, "hp_degraded_answers_total");
    if prom_degraded < outcome.assess_degraded {
        fail(&format!(
            "degraded undercount: client saw {}, /metrics has {prom_degraded}",
            outcome.assess_degraded
        ));
    }
    if outcome.errors > 0 {
        fail(&format!("{} request errors during the soak", outcome.errors));
    }

    // Tracing acceptance. The soak traffic must leave (a) per-shard
    // queue-wait attribution, (b) at least one exemplar trace ID on an
    // assess-latency bucket that resolves to a span tree, and (c) a
    // pinned-trace span tree whose stage durations fit inside the
    // client-observed latency.
    if !exposition.contains("hp_shard_queue_wait_seconds_bucket{shard=\"0\"") {
        fail("no per-shard queue-wait histogram in /metrics");
    }
    // Take the exemplar from the last matching bucket line (+Inf): every
    // assess updates it, so its exemplar is the most recent assess served
    // and cannot have aged out of the bounded recent ring. A low bucket's
    // exemplar may be the last request that happened to be that fast —
    // possibly thousands of evictions ago.
    let exemplar_id = exposition
        .lines()
        .filter(|l| l.starts_with("hp_edge_request_duration_seconds_bucket{route=\"/assess\""))
        .filter_map(|l| {
            let (_, rest) = l.split_once("# {trace_id=\"")?;
            rest.split_once('"').map(|(id, _)| id.to_string())
        })
        .next_back()
        .unwrap_or_else(|| fail("no exemplar trace ID on any /assess latency bucket"));
    let resolved = probe
        .get(&format!("/debug/trace/{exemplar_id}"))
        .expect("/debug/trace");
    if resolved.status != 200 || !resolved.body.contains(&format!("\"trace\":\"{exemplar_id}\"")) {
        fail(&format!(
            "exemplar {exemplar_id} did not resolve: {} {}",
            resolved.status, resolved.body
        ));
    }

    let t0 = Instant::now();
    let traced = probe
        .request_with_headers("GET", "/assess/1", &[("x-hp-trace", "50aced")], b"")
        .expect("traced assess");
    let observed_ns = t0.elapsed().as_nanos() as u64;
    if traced.status != 200 {
        fail(&format!("traced assess was {}: {}", traced.status, traced.body));
    }
    let tree = probe
        .get("/debug/trace/50aced")
        .expect("pinned /debug/trace")
        .expect_status(200)
        .unwrap_or_else(|e| fail(&format!("pinned trace: {e}")));
    let total_ns = json_u64(&tree, "total_ns")
        .unwrap_or_else(|| fail(&format!("no total_ns in span tree: {tree}")));
    let stage_sum_ns = json_u64(&tree, "stage_sum_ns")
        .unwrap_or_else(|| fail(&format!("no stage_sum_ns in span tree: {tree}")));
    if total_ns > observed_ns {
        fail(&format!(
            "span tree claims {total_ns} ns but the client observed only {observed_ns} ns"
        ));
    }
    if stage_sum_ns > total_ns {
        fail(&format!(
            "stage sum {stage_sum_ns} ns exceeds span total {total_ns} ns"
        ));
    }
    eprintln!(
        "edge-soak: tracing OK — exemplar {exemplar_id} resolved; pinned trace 000000000050aced: \
         client {:.3} ms >= span total {:.3} ms >= stage sum {:.3} ms \
         ({:.3} ms unattributed inside the tree)",
        observed_ns as f64 / 1e6,
        total_ns as f64 / 1e6,
        stage_sum_ns as f64 / 1e6,
        (total_ns - stage_sum_ns) as f64 / 1e6,
    );

    report::write(&out_path, &load, &outcome)
        .unwrap_or_else(|e| fail(&format!("could not write report: {e}")));
    eprintln!(
        "edge-soak: OK — {:.0} feedbacks/s accepted, assess p99 {:.2} ms, {} shed, {} degraded (report: {})",
        outcome.accepted_rate(),
        outcome.assess_latency.quantile_ns(0.99) as f64 / 1e6,
        outcome.feedbacks_shed,
        outcome.assess_degraded,
        out_path.display(),
    );

    drop(probe);
    drop(service);
    edge.drain();
}
