//! The open-loop load runner.
//!
//! Request send times are fixed on a schedule *before* the run starts:
//! worker `w` of `C` sends its `k`-th request at
//! `start + (w + k·C) · interval`, where `interval` is chosen so the
//! whole fleet offers `feedback_rate` feedbacks per second. Latency is
//! measured from the *scheduled* time to response completion, so a
//! server that falls behind accumulates queueing delay in the recorded
//! latencies instead of silently slowing the generator down — the
//! classic coordinated-omission trap in closed-loop harnesses.
//!
//! Each worker owns a strided slice of the population
//! ([`FeedbackStream::strided`]), its own keep-alive connection, and its
//! own histograms; outcomes merge at the end.

use crate::client::HttpClient;
use crate::population::{FeedbackStream, PopulationMix};
use hp_edge::wire;
use hp_service::obs::{LatencyHistogram, LatencySnapshot};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The edge to target.
    pub addr: SocketAddr,
    /// Concurrent connections (worker threads).
    pub connections: usize,
    /// Offered load in feedbacks per second across all connections.
    pub feedback_rate: f64,
    /// Feedbacks per ingest request (batching is how the harness
    /// reaches hundreds of thousands of feedbacks/sec over a modest
    /// request rate).
    pub batch_size: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Issue one `GET /assess/{id}` probe per this many ingest requests
    /// (`0` disables assess probes).
    pub assess_every: usize,
    /// The simulated population to replay.
    pub mix: PopulationMix,
}

impl LoadConfig {
    /// Per-worker gap between two of its scheduled requests.
    fn worker_interval(&self) -> Duration {
        let per_second = (self.feedback_rate / self.batch_size.max(1) as f64).max(0.001);
        Duration::from_secs_f64(self.connections.max(1) as f64 / per_second)
    }
}

/// What one run observed, client-side.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Feedbacks offered (sent in request bodies).
    pub feedbacks_sent: u64,
    /// Feedbacks the service reported accepted.
    pub feedbacks_accepted: u64,
    /// Feedbacks the service reported shed (backpressure).
    pub feedbacks_shed: u64,
    /// Ingest requests completed (any status).
    pub ingest_requests: u64,
    /// Ingest requests answered `429` (shedding).
    pub ingest_rejections: u64,
    /// Assess probes completed with `200`.
    pub assess_requests: u64,
    /// Assess probes answered from the degraded path.
    pub assess_degraded: u64,
    /// Transport errors / unexpected statuses (connection re-opened).
    pub errors: u64,
    /// Requests that missed their schedule by more than one interval
    /// when they were sent (generator fell behind; the latency they
    /// recorded still includes that delay).
    pub late_sends: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
    /// Ingest request latency (scheduled send → response complete).
    pub ingest_latency: LatencySnapshot,
    /// Assess probe latency.
    pub assess_latency: LatencySnapshot,
}

impl LoadOutcome {
    fn merge(&mut self, other: &LoadOutcome) {
        self.feedbacks_sent += other.feedbacks_sent;
        self.feedbacks_accepted += other.feedbacks_accepted;
        self.feedbacks_shed += other.feedbacks_shed;
        self.ingest_requests += other.ingest_requests;
        self.ingest_rejections += other.ingest_rejections;
        self.assess_requests += other.assess_requests;
        self.assess_degraded += other.assess_degraded;
        self.errors += other.errors;
        self.late_sends += other.late_sends;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.ingest_latency.merge(&other.ingest_latency);
        self.assess_latency.merge(&other.assess_latency);
    }

    /// Accepted feedbacks per second of wall-clock run time.
    pub fn accepted_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.feedbacks_accepted as f64 / secs
        }
    }
}

/// Runs the configured load and merges every worker's observations.
pub fn run(config: &LoadConfig) -> LoadOutcome {
    let connections = config.connections.max(1);
    let start = Instant::now() + Duration::from_millis(20);
    let workers: Vec<_> = (0..connections)
        .map(|w| {
            let config = config.clone();
            std::thread::spawn(move || worker(&config, w, start))
        })
        .collect();
    let mut outcome = LoadOutcome::default();
    for handle in workers {
        if let Ok(per_worker) = handle.join() {
            outcome.merge(&per_worker);
        }
    }
    outcome
}

fn worker(config: &LoadConfig, index: usize, start: Instant) -> LoadOutcome {
    let interval = config.worker_interval();
    let mut stream = FeedbackStream::strided(
        config.mix.clone(),
        index as u64,
        config.connections.max(1) as u64,
    );
    let mut client = HttpClient::new(config.addr, Duration::from_secs(30));
    let ingest_hist = LatencyHistogram::default();
    let assess_hist = LatencyHistogram::default();
    let mut outcome = LoadOutcome::default();
    let mut batch = Vec::with_capacity(config.batch_size);
    let mut body = String::with_capacity(config.batch_size * 24);

    let offset = interval.mul_f64(index as f64 / config.connections.max(1) as f64);
    let mut k: u64 = 0;
    loop {
        let scheduled = start + offset + interval.mul_f64(k as f64);
        if scheduled.duration_since(start) >= config.duration {
            break;
        }
        k += 1;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        } else if now.duration_since(scheduled) > interval {
            outcome.late_sends += 1;
        }

        // Ingest request for this slot.
        stream.next_batch(config.batch_size, &mut batch);
        body.clear();
        for feedback in &batch {
            wire::render_feedback_line(&mut body, feedback);
        }
        outcome.feedbacks_sent += batch.len() as u64;
        match client.post("/ingest", body.as_bytes()) {
            Ok(response) if response.status == 200 || response.status == 429 => {
                ingest_hist.record_ns(elapsed_ns_since(scheduled));
                outcome.ingest_requests += 1;
                if response.status == 429 {
                    outcome.ingest_rejections += 1;
                }
                outcome.feedbacks_accepted +=
                    wire::json_u64(&response.body, "accepted").unwrap_or(0);
                outcome.feedbacks_shed += wire::json_u64(&response.body, "shed").unwrap_or(0);
            }
            Ok(_) | Err(_) => outcome.errors += 1,
        }

        // Interleaved assess probe.
        if config.assess_every > 0 && k.is_multiple_of(config.assess_every as u64) {
            if let Some(server) = stream.touched_server(k) {
                let probe_start = Instant::now();
                match client.get(&format!("/assess/{}", server.value())) {
                    Ok(response) if response.status == 200 => {
                        assess_hist.record_ns(probe_start.elapsed().as_nanos() as u64);
                        outcome.assess_requests += 1;
                        if wire::json_raw(&response.body, "degraded") == Some("true") {
                            outcome.assess_degraded += 1;
                        }
                    }
                    Ok(_) | Err(_) => outcome.errors += 1,
                }
            }
        }
    }

    outcome.elapsed = start.elapsed();
    outcome.ingest_latency = ingest_hist.snapshot();
    outcome.assess_latency = assess_hist.snapshot();
    outcome
}

fn elapsed_ns_since(scheduled: Instant) -> u64 {
    Instant::now().duration_since(scheduled).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_interval_spreads_the_fleet_rate() {
        let config = LoadConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            connections: 4,
            feedback_rate: 100_000.0,
            batch_size: 500,
            duration: Duration::from_secs(1),
            assess_every: 10,
            mix: PopulationMix::paper_mix(10, 100, 1),
        };
        // 100k feedbacks/s at 500/request = 200 req/s fleet-wide; each
        // of the 4 workers sends every 20 ms.
        assert_eq!(config.worker_interval(), Duration::from_millis(20));
    }
}
