//! Configuration for behavior tests.

use crate::error::CoreError;
use hp_stats::{CalibrationConfig, DistanceKind, SurfaceParams};

/// How windows are laid over a range of transactions when the range length
/// is not a multiple of the window size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowAlignment {
    /// Windows start at the oldest transaction; a trailing partial window
    /// is dropped (the paper's "break H sequentially" reading).
    #[default]
    Start,
    /// Windows end at the newest transaction; a leading partial window is
    /// dropped. This is what the multi-test uses internally — end-aligned
    /// windows are shared between suffixes, which is exactly the statistic
    /// reuse behind the paper's O(n) optimization (§5.5).
    End,
}

/// How the multi-test chooses which suffixes of the history to examine.
///
/// The paper steps back arithmetically (`n, n−k, n−2k, …`), which runs
/// Θ(n/k) tests; under any sound multiple-testing correction that many
/// tests dilutes per-suffix power. The geometric schedule halves instead
/// (`n, n/2, n/4, …`), running Θ(log n) tests — the same
/// long-term-plus-short-term coverage intent, with far more power per
/// test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SuffixSchedule {
    /// `n, n−k, n−2k, …` down to `min_suffix` (paper-literal).
    #[default]
    Arithmetic,
    /// `n, n/2, n/4, …` down to `min_suffix`, with each suffix length
    /// rounded down to a multiple of the step so the optimized O(n)
    /// evaluation still applies.
    Geometric,
}

/// Multiple-testing correction for the multi-test.
///
/// The paper runs each suffix test at the same 95% confidence. With ~n/k
/// suffixes that alone would flag almost every honest player (0.95⁷⁰ ≈
/// 2.7% survive), so the default here is Bonferroni; `None` reproduces the
/// paper-literal behavior for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Correction {
    /// Every suffix test runs at the configured confidence (paper-literal).
    None,
    /// Per-suffix confidence is `1 − (1−confidence)/t` for `t` suffix
    /// tests, bounding the family-wise false-positive rate by
    /// `1 − confidence`.
    #[default]
    Bonferroni,
}

/// Configuration shared by all behavior-testing schemes.
///
/// Use [`BehaviorTestConfig::builder`] to customize; the default matches
/// the paper's experimental setup (m = 10, 95% confidence, L¹ distance,
/// multi-test step k = 10, minimum suffix of 100 transactions).
///
/// # Examples
///
/// ```
/// use hp_core::testing::BehaviorTestConfig;
///
/// let config = BehaviorTestConfig::builder()
///     .window_size(20)
///     .confidence(0.99)
///     .step(20)
///     .build()?;
/// assert_eq!(config.window_size(), 20);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorTestConfig {
    window_size: u32,
    confidence: f64,
    min_windows: usize,
    distance: DistanceKind,
    alignment: WindowAlignment,
    step: usize,
    min_suffix: usize,
    max_suffix: Option<usize>,
    schedule: SuffixSchedule,
    correction: Correction,
    calibration_trials: usize,
    calibration_threads: usize,
    calibration_serial_cutoff: usize,
    calibration_surface: Option<SurfaceParams>,
    large_k_cutoff: usize,
    p_bucket: f64,
}

impl Default for BehaviorTestConfig {
    fn default() -> Self {
        BehaviorTestConfig {
            window_size: 10,
            confidence: 0.95,
            min_windows: 5,
            distance: DistanceKind::L1,
            alignment: WindowAlignment::Start,
            step: 10,
            min_suffix: 100,
            max_suffix: None,
            schedule: SuffixSchedule::default(),
            correction: Correction::default(),
            calibration_trials: 2000,
            calibration_threads: 1,
            calibration_serial_cutoff: 1 << 16,
            calibration_surface: None,
            large_k_cutoff: 2048,
            p_bucket: 0.005,
        }
    }
}

impl BehaviorTestConfig {
    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> BehaviorTestConfigBuilder {
        BehaviorTestConfigBuilder {
            config: BehaviorTestConfig::default(),
        }
    }

    /// Window size `m` (paper: 10).
    pub fn window_size(&self) -> u32 {
        self.window_size
    }

    /// Confidence level for threshold calibration (paper: 0.95).
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Minimum number of windows for a test to be statistically usable;
    /// below this the verdict is `Inconclusive`.
    pub fn min_windows(&self) -> usize {
        self.min_windows
    }

    /// Distance metric (paper: L¹).
    pub fn distance(&self) -> DistanceKind {
        self.distance
    }

    /// Window alignment for the single test.
    pub fn alignment(&self) -> WindowAlignment {
        self.alignment
    }

    /// Multi-test step `k`: each successive test drops this many of the
    /// oldest transactions.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Multi-test stops once a suffix would be shorter than this.
    pub fn min_suffix(&self) -> usize {
        self.min_suffix
    }

    /// Assessment horizon: the multi-test skips suffixes longer than this
    /// (`None` examines every suffix, the paper-literal behavior).
    ///
    /// A bounded horizon is what lets the tiered history engine fold
    /// transactions older than the horizon into summary counts — every
    /// window the test will ever scan then fits the retained
    /// full-resolution suffix, so verdicts stay bit-identical to an
    /// untiered history assessed under the same horizon.
    pub fn max_suffix(&self) -> Option<usize> {
        self.max_suffix
    }

    /// Returns a copy with the assessment horizon replaced. Safe to apply
    /// at deployment time the way hp-service does: the horizon only
    /// filters which suffixes the multi-test enumerates.
    #[must_use]
    pub fn with_max_suffix(mut self, horizon: Option<usize>) -> Self {
        self.max_suffix = horizon;
        self
    }

    /// How the multi-test enumerates suffixes.
    pub fn schedule(&self) -> SuffixSchedule {
        self.schedule
    }

    /// Multiple-testing correction for the multi-test.
    pub fn correction(&self) -> Correction {
        self.correction
    }

    /// Monte-Carlo trials per threshold calibration.
    pub fn calibration_trials(&self) -> usize {
        self.calibration_trials
    }

    /// Calibration worker threads (1 = serial). Thread count never changes
    /// thresholds: calibration draws from fixed per-chunk RNG streams, so
    /// any value here yields bit-identical verdicts.
    pub fn calibration_threads(&self) -> usize {
        self.calibration_threads
    }

    /// Calibration jobs with `trials * k` below this stay serial even with
    /// multiple threads configured (a pure performance knob).
    pub fn calibration_serial_cutoff(&self) -> usize {
        self.calibration_serial_cutoff
    }

    /// Returns a copy with the calibration thread count replaced. Safe to
    /// apply at deployment time (the hp-service pre-warm path defaults it
    /// to the machine's available parallelism): thresholds are
    /// bit-identical at every thread count.
    #[must_use]
    pub fn with_calibration_threads(mut self, threads: usize) -> Self {
        self.calibration_threads = threads;
        self
    }

    /// Interpolated threshold-surface parameters, when the calibrator
    /// should precompute one; `None` (the default) serves every threshold
    /// from the Monte-Carlo oracle cache.
    pub fn calibration_surface(&self) -> Option<SurfaceParams> {
        self.calibration_surface
    }

    /// Returns a copy with the threshold-surface parameters replaced.
    /// Safe to apply at deployment time: the surface is gated by its own
    /// measured error bound and falls back to the oracle, and it does not
    /// participate in the calibrator fingerprint.
    #[must_use]
    pub fn with_calibration_surface(mut self, surface: Option<SurfaceParams>) -> Self {
        self.calibration_surface = surface;
        self
    }

    /// The calibration configuration induced by this test configuration.
    pub fn calibration_config(&self) -> CalibrationConfig {
        CalibrationConfig {
            trials: self.calibration_trials,
            confidence: self.confidence,
            p_bucket: self.p_bucket,
            distance: self.distance,
            large_k_cutoff: self.large_k_cutoff,
            threads: self.calibration_threads,
            serial_cutoff: self.calibration_serial_cutoff,
            surface: self.calibration_surface,
        }
    }

    /// Validates the configuration as a whole.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window_size == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "window size m must be positive".into(),
            });
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("confidence must lie in (0,1), got {}", self.confidence),
            });
        }
        if self.min_windows == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "min_windows must be positive".into(),
            });
        }
        if self.step == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "multi-test step k must be positive".into(),
            });
        }
        if self.min_suffix < self.window_size as usize {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "min_suffix ({}) must be at least one window ({})",
                    self.min_suffix, self.window_size
                ),
            });
        }
        if let Some(max) = self.max_suffix {
            if max < self.min_suffix {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "max_suffix ({max}) must be at least min_suffix ({})",
                        self.min_suffix
                    ),
                });
            }
        }
        self.calibration_config().validate()?;
        Ok(())
    }
}

/// Builder for [`BehaviorTestConfig`]; see [`BehaviorTestConfig::builder`].
#[derive(Debug, Clone)]
pub struct BehaviorTestConfigBuilder {
    config: BehaviorTestConfig,
}

impl BehaviorTestConfigBuilder {
    /// Sets the window size `m`.
    pub fn window_size(mut self, m: u32) -> Self {
        self.config.window_size = m;
        self
    }

    /// Sets the calibration confidence level.
    pub fn confidence(mut self, confidence: f64) -> Self {
        self.config.confidence = confidence;
        self
    }

    /// Sets the minimum number of windows for a conclusive test.
    pub fn min_windows(mut self, min_windows: usize) -> Self {
        self.config.min_windows = min_windows;
        self
    }

    /// Sets the distance metric.
    pub fn distance(mut self, distance: DistanceKind) -> Self {
        self.config.distance = distance;
        self
    }

    /// Sets the window alignment for the single test.
    pub fn alignment(mut self, alignment: WindowAlignment) -> Self {
        self.config.alignment = alignment;
        self
    }

    /// Sets the multi-test step `k`.
    pub fn step(mut self, step: usize) -> Self {
        self.config.step = step;
        self
    }

    /// Sets the minimum suffix length for the multi-test.
    pub fn min_suffix(mut self, min_suffix: usize) -> Self {
        self.config.min_suffix = min_suffix;
        self
    }

    /// Sets the assessment horizon (maximum suffix length the multi-test
    /// examines); `None` examines every suffix.
    pub fn max_suffix(mut self, max_suffix: Option<usize>) -> Self {
        self.config.max_suffix = max_suffix;
        self
    }

    /// Sets the multi-test suffix schedule.
    pub fn schedule(mut self, schedule: SuffixSchedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the multiple-testing correction.
    pub fn correction(mut self, correction: Correction) -> Self {
        self.config.correction = correction;
        self
    }

    /// Sets the Monte-Carlo calibration trial count.
    pub fn calibration_trials(mut self, trials: usize) -> Self {
        self.config.calibration_trials = trials;
        self
    }

    /// Sets the number of calibration worker threads.
    pub fn calibration_threads(mut self, threads: usize) -> Self {
        self.config.calibration_threads = threads;
        self
    }

    /// Sets the `trials * k` size below which calibration jobs stay serial
    /// regardless of the thread count.
    pub fn calibration_serial_cutoff(mut self, cutoff: usize) -> Self {
        self.config.calibration_serial_cutoff = cutoff;
        self
    }

    /// Sets the interpolated threshold-surface parameters (`None` serves
    /// every threshold from the Monte-Carlo oracle cache).
    pub fn calibration_surface(mut self, surface: Option<SurfaceParams>) -> Self {
        self.config.calibration_surface = surface;
        self
    }

    /// Sets the window count above which thresholds are extrapolated by
    /// the `1/√k` law instead of simulated.
    pub fn large_k_cutoff(mut self, cutoff: usize) -> Self {
        self.config.large_k_cutoff = cutoff;
        self
    }

    /// Sets the p̂ bucket width used by the calibration cache.
    pub fn p_bucket(mut self, width: f64) -> Self {
        self.config.p_bucket = width;
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any constraint fails; see
    /// [`BehaviorTestConfig::validate`].
    pub fn build(self) -> Result<BehaviorTestConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_setup() {
        let c = BehaviorTestConfig::default();
        assert_eq!(c.window_size(), 10);
        assert_eq!(c.confidence(), 0.95);
        assert_eq!(c.step(), 10);
        assert_eq!(c.min_suffix(), 100);
        assert_eq!(c.distance(), DistanceKind::L1);
        assert_eq!(c.correction(), Correction::Bonferroni);
        assert_eq!(c.schedule(), SuffixSchedule::Arithmetic);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides_fields() {
        let c = BehaviorTestConfig::builder()
            .window_size(20)
            .confidence(0.99)
            .step(40)
            .min_suffix(200)
            .correction(Correction::None)
            .schedule(SuffixSchedule::Geometric)
            .calibration_trials(500)
            .build()
            .unwrap();
        assert_eq!(c.window_size(), 20);
        assert_eq!(c.confidence(), 0.99);
        assert_eq!(c.step(), 40);
        assert_eq!(c.min_suffix(), 200);
        assert_eq!(c.correction(), Correction::None);
        assert_eq!(c.schedule(), SuffixSchedule::Geometric);
        assert_eq!(c.calibration_trials(), 500);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(BehaviorTestConfig::builder().window_size(0).build().is_err());
        assert!(BehaviorTestConfig::builder().confidence(1.0).build().is_err());
        assert!(BehaviorTestConfig::builder().step(0).build().is_err());
        assert!(BehaviorTestConfig::builder().min_windows(0).build().is_err());
        assert!(BehaviorTestConfig::builder()
            .window_size(50)
            .min_suffix(10)
            .build()
            .is_err());
        assert!(BehaviorTestConfig::builder()
            .min_suffix(100)
            .max_suffix(Some(50))
            .build()
            .is_err());
        assert!(BehaviorTestConfig::builder()
            .calibration_trials(1)
            .build()
            .is_err());
    }

    #[test]
    fn calibration_config_inherits_fields() {
        let c = BehaviorTestConfig::builder()
            .confidence(0.9)
            .calibration_trials(123)
            .calibration_threads(3)
            .calibration_serial_cutoff(512)
            .build()
            .unwrap();
        assert_eq!(c.calibration_threads(), 3);
        assert_eq!(c.calibration_serial_cutoff(), 512);
        let cal = c.calibration_config();
        assert_eq!(cal.trials, 123);
        assert_eq!(cal.confidence, 0.9);
        assert_eq!(cal.threads, 3);
        assert_eq!(cal.serial_cutoff, 512);
    }

    #[test]
    fn max_suffix_round_trips_and_validates() {
        let c = BehaviorTestConfig::default();
        assert_eq!(c.max_suffix(), None);
        let c = BehaviorTestConfig::builder()
            .max_suffix(Some(1000))
            .build()
            .unwrap();
        assert_eq!(c.max_suffix(), Some(1000));
        let c = c.with_max_suffix(Some(500));
        assert_eq!(c.max_suffix(), Some(500));
        assert!(c.validate().is_ok());
        assert!(c.with_max_suffix(Some(10)).validate().is_err());
    }

    #[test]
    fn calibration_surface_plumbs_through() {
        let c = BehaviorTestConfig::default();
        assert_eq!(c.calibration_surface(), None);
        assert_eq!(c.calibration_config().surface, None);
        let params = SurfaceParams {
            tolerance: 0.02,
            ..Default::default()
        };
        let c = BehaviorTestConfig::builder()
            .calibration_surface(Some(params))
            .build()
            .unwrap();
        assert_eq!(c.calibration_surface(), Some(params));
        assert_eq!(c.calibration_config().surface, Some(params));
        let c = c.with_calibration_surface(None);
        assert_eq!(c.calibration_surface(), None);
        // Invalid surface params fail whole-config validation.
        assert!(BehaviorTestConfig::builder()
            .calibration_surface(Some(SurfaceParams {
                tolerance: 0.0,
                ..Default::default()
            }))
            .build()
            .is_err());
    }

    #[test]
    fn with_calibration_threads_overrides_in_place() {
        let c = BehaviorTestConfig::default().with_calibration_threads(6);
        assert_eq!(c.calibration_threads(), 6);
        assert_eq!(c.calibration_config().threads, 6);
        // Zero threads is still rejected by validation.
        assert!(BehaviorTestConfig::default()
            .with_calibration_threads(0)
            .validate()
            .is_err());
    }
}
