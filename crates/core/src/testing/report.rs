//! Structured results of behavior tests.

use hp_stats::ThresholdProvenance;
use std::fmt;

/// The verdict of a behavior test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestOutcome {
    /// The history is statistically consistent with the honest-player
    /// model; proceed to phase 2 (the trust function).
    Honest,
    /// The history deviates from the model beyond the calibrated
    /// threshold — "Destination peer is suspicious" in the paper's
    /// pseudocode (Fig. 2).
    Suspicious,
    /// The history is too short for a statistically meaningful test.
    /// The paper (§7) treats short-history servers as a separate high-risk
    /// class; policy for them lives in
    /// [`crate::twophase::ShortHistoryPolicy`].
    Inconclusive,
}

impl TestOutcome {
    /// Whether the server clears the screening phase (honest or untestable;
    /// the final word on inconclusive histories is a policy decision).
    pub fn is_suspicious(self) -> bool {
        matches!(self, TestOutcome::Suspicious)
    }
}

impl fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestOutcome::Honest => write!(f, "honest"),
            TestOutcome::Suspicious => write!(f, "suspicious"),
            TestOutcome::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// The result of one goodness-of-fit test over one range of transactions.
#[derive(Debug, Clone)]
pub struct WindowTestReport {
    /// The verdict.
    pub outcome: TestOutcome,
    /// Number of transactions in the tested range.
    pub transactions: usize,
    /// Number of complete windows `k` the range yielded.
    pub windows: usize,
    /// Estimated trustworthiness `p̂` over the covered windows
    /// (`None` when inconclusive).
    pub p_hat: Option<f64>,
    /// Measured distribution distance (`None` when inconclusive).
    pub distance: Option<f64>,
    /// Calibrated threshold ε the distance was compared against
    /// (`None` when inconclusive).
    pub threshold: Option<f64>,
    /// Confidence level the threshold was calibrated at (after any
    /// multiple-testing correction).
    pub confidence: f64,
    /// Which calibration tier served the threshold (`None` when
    /// inconclusive — no threshold was looked up). Audit metadata only:
    /// deliberately excluded from equality, since the same verdict is
    /// served cold (Monte Carlo), warm (cache), or interpolated
    /// (surface) depending on process history.
    pub threshold_provenance: Option<ThresholdProvenance>,
}

impl PartialEq for WindowTestReport {
    fn eq(&self, other: &Self) -> bool {
        // `threshold_provenance` intentionally omitted (see field docs).
        self.outcome == other.outcome
            && self.transactions == other.transactions
            && self.windows == other.windows
            && self.p_hat == other.p_hat
            && self.distance == other.distance
            && self.threshold == other.threshold
            && self.confidence == other.confidence
    }
}

impl WindowTestReport {
    /// An inconclusive report for a range too short to test.
    pub fn inconclusive(transactions: usize, windows: usize, confidence: f64) -> Self {
        WindowTestReport {
            outcome: TestOutcome::Inconclusive,
            transactions,
            windows,
            p_hat: None,
            distance: None,
            threshold: None,
            confidence,
            threshold_provenance: None,
        }
    }

    /// Margin between threshold and distance (positive = comfortable
    /// pass), `None` when inconclusive.
    pub fn margin(&self) -> Option<f64> {
        Some(self.threshold? - self.distance?)
    }
}

/// The result of one suffix test inside a multi-test.
#[derive(Debug, Clone, PartialEq)]
pub struct SuffixReport {
    /// Length of the suffix tested (most recent `suffix_len` transactions).
    pub suffix_len: usize,
    /// The goodness-of-fit result for this suffix.
    pub report: WindowTestReport,
}

/// The result of a multi-test (paper Scheme 2): the same test over every
/// suffix, stepping back `k` transactions at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiReport {
    /// Aggregate verdict: suspicious if *any* suffix fails.
    pub outcome: TestOutcome,
    /// Per-suffix results, longest suffix first.
    pub suffixes: Vec<SuffixReport>,
    /// Per-test confidence after correction.
    pub per_test_confidence: f64,
}

impl MultiReport {
    /// The longest suffix that failed, if any.
    pub fn first_failure(&self) -> Option<&SuffixReport> {
        self.suffixes
            .iter()
            .find(|s| s.report.outcome == TestOutcome::Suspicious)
    }

    /// Number of suffix tests actually run (excluding inconclusives).
    pub fn conclusive_tests(&self) -> usize {
        self.suffixes
            .iter()
            .filter(|s| s.report.outcome != TestOutcome::Inconclusive)
            .count()
    }
}

/// Supporter-base statistics for collusion analysis (§4).
///
/// "If an honest player consistently provides good services … the set of
/// clients who leave good feedbacks will expand as time goes by"; a
/// colluder-fed attacker's supporter base is small and concentrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupporterBaseStats {
    /// Distinct feedback issuers.
    pub distinct_clients: usize,
    /// Distinct issuers with at least one positive feedback — the
    /// *supporter base* proper.
    pub supporters: usize,
    /// Share of all feedback contributed by the single most frequent
    /// issuer.
    pub top_share: f64,
    /// Share of all feedback contributed by the five most frequent
    /// issuers.
    pub top5_share: f64,
}

/// The result of the collusion-resilient test (§4).
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionReport {
    /// Aggregate verdict.
    pub outcome: TestOutcome,
    /// The distribution test over the issuer-reordered sequence.
    pub reordered: MultiReport,
    /// Supporter-base statistics of the (un-reordered) history.
    pub supporter_base: SupporterBaseStats,
}

/// Any behavior test's report.
#[derive(Debug, Clone, PartialEq)]
pub enum TestReport {
    /// Result of a [`crate::testing::SingleBehaviorTest`].
    Single(WindowTestReport),
    /// Result of a [`crate::testing::MultiBehaviorTest`].
    Multi(MultiReport),
    /// Result of a [`crate::testing::CollusionResilientTest`].
    Collusion(CollusionReport),
}

impl TestReport {
    /// The aggregate verdict.
    pub fn outcome(&self) -> TestOutcome {
        match self {
            TestReport::Single(r) => r.outcome,
            TestReport::Multi(r) => r.outcome,
            TestReport::Collusion(r) => r.outcome,
        }
    }

    /// Whether the verdict is [`TestOutcome::Suspicious`].
    pub fn is_suspicious(&self) -> bool {
        self.outcome().is_suspicious()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass_report(len: usize) -> WindowTestReport {
        WindowTestReport {
            outcome: TestOutcome::Honest,
            transactions: len,
            windows: len / 10,
            p_hat: Some(0.9),
            distance: Some(0.3),
            threshold: Some(0.5),
            confidence: 0.95,
            threshold_provenance: Some(ThresholdProvenance::MonteCarlo),
        }
    }

    #[test]
    fn provenance_is_audit_metadata_not_identity() {
        let cold = pass_report(100);
        let mut warm = pass_report(100);
        warm.threshold_provenance = Some(ThresholdProvenance::Cache);
        assert_eq!(cold, warm, "serving tier must not distinguish reports");
        let mut different = pass_report(100);
        different.threshold = Some(0.6);
        assert_ne!(cold, different);
    }

    #[test]
    fn outcome_display_and_predicates() {
        assert_eq!(TestOutcome::Honest.to_string(), "honest");
        assert_eq!(TestOutcome::Suspicious.to_string(), "suspicious");
        assert_eq!(TestOutcome::Inconclusive.to_string(), "inconclusive");
        assert!(TestOutcome::Suspicious.is_suspicious());
        assert!(!TestOutcome::Honest.is_suspicious());
        assert!(!TestOutcome::Inconclusive.is_suspicious());
    }

    #[test]
    fn margin_computation() {
        let r = pass_report(100);
        assert!((r.margin().unwrap() - 0.2).abs() < 1e-12);
        let inc = WindowTestReport::inconclusive(5, 0, 0.95);
        assert_eq!(inc.margin(), None);
        assert_eq!(inc.outcome, TestOutcome::Inconclusive);
    }

    #[test]
    fn multi_report_first_failure() {
        let mut fail = pass_report(90);
        fail.outcome = TestOutcome::Suspicious;
        let report = MultiReport {
            outcome: TestOutcome::Suspicious,
            suffixes: vec![
                SuffixReport {
                    suffix_len: 100,
                    report: pass_report(100),
                },
                SuffixReport {
                    suffix_len: 90,
                    report: fail,
                },
            ],
            per_test_confidence: 0.975,
        };
        assert_eq!(report.first_failure().unwrap().suffix_len, 90);
        assert_eq!(report.conclusive_tests(), 2);
    }

    #[test]
    fn test_report_outcome_dispatch() {
        let single = TestReport::Single(pass_report(100));
        assert_eq!(single.outcome(), TestOutcome::Honest);
        assert!(!single.is_suspicious());
    }
}
