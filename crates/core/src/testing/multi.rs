//! Scheme 2: multi-testing of server behavior (§3.3).

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::testing::config::BehaviorTestConfig;
use crate::testing::engine::{run_multi_naive, run_multi_optimized};
use crate::testing::report::{MultiReport, TestReport};
use crate::testing::{shared_calibrator, BehaviorTest};
use hp_stats::ThresholdCalibrator;
use std::sync::Arc;

/// Evaluation strategy for the multi-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MultiTestMode {
    /// Use the O(n) incremental evaluation when the step is a multiple of
    /// the window size, the O(n²) naive evaluation otherwise.
    #[default]
    Auto,
    /// Always re-test every suffix from scratch — O(n²). Kept for the
    /// Fig. 9 performance comparison and as a differential-testing oracle.
    Naive,
    /// Always use the incremental evaluation; errors if the step is not a
    /// multiple of the window size.
    Optimized,
}

/// The paper's multi-testing scheme: check the whole history, then the
/// most recent `n−k` transactions, then `n−2k`, … — "for an honest player,
/// its behavior during any subsequence of the transaction history should
/// follow binomial distributions" (§3.3).
///
/// The long-term tests catch periodic attackers (whose old bad bursts
/// never age out), the short-term tests catch hibernating attackers (whose
/// recent burst is diluted in the full history).
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTest, BehaviorTestConfig, MultiBehaviorTest, TestOutcome};
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
/// use rand::RngExt;
///
/// let test = MultiBehaviorTest::new(BehaviorTestConfig::default())?;
///
/// // Hibernating attacker: a long flawless record, then a cheating spree.
/// let mut rng = hp_stats::seeded_rng(5);
/// let mut h = TransactionHistory::from_outcomes(
///     ServerId::new(1),
///     (0..2000).map(|_| rng.random::<f64>() < 0.95),
/// );
/// for t in 0..30u64 {
///     h.push(Feedback::new(2000 + t, ServerId::new(1), ClientId::new(0), Rating::Negative));
/// }
/// assert_eq!(test.evaluate(&h)?.outcome(), TestOutcome::Suspicious);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct MultiBehaviorTest {
    config: BehaviorTestConfig,
    calibrator: Arc<ThresholdCalibrator>,
    mode: MultiTestMode,
}

impl MultiBehaviorTest {
    /// Creates a multi-test with its own calibrator and [`MultiTestMode::Auto`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: BehaviorTestConfig) -> Result<Self, CoreError> {
        let calibrator = shared_calibrator(&config)?;
        Ok(MultiBehaviorTest {
            config,
            calibrator,
            mode: MultiTestMode::Auto,
        })
    }

    /// Creates a multi-test sharing an existing calibrator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn with_calibrator(
        config: BehaviorTestConfig,
        calibrator: Arc<ThresholdCalibrator>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(MultiBehaviorTest {
            config,
            calibrator,
            mode: MultiTestMode::Auto,
        })
    }

    /// Selects the evaluation strategy (builder style).
    pub fn with_mode(mut self, mode: MultiTestMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &BehaviorTestConfig {
        &self.config
    }

    /// The shared calibrator.
    pub fn calibrator(&self) -> &Arc<ThresholdCalibrator> {
        &self.calibrator
    }

    /// The active evaluation strategy.
    pub fn mode(&self) -> MultiTestMode {
        self.mode
    }

    /// The full typed report.
    ///
    /// # Errors
    ///
    /// [`CoreError::MisalignedStep`] in [`MultiTestMode::Optimized`] with a
    /// step that is not a multiple of the window size; statistical errors
    /// as [`CoreError::Stats`].
    pub fn evaluate_detailed(
        &self,
        history: &dyn HistoryView,
    ) -> Result<MultiReport, CoreError> {
        let prefix = history.outcome_prefix();
        match self.mode {
            MultiTestMode::Naive => run_multi_naive(prefix, &self.config, &self.calibrator),
            MultiTestMode::Optimized => {
                run_multi_optimized(prefix, &self.config, &self.calibrator)
            }
            MultiTestMode::Auto => {
                if self.config.step().is_multiple_of(self.config.window_size() as usize) {
                    run_multi_optimized(prefix, &self.config, &self.calibrator)
                } else {
                    run_multi_naive(prefix, &self.config, &self.calibrator)
                }
            }
        }
    }
}

impl BehaviorTest for MultiBehaviorTest {
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError> {
        Ok(TestReport::Multi(self.evaluate_detailed(history)?))
    }

    fn name(&self) -> &'static str {
        "multi"
    }

    fn window_size(&self) -> Option<u32> {
        Some(self.config.window_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;
    use crate::testing::TestOutcome;
    use rand::RngExt;

    fn honest_history(n: usize, p: f64, seed: u64) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..n).map(|_| rng.random::<f64>() < p),
        )
    }

    fn hibernating_history(prep: usize, attacks: usize, seed: u64) -> TransactionHistory {
        let mut h = honest_history(prep, 0.95, seed);
        for t in 0..attacks as u64 {
            h.push(crate::Feedback::new(
                prep as u64 + t,
                ServerId::new(1),
                crate::ClientId::new(0),
                crate::Rating::Negative,
            ));
        }
        h
    }

    #[test]
    fn auto_uses_optimized_for_aligned_step() {
        let test = MultiBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        assert_eq!(test.mode(), MultiTestMode::Auto);
        let h = honest_history(500, 0.9, 1);
        // Must succeed (and exercise the optimized path; equality with the
        // naive path is asserted below and in the engine tests).
        let report = test.evaluate_detailed(&h).unwrap();
        assert!(!report.suffixes.is_empty());
    }

    #[test]
    fn naive_and_optimized_modes_agree() {
        let config = BehaviorTestConfig::default();
        let cal = shared_calibrator(&config).unwrap();
        let naive = MultiBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal))
            .unwrap()
            .with_mode(MultiTestMode::Naive);
        let optimized = MultiBehaviorTest::with_calibrator(config, cal)
            .unwrap()
            .with_mode(MultiTestMode::Optimized);
        for seed in 0..4 {
            let h = hibernating_history(600 + seed as usize * 53, 25, seed);
            assert_eq!(
                naive.evaluate_detailed(&h).unwrap(),
                optimized.evaluate_detailed(&h).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn optimized_mode_rejects_misaligned_step() {
        let config = BehaviorTestConfig::builder().step(7).build().unwrap();
        let test = MultiBehaviorTest::new(config)
            .unwrap()
            .with_mode(MultiTestMode::Optimized);
        let h = honest_history(300, 0.9, 2);
        assert!(matches!(
            test.evaluate_detailed(&h),
            Err(CoreError::MisalignedStep { .. })
        ));
    }

    #[test]
    fn auto_falls_back_to_naive_for_misaligned_step() {
        let config = BehaviorTestConfig::builder().step(7).build().unwrap();
        let test = MultiBehaviorTest::new(config).unwrap();
        let h = honest_history(300, 0.9, 2);
        assert!(test.evaluate_detailed(&h).is_ok());
    }

    #[test]
    fn detects_hibernating_attack_after_long_preparation() {
        // The defining property of Scheme 2 (Figs. 3-4): even a very long
        // clean history cannot hide a recent burst.
        let test = MultiBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = hibernating_history(4000, 25, 9);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
        // The failure should show up in a *short* suffix.
        let failure = report.first_failure().unwrap();
        assert!(
            failure.suffix_len <= 600,
            "burst must be caught by a recent-window test, got suffix {}",
            failure.suffix_len
        );
    }

    #[test]
    fn honest_player_passes_with_bonferroni() {
        let test = MultiBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let trials = 60;
        let mut passes = 0;
        for seed in 100..100 + trials {
            let h = honest_history(800, 0.9, seed);
            if test.evaluate_detailed(&h).unwrap().outcome == TestOutcome::Honest {
                passes += 1;
            }
        }
        let rate = passes as f64 / trials as f64;
        assert!(rate > 0.85, "honest multi-test pass rate {rate}");
    }

    #[test]
    fn suffix_reports_are_longest_first() {
        let test = MultiBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = honest_history(350, 0.9, 3);
        let report = test.evaluate_detailed(&h).unwrap();
        let lens: Vec<usize> = report.suffixes.iter().map(|s| s.suffix_len).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(lens, sorted);
        assert_eq!(lens.first().copied(), Some(350));
        assert_eq!(lens.last().copied(), Some(100));
    }

    #[test]
    fn trait_report_variant() {
        let test = MultiBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = honest_history(300, 0.9, 4);
        assert!(matches!(
            test.evaluate(&h).unwrap(),
            TestReport::Multi(_)
        ));
        assert_eq!(test.name(), "multi");
    }
}
