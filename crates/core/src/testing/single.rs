//! Scheme 1: single behavior testing over the whole history.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::testing::config::BehaviorTestConfig;
use crate::testing::engine::run_range_test;
use crate::testing::report::{TestReport, WindowTestReport};
use crate::testing::{shared_calibrator, BehaviorTest};
use hp_stats::ThresholdCalibrator;
use std::sync::Arc;

/// The paper's single behavior test (Fig. 2): break the whole history into
/// windows of `m` transactions, and check that the window counts of good
/// transactions follow `B(m, p̂)` within the calibrated L¹ threshold.
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTest, BehaviorTestConfig, SingleBehaviorTest, TestOutcome};
/// use hp_core::{ServerId, TransactionHistory};
///
/// let test = SingleBehaviorTest::new(BehaviorTestConfig::default())?;
///
/// // A periodic attacker: exactly one bad transaction every 10 — far too
/// // regular to be a Bernoulli process.
/// let outcomes = (0..500).map(|i| i % 10 != 0);
/// let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
/// let report = test.evaluate(&h)?;
/// assert_eq!(report.outcome(), TestOutcome::Suspicious);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct SingleBehaviorTest {
    config: BehaviorTestConfig,
    calibrator: Arc<ThresholdCalibrator>,
}

impl SingleBehaviorTest {
    /// Creates a single behavior test with its own threshold calibrator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: BehaviorTestConfig) -> Result<Self, CoreError> {
        let calibrator = shared_calibrator(&config)?;
        Ok(SingleBehaviorTest { config, calibrator })
    }

    /// Creates a single behavior test sharing an existing calibrator
    /// (recommended when several tests run with the same parameters — the
    /// threshold cache is then shared too).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn with_calibrator(
        config: BehaviorTestConfig,
        calibrator: Arc<ThresholdCalibrator>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(SingleBehaviorTest { config, calibrator })
    }

    /// The active configuration.
    pub fn config(&self) -> &BehaviorTestConfig {
        &self.config
    }

    /// The shared calibrator.
    pub fn calibrator(&self) -> &Arc<ThresholdCalibrator> {
        &self.calibrator
    }

    /// The full typed report (callers who don't need the [`TestReport`]
    /// wrapper).
    ///
    /// # Errors
    ///
    /// Propagates statistical failures as [`CoreError::Stats`].
    pub fn evaluate_detailed(
        &self,
        history: &dyn HistoryView,
    ) -> Result<WindowTestReport, CoreError> {
        run_range_test(
            history.outcome_prefix(),
            0,
            history.len(),
            &self.config,
            &self.calibrator,
            self.config.confidence(),
            self.config.alignment(),
        )
    }
}

impl BehaviorTest for SingleBehaviorTest {
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError> {
        Ok(TestReport::Single(self.evaluate_detailed(history)?))
    }

    fn name(&self) -> &'static str {
        "single"
    }

    fn window_size(&self) -> Option<u32> {
        Some(self.config.window_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;
    use crate::testing::TestOutcome;
    use rand::RngExt;

    fn honest_history(n: usize, p: f64, seed: u64) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..n).map(|_| rng.random::<f64>() < p),
        )
    }

    #[test]
    fn honest_players_pass_at_high_rate() {
        let test = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let trials = 200;
        let mut passes = 0;
        for seed in 0..trials {
            let h = honest_history(500, 0.9, seed);
            if test.evaluate_detailed(&h).unwrap().outcome == TestOutcome::Honest {
                passes += 1;
            }
        }
        let rate = passes as f64 / trials as f64;
        assert!(rate > 0.88, "honest pass rate {rate} too low");
    }

    #[test]
    fn deterministic_periodic_pattern_is_flagged() {
        let test = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        // Exactly 9 good then 1 bad, repeated: every window count is 9.
        let h = TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..400).map(|i| i % 10 != 9),
        );
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
        assert!(report.distance.unwrap() > report.threshold.unwrap());
    }

    #[test]
    fn hibernating_tail_on_short_history_is_flagged() {
        let test = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let mut h = honest_history(150, 0.95, 7);
        for t in 0..20u64 {
            h.push(crate::Feedback::new(
                150 + t,
                ServerId::new(1),
                crate::ClientId::new(0),
                crate::Rating::Negative,
            ));
        }
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
    }

    #[test]
    fn short_history_is_inconclusive() {
        let test = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = honest_history(40, 0.9, 3);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Inconclusive);
        assert_eq!(report.windows, 4);
    }

    #[test]
    fn perfect_history_passes() {
        let test = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), vec![true; 300]);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Honest);
        assert_eq!(report.p_hat, Some(1.0));
        assert_eq!(report.distance, Some(0.0));
    }

    #[test]
    fn shared_calibrator_is_reused() {
        let config = BehaviorTestConfig::default();
        let cal = shared_calibrator(&config).unwrap();
        let a = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal)).unwrap();
        let h = honest_history(500, 0.9, 11);
        let _ = a.evaluate_detailed(&h).unwrap();
        assert!(cal.cache_len() > 0, "shared cache must be populated");
        assert!(Arc::ptr_eq(a.calibrator(), &cal));
    }

    #[test]
    fn trait_object_usage() {
        let test: Box<dyn BehaviorTest> =
            Box::new(SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap());
        let h = honest_history(300, 0.9, 13);
        let report = test.evaluate(&h).unwrap();
        assert_eq!(test.name(), "single");
        assert!(matches!(report, TestReport::Single(_)));
    }
}
