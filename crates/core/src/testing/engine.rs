//! Shared goodness-of-fit machinery used by all three schemes.
//!
//! Everything here operates on a borrowed outcome column
//! ([`ColumnRef`]) rather than on a concrete history type, so it serves
//! the reference and columnar representations alike — and the collusion-
//! resilient test can reuse it on the issuer-reordered sequence.

use crate::error::CoreError;
use crate::history::ColumnRef;
use crate::testing::config::{BehaviorTestConfig, Correction, SuffixSchedule, WindowAlignment};
use crate::testing::report::{MultiReport, SuffixReport, TestOutcome, WindowTestReport};
use hp_stats::{Binomial, Histogram, ThresholdCalibrator};

/// Runs one distribution test over the transactions `[start, end)`.
///
/// Follows the paper's Fig. 2 with an explicit `confidence` so the
/// multi-test can apply its correction:
/// 1. break the range into `k = ⌊len/m⌋` windows (per `alignment`),
/// 2. estimate `p̂` over the covered windows,
/// 3. measure the configured distance between the window-count histogram
///    and `B(m, p̂)`,
/// 4. compare to the Monte-Carlo threshold at `confidence`.
pub(crate) fn run_range_test(
    prefix: ColumnRef<'_>,
    start: usize,
    end: usize,
    config: &BehaviorTestConfig,
    calibrator: &ThresholdCalibrator,
    confidence: f64,
    alignment: WindowAlignment,
) -> Result<WindowTestReport, CoreError> {
    debug_assert!(start <= end && end <= prefix.len());
    let m = config.window_size() as usize;
    let len = end - start;
    let k = len / m;
    if k < config.min_windows() {
        return Ok(WindowTestReport::inconclusive(len, k, confidence));
    }
    let (cov_start, cov_end) = match alignment {
        WindowAlignment::Start => (start, start + k * m),
        WindowAlignment::End => (end - k * m, end),
    };
    let counts = prefix.window_counts(cov_start, cov_end, m)?;
    let histogram = Histogram::from_samples(config.window_size(), counts)?;
    let p_hat = prefix.rate_range(cov_start, cov_end)?;
    finish_test(p_hat, len, &histogram, config, calibrator, confidence)
}

/// Final step shared between the per-suffix and fused evaluations: given
/// the covered windows' histogram and the (exactly computed) p̂, derive
/// model, distance, threshold and verdict. Pure function of its inputs —
/// the caller owns how the histogram and p̂ were produced, which is what
/// lets the fused sweep feed it without touching the outcome column.
pub(crate) fn finish_test(
    p_hat: f64,
    transactions: usize,
    histogram: &Histogram,
    config: &BehaviorTestConfig,
    calibrator: &ThresholdCalibrator,
    confidence: f64,
) -> Result<WindowTestReport, CoreError> {
    let m = config.window_size();
    let k = histogram.len() as usize;
    let model = Binomial::new(m, p_hat)?;
    let distance = config.distance().distance(histogram, &model.pmf_table())?;
    let (threshold, provenance) =
        calibrator.threshold_with_provenance(m, k, p_hat, confidence)?;
    let outcome = if distance <= threshold {
        TestOutcome::Honest
    } else {
        TestOutcome::Suspicious
    };
    Ok(WindowTestReport {
        outcome,
        transactions,
        windows: k,
        p_hat: Some(p_hat),
        distance: Some(distance),
        threshold: Some(threshold),
        confidence,
        threshold_provenance: Some(provenance),
    })
}

/// The suffix lengths a multi-test will examine for a history of `n`
/// transactions, per the configured [`SuffixSchedule`].
///
/// `max_suffix` is the assessment horizon: suffixes longer than it are
/// skipped (the schedule still steps from `n`, so the surviving lengths
/// stay on the same end-aligned window grid the optimized evaluation
/// shares across suffixes).
pub(crate) fn suffix_lengths(
    n: usize,
    step: usize,
    min_suffix: usize,
    max_suffix: Option<usize>,
    schedule: SuffixSchedule,
) -> Vec<usize> {
    let mut lens = Vec::new();
    let max = max_suffix.unwrap_or(usize::MAX);
    match schedule {
        SuffixSchedule::Arithmetic => {
            let mut len = n;
            while len >= min_suffix && len > 0 {
                if len <= max {
                    lens.push(len);
                }
                match len.checked_sub(step) {
                    Some(next) => len = next,
                    None => break,
                }
            }
        }
        SuffixSchedule::Geometric => {
            let mut len = n;
            while len >= min_suffix && len > 0 {
                if len <= max {
                    lens.push(len);
                }
                // Halve, then round down to a step multiple (keeping the
                // optimized evaluation's window-alignment precondition).
                let halved = len / 2;
                let aligned = halved - halved % step.max(1);
                if aligned >= len {
                    break;
                }
                len = aligned;
            }
        }
    }
    lens
}

/// Per-test confidence after the configured multiple-testing correction.
///
/// The test count is rounded up to the next power of two before dividing.
/// This is conservative (the family-wise error bound only tightens) and
/// keeps the number of distinct confidence levels — and therefore the
/// number of distinct threshold-calibration cache entries — logarithmic in
/// the history length instead of linear.
pub(crate) fn per_test_confidence(config: &BehaviorTestConfig, tests: usize) -> f64 {
    match config.correction() {
        Correction::None => config.confidence(),
        Correction::Bonferroni => {
            if tests <= 1 {
                config.confidence()
            } else {
                let rounded = tests.next_power_of_two();
                1.0 - (1.0 - config.confidence()) / rounded as f64
            }
        }
    }
}

/// Runs the full multi-test (naive evaluation: every suffix from scratch).
///
/// Windows are end-aligned so the suffix tests agree with the optimized
/// incremental evaluation bit-for-bit.
pub(crate) fn run_multi_naive(
    prefix: ColumnRef<'_>,
    config: &BehaviorTestConfig,
    calibrator: &ThresholdCalibrator,
) -> Result<MultiReport, CoreError> {
    let n = prefix.len();
    let lens = suffix_lengths(
        n,
        config.step(),
        config.min_suffix(),
        config.max_suffix(),
        config.schedule(),
    );
    let confidence = per_test_confidence(config, lens.len());
    let mut suffixes = Vec::with_capacity(lens.len());
    let mut outcome = if lens.is_empty() {
        TestOutcome::Inconclusive
    } else {
        TestOutcome::Honest
    };
    for &len in &lens {
        let report = run_range_test(
            prefix,
            n - len,
            n,
            config,
            calibrator,
            confidence,
            WindowAlignment::End,
        )?;
        if report.outcome == TestOutcome::Suspicious {
            outcome = TestOutcome::Suspicious;
        }
        suffixes.push(SuffixReport {
            suffix_len: len,
            report,
        });
    }
    if outcome == TestOutcome::Honest && suffixes.iter().all(|s| s.report.outcome == TestOutcome::Inconclusive)
    {
        outcome = TestOutcome::Inconclusive;
    }
    Ok(MultiReport {
        outcome,
        suffixes,
        per_test_confidence: confidence,
    })
}

/// One pass over the outcome column serving *every* suffix of a
/// multi-test: the end-aligned window grid all suffixes share.
///
/// When the step is a multiple of the window size `m`, every suffix's
/// end-aligned coverage `[n − k·m, n)` starts on the same grid of window
/// boundaries counted from the end — so a single
/// [`ColumnRef::window_counts`] sweep (word-parallel on the bit-packed
/// column) yields each suffix's window counts as a *suffix of one shared
/// vector*, and a prefix-sum over those counts answers each suffix's good
/// total (its p̂ numerator) without ever touching the column again.
pub(crate) struct FusedSuffixSweep {
    /// End-aligned window counts for the longest suffix, oldest first.
    counts: Vec<u32>,
    /// `good_prefix[i]` = good outcomes in grid windows `[0, i)`; one more
    /// entry than `counts`, so `good_prefix[len]` is the grid total.
    good_prefix: Vec<u64>,
}

impl FusedSuffixSweep {
    /// Sweeps the column once, fusing window counting with the count
    /// prefix-sum every suffix's p̂ is later read from, with the grid
    /// capped at `max_windows` end-aligned windows (`None` = the whole
    /// column). Under an assessment horizon the multi-test never reads
    /// windows older than its longest admissible suffix, so capping keeps
    /// the sweep inside the retained full-resolution suffix of a tiered
    /// (horizon-compacted) history — and off the folded prefix, which
    /// would answer with [`hp_stats::StatsError::HorizonExceeded`].
    pub(crate) fn new_capped(
        prefix: ColumnRef<'_>,
        m: usize,
        max_windows: Option<usize>,
    ) -> Result<Self, CoreError> {
        let n = prefix.len();
        let total_windows = (n / m).min(max_windows.unwrap_or(usize::MAX));
        let counts = if total_windows > 0 {
            prefix.window_counts(n - total_windows * m, n, m)?
        } else {
            Vec::new()
        };
        let mut good_prefix = Vec::with_capacity(counts.len() + 1);
        let mut running = 0u64;
        good_prefix.push(0);
        for &c in &counts {
            running += u64::from(c);
            good_prefix.push(running);
        }
        Ok(FusedSuffixSweep { counts, good_prefix })
    }

    /// Number of grid windows (those of the longest suffix).
    pub(crate) fn windows(&self) -> usize {
        self.counts.len()
    }

    /// The count of grid window `w` (oldest first).
    pub(crate) fn count(&self, w: usize) -> u32 {
        self.counts[w]
    }

    /// Good outcomes covered by the newest `k` grid windows — the p̂
    /// numerator for the suffix whose coverage is those windows. Exact
    /// integer arithmetic, so `good_in_newest(k) / (k·m)` is bit-identical
    /// to `rate_range` over the same span.
    pub(crate) fn good_in_newest(&self, k: usize) -> u64 {
        let total = self.counts.len();
        self.good_prefix[total] - self.good_prefix[total - k]
    }
}

/// Runs the full multi-test with the paper's O(n) optimization (§5.5),
/// fused: one [`FusedSuffixSweep`] over the column emits the counts for
/// every suffix, each step removes the `step/m` oldest windows from the
/// running histogram (incremental deltas), and p̂ comes from the sweep's
/// count prefix-sums — the column is read exactly once regardless of how
/// many suffixes the schedule visits.
///
/// # Errors
///
/// Returns [`CoreError::MisalignedStep`] unless `step` is a multiple of
/// the window size (the precondition for window reuse).
pub(crate) fn run_multi_optimized(
    prefix: ColumnRef<'_>,
    config: &BehaviorTestConfig,
    calibrator: &ThresholdCalibrator,
) -> Result<MultiReport, CoreError> {
    let m = config.window_size() as usize;
    if !config.step().is_multiple_of(m) {
        return Err(CoreError::MisalignedStep {
            step: config.step(),
            window: config.window_size(),
        });
    }
    let n = prefix.len();
    let lens = suffix_lengths(
        n,
        config.step(),
        config.min_suffix(),
        config.max_suffix(),
        config.schedule(),
    );
    let confidence = per_test_confidence(config, lens.len());
    if lens.is_empty() {
        // Nothing admissible to test; don't touch the column at all (it
        // may be horizon-compacted with no retained window to read).
        return Ok(MultiReport {
            outcome: TestOutcome::Inconclusive,
            suffixes: Vec::new(),
            per_test_confidence: confidence,
        });
    }
    let mut suffixes = Vec::with_capacity(lens.len());
    let mut outcome = TestOutcome::Honest;

    // The single pass over the column; shorter suffixes use strict
    // suffixes of the shared grid. The grid is capped at the longest
    // admissible suffix so a horizon-compacted column is never read past
    // its retained suffix.
    let sweep = FusedSuffixSweep::new_capped(prefix, m, lens.first().map(|&len| len / m))?;
    let total_windows = sweep.windows();
    let mut histogram =
        Histogram::from_samples(config.window_size(), sweep.counts.iter().copied())?;
    // Grid index of the oldest window still in the histogram.
    let mut oldest = 0usize;

    for &len in &lens {
        let k = len / m;
        // Remove windows that fall outside this suffix.
        while total_windows - oldest > k {
            histogram.remove(sweep.count(oldest))?;
            oldest += 1;
        }
        let report = if k < config.min_windows() {
            WindowTestReport::inconclusive(len, k, confidence)
        } else {
            let p_hat = sweep.good_in_newest(k) as f64 / (k * m) as f64;
            finish_test(p_hat, len, &histogram, config, calibrator, confidence)?
        };
        if report.outcome == TestOutcome::Suspicious {
            outcome = TestOutcome::Suspicious;
        }
        suffixes.push(SuffixReport {
            suffix_len: len,
            report,
        });
    }
    if outcome == TestOutcome::Honest
        && suffixes.iter().all(|s| s.report.outcome == TestOutcome::Inconclusive)
    {
        outcome = TestOutcome::Inconclusive;
    }
    Ok(MultiReport {
        outcome,
        suffixes,
        per_test_confidence: confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hp_stats::PrefixSums;


    fn calibrator(config: &BehaviorTestConfig) -> ThresholdCalibrator {
        ThresholdCalibrator::new(config.calibration_config()).unwrap()
    }

    fn honest_prefix(n: usize, p: f64, seed: u64) -> PrefixSums {
        use rand::RngExt;
        let mut rng = hp_stats::seeded_rng(seed);
        PrefixSums::from_bools((0..n).map(|_| rng.random::<f64>() < p))
    }

    #[test]
    fn suffix_lengths_enumeration() {
        let arith = SuffixSchedule::Arithmetic;
        assert_eq!(suffix_lengths(250, 100, 100, None, arith), vec![250, 150]);
        assert_eq!(suffix_lengths(300, 100, 100, None, arith), vec![300, 200, 100]);
        assert_eq!(suffix_lengths(99, 100, 100, None, arith), Vec::<usize>::new());
        assert_eq!(suffix_lengths(100, 100, 100, None, arith), vec![100]);
    }

    #[test]
    fn suffix_lengths_respect_the_horizon() {
        let arith = SuffixSchedule::Arithmetic;
        // The schedule still steps from n, so the surviving lengths stay
        // on the end-aligned grid; longer-than-horizon suffixes vanish.
        assert_eq!(suffix_lengths(300, 100, 100, Some(200), arith), vec![200, 100]);
        assert_eq!(suffix_lengths(300, 100, 100, Some(300), arith), vec![300, 200, 100]);
        assert_eq!(suffix_lengths(250, 100, 100, Some(160), arith), vec![150]);
        // A horizon the grid never lands on leaves nothing to test.
        assert_eq!(
            suffix_lengths(105, 10, 100, Some(100), arith),
            Vec::<usize>::new()
        );
        let geo = SuffixSchedule::Geometric;
        assert_eq!(suffix_lengths(800, 10, 100, Some(400), geo), vec![400, 200, 100]);
    }

    #[test]
    fn suffix_lengths_geometric() {
        let geo = SuffixSchedule::Geometric;
        // 800 → 400 → 200 → 100, all step-10-aligned.
        assert_eq!(suffix_lengths(800, 10, 100, None, geo), vec![800, 400, 200, 100]);
        // Unaligned start: halves round down to step multiples.
        assert_eq!(suffix_lengths(805, 10, 100, None, geo), vec![805, 400, 200, 100]);
        assert_eq!(suffix_lengths(99, 10, 100, None, geo), Vec::<usize>::new());
        // Log-many tests vs linear-many.
        let geo_tests = suffix_lengths(10_000, 10, 100, None, geo).len();
        let arith_tests = suffix_lengths(10_000, 10, 100, None, SuffixSchedule::Arithmetic).len();
        assert!(geo_tests < 10 && arith_tests > 900, "{geo_tests} vs {arith_tests}");
    }

    #[test]
    fn per_test_confidence_corrections() {
        let none = BehaviorTestConfig::builder()
            .correction(Correction::None)
            .build()
            .unwrap();
        assert_eq!(per_test_confidence(&none, 50), 0.95);
        let bonf = BehaviorTestConfig::default();
        // 50 tests round up to 64 for cache friendliness (conservative).
        let c = per_test_confidence(&bonf, 50);
        assert!((c - (1.0 - 0.05 / 64.0)).abs() < 1e-12);
        let exact = per_test_confidence(&bonf, 64);
        assert_eq!(c, exact);
        assert_eq!(per_test_confidence(&bonf, 1), 0.95);
        assert_eq!(per_test_confidence(&bonf, 0), 0.95);
    }

    #[test]
    fn range_test_inconclusive_when_too_short() {
        let config = BehaviorTestConfig::default();
        let cal = calibrator(&config);
        let prefix = honest_prefix(30, 0.9, 1); // 3 windows < min 5
        let report = run_range_test(
            ColumnRef::Prefix(&prefix),
            0,
            30,
            &config,
            &cal,
            0.95,
            WindowAlignment::Start,
        )
        .unwrap();
        assert_eq!(report.outcome, TestOutcome::Inconclusive);
        assert_eq!(report.windows, 3);
    }

    #[test]
    fn honest_history_passes_range_test() {
        let config = BehaviorTestConfig::default();
        let cal = calibrator(&config);
        let prefix = honest_prefix(1000, 0.9, 2);
        let report = run_range_test(
            ColumnRef::Prefix(&prefix),
            0,
            1000,
            &config,
            &cal,
            0.95,
            WindowAlignment::Start,
        )
        .unwrap();
        assert_eq!(report.outcome, TestOutcome::Honest, "{report:?}");
        assert!(report.p_hat.unwrap() > 0.85);
    }

    #[test]
    fn alignment_changes_covered_range_for_ragged_lengths() {
        // 25 transactions, m=10: Start covers [0,20), End covers [5,25).
        let mut outcomes = vec![true; 25];
        outcomes[0] = false; // only visible to Start
        let prefix = PrefixSums::from_bools(outcomes);
        let config = BehaviorTestConfig::builder()
            .min_windows(2)
            .build()
            .unwrap();
        let cal = calibrator(&config);
        let start = run_range_test(ColumnRef::Prefix(&prefix), 0, 25, &config, &cal, 0.95, WindowAlignment::Start)
            .unwrap();
        let end =
            run_range_test(ColumnRef::Prefix(&prefix), 0, 25, &config, &cal, 0.95, WindowAlignment::End).unwrap();
        assert!(start.p_hat.unwrap() < 1.0);
        assert_eq!(end.p_hat.unwrap(), 1.0);
    }

    #[test]
    fn fused_sweep_matches_direct_range_counts() {
        let prefix = honest_prefix(487, 0.85, 42);
        let n = prefix.len();
        for m in [1usize, 7, 10, 64] {
            let sweep = FusedSuffixSweep::new_capped(ColumnRef::Prefix(&prefix), m, None).unwrap();
            assert_eq!(sweep.windows(), n / m);
            for k in 1..=sweep.windows() {
                assert_eq!(
                    sweep.good_in_newest(k),
                    prefix.count_range(n - k * m, n),
                    "m={m} k={k}"
                );
            }
        }
        // Histories shorter than one window yield an empty grid.
        let short = honest_prefix(5, 0.9, 1);
        let sweep = FusedSuffixSweep::new_capped(ColumnRef::Prefix(&short), 10, None).unwrap();
        assert_eq!(sweep.windows(), 0);
        // A cap below the natural grid truncates to the newest windows.
        let capped = FusedSuffixSweep::new_capped(ColumnRef::Prefix(&prefix), 10, Some(20)).unwrap();
        assert_eq!(capped.windows(), 20);
        assert_eq!(capped.good_in_newest(20), prefix.count_range(n - 200, n));
    }

    #[test]
    fn naive_and_optimized_multi_agree_exactly() {
        let config = BehaviorTestConfig::default();
        let cal = calibrator(&config);
        for seed in 0..5u64 {
            // Mix honest and dishonest histories, ragged lengths included.
            let n = 480 + seed as usize * 37;
            let p = if seed % 2 == 0 { 0.9 } else { 0.75 };
            let mut prefix = honest_prefix(n, p, seed + 100);
            if seed == 3 {
                // Inject a burst of bad transactions at the end.
                for _ in 0..20 {
                    prefix.push(false);
                }
            }
            let naive = run_multi_naive(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
            let optimized = run_multi_optimized(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
            assert_eq!(naive, optimized, "seed {seed}");
        }
    }

    #[test]
    fn naive_and_optimized_agree_under_a_horizon() {
        let config = BehaviorTestConfig::builder()
            .max_suffix(Some(200))
            .build()
            .unwrap();
        let cal = calibrator(&config);
        for seed in 0..4u64 {
            let n = 480 + seed as usize * 37;
            let p = if seed % 2 == 0 { 0.9 } else { 0.75 };
            let prefix = honest_prefix(n, p, seed + 300);
            let naive = run_multi_naive(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
            let optimized = run_multi_optimized(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
            assert_eq!(naive, optimized, "seed {seed}");
            assert!(naive.suffixes.iter().all(|s| s.suffix_len <= 200));
            assert!(!naive.suffixes.is_empty());
        }
    }

    #[test]
    fn optimized_rejects_misaligned_step() {
        let config = BehaviorTestConfig::builder().step(15).build().unwrap();
        let cal = calibrator(&config);
        let prefix = honest_prefix(300, 0.9, 3);
        let err = run_multi_optimized(ColumnRef::Prefix(&prefix), &config, &cal).unwrap_err();
        assert!(matches!(err, CoreError::MisalignedStep { step: 15, window: 10 }));
        // Naive handles any step.
        assert!(run_multi_naive(ColumnRef::Prefix(&prefix), &config, &cal).is_ok());
    }

    #[test]
    fn multi_flags_recent_burst_that_single_misses() {
        // Long honest history followed by a burst of cheating: the full-
        // history test dilutes the burst, the suffix tests see it.
        let config = BehaviorTestConfig::default();
        let cal = calibrator(&config);
        let mut prefix = honest_prefix(2000, 0.95, 4);
        for _ in 0..30 {
            prefix.push(false);
        }
        for _ in 0..70 {
            prefix.push(true);
        }
        let multi = run_multi_naive(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
        assert_eq!(multi.outcome, TestOutcome::Suspicious);
        assert!(multi.first_failure().is_some());
    }

    #[test]
    fn multi_on_short_history_is_inconclusive() {
        let config = BehaviorTestConfig::default();
        let cal = calibrator(&config);
        let prefix = honest_prefix(50, 0.9, 5);
        let multi = run_multi_naive(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
        assert_eq!(multi.outcome, TestOutcome::Inconclusive);
        assert!(multi.suffixes.is_empty());
        let optimized = run_multi_optimized(ColumnRef::Prefix(&prefix), &config, &cal).unwrap();
        assert_eq!(multi, optimized);
    }
}
