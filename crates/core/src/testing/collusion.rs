//! Collusion-resilient behavior testing (§4).

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::testing::config::BehaviorTestConfig;
use crate::testing::engine::{run_multi_naive, run_multi_optimized, run_range_test};
use crate::testing::report::{
    CollusionReport, MultiReport, SuffixReport, SupporterBaseStats, TestReport,
};
use crate::testing::{shared_calibrator, BehaviorTest, WindowAlignment};
use hp_stats::ThresholdCalibrator;
use std::sync::Arc;

/// Whether the distribution test over the reordered sequence runs once or
/// over every suffix (the §4 closing remark: "we can also perform
/// multi-testing of server behavior").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollusionTestDepth {
    /// One test over the full reordered sequence.
    Single,
    /// Multi-testing over the reordered sequence (default — this is what
    /// keeps long colluder-built preparation phases from paying off in
    /// Figs. 5-6).
    #[default]
    Multi,
}

/// The collusion-resilient behavior test.
///
/// Feedback is grouped by issuer, groups are ordered most-frequent-first
/// (ties by client id), transaction order is kept inside each group, and
/// the ordinary distribution test runs over this *reordered* sequence.
///
/// The intuition (§4): for an honest server, frequent clients and
/// occasional clients experience the same service quality, so the
/// reordered sequence still looks Bernoulli. An attacker whose positive
/// feedback comes from a small colluder clique produces a reordered
/// sequence with a long all-positive head (the colluders) and a mixed tail
/// (the victims) — which no binomial fits.
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTest, BehaviorTestConfig, CollusionResilientTest, TestOutcome};
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
///
/// let test = CollusionResilientTest::new(BehaviorTestConfig::default())?;
///
/// // 300 fake positives from 3 colluders, plus 60 real transactions of
/// // which a third went bad.
/// let mut h = TransactionHistory::new();
/// let server = ServerId::new(1);
/// for t in 0..300u64 {
///     h.push(Feedback::new(t, server, ClientId::new(t % 3), Rating::Positive));
/// }
/// for t in 300..360u64 {
///     let rating = if t % 3 == 0 { Rating::Negative } else { Rating::Positive };
///     h.push(Feedback::new(t, server, ClientId::new(100 + t), rating));
/// }
/// assert_eq!(test.evaluate(&h)?.outcome(), TestOutcome::Suspicious);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct CollusionResilientTest {
    config: BehaviorTestConfig,
    calibrator: Arc<ThresholdCalibrator>,
    depth: CollusionTestDepth,
}

impl CollusionResilientTest {
    /// Creates a collusion-resilient test with its own calibrator and
    /// [`CollusionTestDepth::Multi`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: BehaviorTestConfig) -> Result<Self, CoreError> {
        let calibrator = shared_calibrator(&config)?;
        Ok(CollusionResilientTest {
            config,
            calibrator,
            depth: CollusionTestDepth::default(),
        })
    }

    /// Creates a collusion-resilient test sharing an existing calibrator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration.
    pub fn with_calibrator(
        config: BehaviorTestConfig,
        calibrator: Arc<ThresholdCalibrator>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(CollusionResilientTest {
            config,
            calibrator,
            depth: CollusionTestDepth::default(),
        })
    }

    /// Selects single- or multi-testing over the reordered sequence.
    pub fn with_depth(mut self, depth: CollusionTestDepth) -> Self {
        self.depth = depth;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &BehaviorTestConfig {
        &self.config
    }

    /// The test depth.
    pub fn depth(&self) -> CollusionTestDepth {
        self.depth
    }

    /// Supporter-base statistics for `history` (§4's "expanding supporter
    /// base" signal, usable on its own for dashboards/diagnostics).
    pub fn supporter_base(history: &dyn HistoryView) -> SupporterBaseStats {
        let n = history.len().max(1) as f64;
        let groups = history.issuer_groups();
        // A supporter has issued at least one positive feedback.
        let supporters = groups.iter().filter(|g| g.good > 0).count();
        let top_share = groups.first().map_or(0.0, |g| g.count as f64 / n);
        let top5: usize = groups.iter().take(5).map(|g| g.count).sum();
        SupporterBaseStats {
            distinct_clients: groups.len(),
            supporters,
            top_share,
            top5_share: top5 as f64 / n,
        }
    }

    /// The full typed report.
    ///
    /// # Errors
    ///
    /// Propagates statistical failures as [`CoreError::Stats`].
    pub fn evaluate_detailed(
        &self,
        history: &dyn HistoryView,
    ) -> Result<CollusionReport, CoreError> {
        // The §4 reordering permutes the *whole* history; a
        // horizon-compacted view no longer has bits for the folded
        // prefix, so degrade with a typed error instead of reordering a
        // partial sequence (which would silently change the verdict).
        let retained_start = history.retained_start();
        if retained_start > 0 {
            return Err(CoreError::Stats(hp_stats::StatsError::HorizonExceeded {
                start: 0,
                retained_start,
            }));
        }
        // The issuer-frequency permutation is cached per history and only
        // rebuilt after ingest, so re-assessing an unchanged history does
        // not allocate.
        let reordered = history.reordered_column();
        let reordered = reordered.as_col();
        let multi = match self.depth {
            CollusionTestDepth::Multi => {
                if self.config.step().is_multiple_of(self.config.window_size() as usize) {
                    run_multi_optimized(reordered, &self.config, &self.calibrator)?
                } else {
                    run_multi_naive(reordered, &self.config, &self.calibrator)?
                }
            }
            CollusionTestDepth::Single => {
                let report = run_range_test(
                    reordered,
                    0,
                    reordered.len(),
                    &self.config,
                    &self.calibrator,
                    self.config.confidence(),
                    WindowAlignment::Start,
                )?;
                let outcome = report.outcome;
                MultiReport {
                    outcome,
                    suffixes: vec![SuffixReport {
                        suffix_len: reordered.len(),
                        report,
                    }],
                    per_test_confidence: self.config.confidence(),
                }
            }
        };
        Ok(CollusionReport {
            outcome: multi.outcome,
            reordered: multi,
            supporter_base: Self::supporter_base(history),
        })
    }
}

impl BehaviorTest for CollusionResilientTest {
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError> {
        Ok(TestReport::Collusion(self.evaluate_detailed(history)?))
    }

    fn name(&self) -> &'static str {
        "collusion-resilient"
    }

    fn window_size(&self) -> Option<u32> {
        Some(self.config.window_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{Feedback, Rating};
    use crate::history::TransactionHistory;
    use crate::id::{ClientId, ServerId};
    use crate::testing::TestOutcome;
    use rand::RngExt;

    const SERVER: ServerId = ServerId::new(1);

    /// Honest server: p = 0.93, clients drawn from a modest population,
    /// every client treated alike.
    fn honest_with_clients(n: usize, seed: u64) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        let mut h = TransactionHistory::new();
        for t in 0..n as u64 {
            let client = ClientId::new(rng.random_range(0..40));
            let rating = Rating::from_good(rng.random::<f64>() < 0.93);
            h.push(Feedback::new(t, SERVER, client, rating));
        }
        h
    }

    /// Colluder-fed attacker: `prep` positives from 5 colluders, then real
    /// clients get cheated at rate 0.4 while colluders keep praising.
    fn colluding_history(prep: usize, attack: usize, seed: u64) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        let mut h = TransactionHistory::new();
        for t in 0..prep as u64 {
            h.push(Feedback::new(
                t,
                SERVER,
                ClientId::new(rng.random_range(0..5)),
                Rating::Positive,
            ));
        }
        for i in 0..attack as u64 {
            let t = prep as u64 + i;
            if rng.random::<f64>() < 0.5 {
                // colluder boost
                h.push(Feedback::new(
                    t,
                    SERVER,
                    ClientId::new(rng.random_range(0..5)),
                    Rating::Positive,
                ));
            } else {
                // real client, often cheated
                let rating = Rating::from_good(rng.random::<f64>() >= 0.4);
                h.push(Feedback::new(
                    t,
                    SERVER,
                    ClientId::new(1000 + rng.random_range(0..200u64)),
                    rating,
                ));
            }
        }
        h
    }

    #[test]
    fn honest_server_passes_reordered_test() {
        let test = CollusionResilientTest::new(BehaviorTestConfig::default()).unwrap();
        let mut passes = 0;
        let trials = 30;
        for seed in 0..trials {
            let h = honest_with_clients(600, seed);
            if test.evaluate_detailed(&h).unwrap().outcome == TestOutcome::Honest {
                passes += 1;
            }
        }
        assert!(
            passes as f64 / trials as f64 > 0.8,
            "honest pass rate {passes}/{trials}"
        );
    }

    #[test]
    fn colluding_attacker_is_flagged() {
        let test = CollusionResilientTest::new(BehaviorTestConfig::default()).unwrap();
        let h = colluding_history(400, 200, 3);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
    }

    #[test]
    fn collusion_invisible_to_plain_tests_is_caught_by_reordering() {
        // Interleave colluder positives so the *chronological* sequence
        // looks like an honest p≈0.9 stream, while all negatives hit
        // occasional clients. Plain single test passes; reordered fails.
        let mut h = TransactionHistory::new();
        let mut rng = hp_stats::seeded_rng(17);
        for t in 0..800u64 {
            if t % 10 == 9 {
                // one real (cheated) client per 10 transactions, random pos
                let rating = Rating::from_good(rng.random::<f64>() < 0.1);
                h.push(Feedback::new(t, SERVER, ClientId::new(500 + t), rating));
            } else {
                h.push(Feedback::new(
                    t,
                    SERVER,
                    ClientId::new(rng.random_range(0..5)),
                    Rating::Positive,
                ));
            }
        }
        let config = BehaviorTestConfig::default();
        let collusion = CollusionResilientTest::new(config.clone()).unwrap();
        let report = collusion.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
        // Supporter base exposes the concentration too.
        assert!(report.supporter_base.top5_share > 0.85);
    }

    #[test]
    fn supporter_base_statistics() {
        let mut h = TransactionHistory::new();
        // client 1: 3 positives; client 2: 1 negative; client 3: 1 positive
        h.push(Feedback::new(0, SERVER, ClientId::new(1), Rating::Positive));
        h.push(Feedback::new(1, SERVER, ClientId::new(1), Rating::Positive));
        h.push(Feedback::new(2, SERVER, ClientId::new(1), Rating::Positive));
        h.push(Feedback::new(3, SERVER, ClientId::new(2), Rating::Negative));
        h.push(Feedback::new(4, SERVER, ClientId::new(3), Rating::Positive));
        let stats = CollusionResilientTest::supporter_base(&h);
        assert_eq!(stats.distinct_clients, 3);
        assert_eq!(stats.supporters, 2);
        assert!((stats.top_share - 0.6).abs() < 1e-12);
        assert!((stats.top5_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_single_runs_one_test() {
        let test = CollusionResilientTest::new(BehaviorTestConfig::default())
            .unwrap()
            .with_depth(CollusionTestDepth::Single);
        let h = honest_with_clients(400, 5);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.reordered.suffixes.len(), 1);
        assert_eq!(report.reordered.suffixes[0].suffix_len, 400);
    }

    #[test]
    fn short_history_inconclusive() {
        let test = CollusionResilientTest::new(BehaviorTestConfig::default()).unwrap();
        let h = honest_with_clients(40, 6);
        let report = test.evaluate_detailed(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Inconclusive);
    }

    #[test]
    fn trait_report_variant() {
        let test = CollusionResilientTest::new(BehaviorTestConfig::default()).unwrap();
        let h = honest_with_clients(300, 7);
        assert!(matches!(
            test.evaluate(&h).unwrap(),
            TestReport::Collusion(_)
        ));
        assert_eq!(test.name(), "collusion-resilient");
    }
}
