//! Behavior testing — phase 1 of the two-phase assessment.
//!
//! A behavior test decides whether a transaction history is statistically
//! consistent with the *honest player* model: transactions are independent
//! Bernoulli trials, so the good-transaction counts of `m`-sized windows
//! must follow `B(m, p̂)` (§3 of the paper).
//!
//! Three schemes:
//!
//! | Scheme | Type | Catches | Paper |
//! |--------|------|---------|-------|
//! | Single | [`SingleBehaviorTest`] | grossly non-Bernoulli patterns | §3.2, Fig. 2 |
//! | Multi | [`MultiBehaviorTest`] | hibernating + periodic attacks | §3.3 |
//! | Collusion-resilient | [`CollusionResilientTest`] | colluder-boosted reputations | §4 |
//!
//! All three share calibrated thresholds through
//! [`hp_stats::ThresholdCalibrator`]; create one with [`shared_calibrator`]
//! and pass it to the `with_calibrator` constructors when running several
//! schemes side by side.

mod categorized;
mod collusion;
mod config;
mod engine;
mod multi;
mod multivalue;
mod report;
mod single;

pub use categorized::{CategorizedReport, CategorizedTest, Category};
pub use collusion::{CollusionResilientTest, CollusionTestDepth};
pub use config::{
    BehaviorTestConfig, BehaviorTestConfigBuilder, Correction, SuffixSchedule, WindowAlignment,
};
pub use multi::{MultiBehaviorTest, MultiTestMode};
pub use multivalue::{MultiValueBehaviorTest, MultiValueReport};
pub use report::{
    CollusionReport, MultiReport, SuffixReport, SupporterBaseStats, TestOutcome, TestReport,
    WindowTestReport,
};
pub use single::SingleBehaviorTest;

use crate::error::CoreError;
use crate::history::HistoryView;
#[cfg(test)]
use crate::history::TransactionHistory;
use hp_stats::ThresholdCalibrator;
use std::sync::Arc;

/// A behavior test: phase 1 of the two-phase trust assessment.
///
/// Implementations are deterministic given their (seeded) calibrator.
pub trait BehaviorTest {
    /// Tests whether `history` is consistent with the honest-player model.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] for statistical failures or
    /// configuration misuse; a *suspicious server is not an error* — it is
    /// reported through [`TestReport::outcome`].
    ///
    /// Takes any [`HistoryView`] — the reference row store and the
    /// columnar engine are interchangeable here (and must stay
    /// bit-identical; see `tests/columnar_equivalence.rs`).
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError>;

    /// A short stable name for reports and CSV headers.
    fn name(&self) -> &'static str;

    /// The window granularity `m` of the underlying distribution test, if
    /// any. Strategy-aware simulations (the paper's §5.1 attacker knows
    /// the testing algorithm) use this to reason one window ahead.
    fn window_size(&self) -> Option<u32> {
        None
    }
}

impl<T: BehaviorTest + ?Sized> BehaviorTest for &T {
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError> {
        (**self).evaluate(history)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn window_size(&self) -> Option<u32> {
        (**self).window_size()
    }
}

impl<T: BehaviorTest + ?Sized> BehaviorTest for Box<T> {
    fn evaluate(&self, history: &dyn HistoryView) -> Result<TestReport, CoreError> {
        (**self).evaluate(history)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn window_size(&self) -> Option<u32> {
        (**self).window_size()
    }
}

/// Builds a threshold calibrator from a test configuration, wrapped for
/// sharing between tests (shared cache = shared work).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use hp_core::testing::{
///     shared_calibrator, BehaviorTestConfig, MultiBehaviorTest, SingleBehaviorTest,
/// };
/// use std::sync::Arc;
///
/// let config = BehaviorTestConfig::default();
/// let cal = shared_calibrator(&config)?;
/// let single = SingleBehaviorTest::with_calibrator(config.clone(), Arc::clone(&cal))?;
/// let multi = MultiBehaviorTest::with_calibrator(config, cal)?;
/// # let _ = (single, multi);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
pub fn shared_calibrator(
    config: &BehaviorTestConfig,
) -> Result<Arc<ThresholdCalibrator>, CoreError> {
    config.validate()?;
    let calibrator = ThresholdCalibrator::new(config.calibration_config())?;
    // Build the interpolated surface (when configured) for the window
    // size this config tests at, so every consumer of a shared
    // calibrator — online service, offline reference, simulations —
    // serves from the same tier and verdicts stay bit-identical.
    calibrator.ensure_surface_for(config.window_size())?;
    Ok(Arc::new(calibrator))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServerId;

    #[test]
    fn shared_calibrator_validates_config() {
        let bad = BehaviorTestConfig::builder();
        // Builder validates on build, so construct an invalid config via
        // the unvalidated default + a manual check through validate().
        let config = bad.window_size(10).build().unwrap();
        assert!(shared_calibrator(&config).is_ok());
    }

    #[test]
    fn behavior_test_trait_objects_forward() {
        let single = SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), vec![true; 200]);
        let direct = single.evaluate(&h).unwrap();
        let by_ref = single.evaluate(&h).unwrap();
        assert_eq!(direct, by_ref);
        let boxed: Box<dyn BehaviorTest> = Box::new(single);
        assert_eq!(boxed.evaluate(&h).unwrap(), direct);
        assert_eq!(boxed.name(), "single");
    }
}
