//! Multi-valued feedback testing — the §3.1 multinomial extension.
//!
//! "In many applications feedback ratings are not binary … we only need to
//! replace binomial distributions in our framework with multinomial
//! distributions for multi-value feedbacks."
//!
//! A window of `m` transactions now yields a *count vector* over `c`
//! rating categories, distributed `Multinomial(m, p̂₁…p̂_c)` for an honest
//! player. Testing the joint distribution directly is impractical (the
//! support has `C(m+c−1, c−1)` points), so this module tests each
//! category's marginal — which is exactly `B(m, p̂_j)` — and combines the
//! verdicts with a Bonferroni correction across categories. A server is
//! suspicious if *any* category's window counts deviate.

use crate::error::CoreError;
use crate::testing::config::{BehaviorTestConfig, WindowAlignment};
use crate::testing::engine::run_range_test;
use crate::testing::report::{TestOutcome, WindowTestReport};
use crate::testing::shared_calibrator;
use hp_stats::{PrefixSums, StatsError, ThresholdCalibrator};
use std::sync::Arc;

/// The result of a multi-valued behavior test.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiValueReport {
    /// Aggregate verdict (suspicious if any category fails).
    pub outcome: TestOutcome,
    /// Per-category marginal reports, indexed by category.
    pub categories: Vec<WindowTestReport>,
    /// Empirical category frequencies p̂₁…p̂_c.
    pub frequencies: Vec<f64>,
}

/// Behavior testing for feedback that takes one of `c ≥ 2` values
/// (e.g. positive / neutral / negative).
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTestConfig, MultiValueBehaviorTest, TestOutcome};
/// use rand::RngExt;
///
/// let test = MultiValueBehaviorTest::new(BehaviorTestConfig::default(), 3)?;
///
/// // Honest: 80% positive (0), 15% neutral (1), 5% negative (2), i.i.d.
/// let mut rng = hp_stats::seeded_rng(3);
/// let ratings: Vec<usize> = (0..800)
///     .map(|_| {
///         let u: f64 = rng.random();
///         if u < 0.8 { 0 } else if u < 0.95 { 1 } else { 2 }
///     })
///     .collect();
/// let report = test.evaluate(&ratings)?;
/// assert_ne!(report.outcome, TestOutcome::Suspicious);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct MultiValueBehaviorTest {
    config: BehaviorTestConfig,
    calibrator: Arc<ThresholdCalibrator>,
    arity: usize,
}

impl MultiValueBehaviorTest {
    /// Creates a multi-valued test for ratings in `0..arity`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration
    /// or an arity below 2.
    pub fn new(config: BehaviorTestConfig, arity: usize) -> Result<Self, CoreError> {
        if arity < 2 {
            return Err(CoreError::InvalidConfig {
                reason: format!("multi-valued feedback needs ≥ 2 categories, got {arity}"),
            });
        }
        let calibrator = shared_calibrator(&config)?;
        Ok(MultiValueBehaviorTest {
            config,
            calibrator,
            arity,
        })
    }

    /// Number of rating categories.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Tests a sequence of category-valued ratings.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::OutOfSupport`] (wrapped) if a rating is
    /// `≥ arity`, or propagates statistical failures.
    pub fn evaluate(&self, ratings: &[usize]) -> Result<MultiValueReport, CoreError> {
        if let Some(&bad) = ratings.iter().find(|&&r| r >= self.arity) {
            return Err(CoreError::Stats(StatsError::OutOfSupport {
                value: bad as u64,
                max: self.arity as u64 - 1,
            }));
        }
        // Bonferroni across the category marginals.
        let per_category_confidence = if self.arity <= 1 {
            self.config.confidence()
        } else {
            1.0 - (1.0 - self.config.confidence()) / self.arity as f64
        };

        let n = ratings.len();
        let mut categories = Vec::with_capacity(self.arity);
        let mut frequencies = Vec::with_capacity(self.arity);
        let mut outcome = TestOutcome::Inconclusive;
        for cat in 0..self.arity {
            let prefix = PrefixSums::from_bools(ratings.iter().map(|&r| r == cat));
            frequencies.push(if n == 0 {
                0.0
            } else {
                prefix.total_good() as f64 / n as f64
            });
            let report = run_range_test(
                crate::history::ColumnRef::Prefix(&prefix),
                0,
                n,
                &self.config,
                &self.calibrator,
                per_category_confidence,
                WindowAlignment::Start,
            )?;
            match report.outcome {
                TestOutcome::Suspicious => outcome = TestOutcome::Suspicious,
                TestOutcome::Honest if outcome == TestOutcome::Inconclusive => {
                    outcome = TestOutcome::Honest;
                }
                _ => {}
            }
            categories.push(report);
        }
        Ok(MultiValueReport {
            outcome,
            categories,
            frequencies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn test(arity: usize) -> MultiValueBehaviorTest {
        MultiValueBehaviorTest::new(
            BehaviorTestConfig::builder()
                .calibration_trials(400)
                .build()
                .unwrap(),
            arity,
        )
        .unwrap()
    }

    fn honest_ratings(n: usize, probs: &[f64], seed: u64) -> Vec<usize> {
        let mut rng = hp_stats::seeded_rng(seed);
        (0..n)
            .map(|_| {
                let mut u: f64 = rng.random();
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        return i;
                    }
                    u -= p;
                }
                probs.len() - 1
            })
            .collect()
    }

    #[test]
    fn arity_validation() {
        let config = BehaviorTestConfig::default();
        assert!(MultiValueBehaviorTest::new(config.clone(), 1).is_err());
        assert!(MultiValueBehaviorTest::new(config, 2).is_ok());
    }

    #[test]
    fn rejects_out_of_range_rating() {
        let t = test(3);
        let err = t.evaluate(&[0, 1, 3]).unwrap_err();
        assert!(matches!(err, CoreError::Stats(StatsError::OutOfSupport { value: 3, .. })));
    }

    #[test]
    fn honest_three_valued_feedback_passes() {
        let t = test(3);
        let mut passes = 0;
        for seed in 0..15 {
            let ratings = honest_ratings(800, &[0.8, 0.15, 0.05], seed);
            let report = t.evaluate(&ratings).unwrap();
            assert_eq!(report.categories.len(), 3);
            if report.outcome == TestOutcome::Honest {
                passes += 1;
            }
        }
        assert!(passes >= 12, "honest multi-valued pass rate {passes}/15");
    }

    #[test]
    fn regime_change_in_neutral_band_is_flagged() {
        // Attack that binary testing cannot see: the attacker degrades
        // service from "positive" to "neutral" (never to "negative") for
        // the last stretch. A positive-vs-rest binary view changes, but a
        // subtler shift — neutral-heavy windows — also trips the neutral
        // category's marginal.
        let t = test(3);
        let mut ratings = honest_ratings(600, &[0.9, 0.07, 0.03], 5);
        ratings.extend(honest_ratings(200, &[0.35, 0.62, 0.03], 99));
        let report = t.evaluate(&ratings).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
    }

    #[test]
    fn frequencies_are_reported() {
        let t = test(2);
        let ratings = vec![0usize, 0, 1, 0];
        let report = t.evaluate(&ratings).unwrap();
        assert!((report.frequencies[0] - 0.75).abs() < 1e-12);
        assert!((report.frequencies[1] - 0.25).abs() < 1e-12);
        assert_eq!(report.outcome, TestOutcome::Inconclusive, "4 txns is too short");
    }

    #[test]
    fn binary_case_agrees_with_single_test_outcome() {
        use crate::testing::SingleBehaviorTest;
        use crate::{ServerId, TransactionHistory};
        // With arity 2, category-0 marginal is exactly the binary test;
        // verdicts must agree on a clearly-suspicious metronome input.
        let outcomes: Vec<bool> = (0..400).map(|i| i % 10 != 9).collect();
        let ratings: Vec<usize> = outcomes.iter().map(|&g| usize::from(!g)).collect();
        let t = test(2);
        let mv = t.evaluate(&ratings).unwrap();
        let single = SingleBehaviorTest::new(
            BehaviorTestConfig::builder()
                .calibration_trials(400)
                .build()
                .unwrap(),
        )
        .unwrap();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
        let sr = single.evaluate_detailed(&h).unwrap();
        assert_eq!(mv.outcome, TestOutcome::Suspicious);
        assert_eq!(sr.outcome, TestOutcome::Suspicious);
    }
}
