//! Categorized behavior testing — the §4 closing extension.
//!
//! "A server may not always provide uniform services to all the users,
//! even if they are honest. For example, an online movie server in the US
//! may provide good services to customers in North America, but not to
//! those in Africa … we may extend our scheme and apply statistical
//! modeling and testing to transactions in different categories."
//!
//! [`CategorizedTest`] partitions a history by a caller-supplied
//! classifier (region, transaction type, time-of-day, …) and runs a
//! behavior test per category. Clients interested in one category query
//! that category's verdict; the aggregate flags a server whose behavior is
//! inconsistent *within* any category — while tolerating quality
//! differences *between* categories that would raise false alerts in a
//! pooled test.

use crate::error::CoreError;
use crate::feedback::Feedback;
use crate::history::TransactionHistory;
use crate::testing::report::{TestOutcome, TestReport};
use crate::testing::BehaviorTest;
use std::collections::BTreeMap;

/// A category label (small, ordered, e.g. a region or service-type index).
pub type Category = u32;

/// The result of a categorized behavior test.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorizedReport {
    /// Suspicious if any category's test is suspicious.
    pub outcome: TestOutcome,
    /// Per-category verdicts, keyed by category label.
    pub per_category: BTreeMap<Category, TestReport>,
}

impl CategorizedReport {
    /// The verdict for one category, if that category had transactions.
    pub fn category(&self, category: Category) -> Option<&TestReport> {
        self.per_category.get(&category)
    }
}

/// Runs an inner behavior test separately on each transaction category.
///
/// # Examples
///
/// ```
/// use hp_core::testing::{
///     BehaviorTestConfig, CategorizedTest, SingleBehaviorTest, TestOutcome,
/// };
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
/// use rand::RngExt;
///
/// // Region 0 gets p = 0.97 service, region 1 gets p = 0.55 — honestly.
/// let mut rng = hp_stats::seeded_rng(9);
/// let mut h = TransactionHistory::new();
/// for t in 0..1200u64 {
///     let region = (t % 2) as u64;
///     let p = if region == 0 { 0.97 } else { 0.55 };
///     h.push(Feedback::new(
///         t,
///         ServerId::new(1),
///         ClientId::new(region * 100_000 + t),
///         Rating::from_good(rng.random::<f64>() < p),
///     ));
/// }
///
/// let inner = SingleBehaviorTest::new(BehaviorTestConfig::default())?;
/// let test = CategorizedTest::new(inner, |fb| (fb.client.value() / 100_000) as u32);
/// let report = test.evaluate(&h)?;
/// // Both regions are internally consistent: honest per category …
/// assert_eq!(report.outcome, TestOutcome::Honest);
/// // … even though the pooled mixture would look non-binomial.
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct CategorizedTest<B, F> {
    inner: B,
    classify: F,
}

impl<B, F> CategorizedTest<B, F>
where
    B: BehaviorTest,
    F: Fn(&Feedback) -> Category,
{
    /// Creates a categorized test from an inner behavior test and a
    /// feedback classifier.
    pub fn new(inner: B, classify: F) -> Self {
        CategorizedTest { inner, classify }
    }

    /// The inner behavior test.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Runs the inner test on every category's sub-history.
    ///
    /// # Errors
    ///
    /// Propagates inner-test failures.
    pub fn evaluate(&self, history: &TransactionHistory) -> Result<CategorizedReport, CoreError> {
        let mut partitions: BTreeMap<Category, TransactionHistory> = BTreeMap::new();
        for fb in history.iter() {
            partitions
                .entry((self.classify)(fb))
                .or_default()
                .push(*fb);
        }
        let mut per_category = BTreeMap::new();
        let mut outcome = TestOutcome::Inconclusive;
        for (category, sub) in partitions {
            let report = self.inner.evaluate(&sub)?;
            match report.outcome() {
                TestOutcome::Suspicious => outcome = TestOutcome::Suspicious,
                TestOutcome::Honest if outcome == TestOutcome::Inconclusive => {
                    outcome = TestOutcome::Honest;
                }
                _ => {}
            }
            per_category.insert(category, report);
        }
        Ok(CategorizedReport {
            outcome,
            per_category,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ClientId, ServerId};
    use crate::testing::{BehaviorTestConfig, SingleBehaviorTest};
    use crate::Rating;
    use rand::RngExt;

    fn single() -> SingleBehaviorTest {
        SingleBehaviorTest::new(
            BehaviorTestConfig::builder()
                .calibration_trials(400)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    /// Region encoded in the client id's hundred-thousands digit.
    fn region_of(fb: &Feedback) -> Category {
        (fb.client.value() / 100_000) as u32
    }

    fn regional_history(
        n: usize,
        p_by_region: &[f64],
        seed: u64,
    ) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        let mut h = TransactionHistory::new();
        for t in 0..n as u64 {
            let region = rng.random_range(0..p_by_region.len() as u64);
            let p = p_by_region[region as usize];
            h.push(Feedback::new(
                t,
                ServerId::new(1),
                ClientId::new(region * 100_000 + t),
                Rating::from_good(rng.random::<f64>() < p),
            ));
        }
        h
    }

    #[test]
    fn per_region_honesty_passes_despite_quality_gap() {
        let test = CategorizedTest::new(single(), region_of);
        let h = regional_history(1600, &[0.97, 0.55], 1);
        let report = test.evaluate(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Honest, "{report:?}");
        assert_eq!(report.per_category.len(), 2);
        // Each region's own verdict is available to interested clients.
        assert!(report.category(0).is_some());
        assert!(report.category(1).is_some());
        assert!(report.category(9).is_none());
    }

    #[test]
    fn attack_inside_one_category_is_flagged() {
        let test = CategorizedTest::new(single(), region_of);
        // Region 0 honest; region 1 runs a metronome pattern.
        let mut rng = hp_stats::seeded_rng(2);
        let mut h = TransactionHistory::new();
        let mut r1_count = 0u64;
        for t in 0..1600u64 {
            let region = t % 2;
            let good = if region == 0 {
                rng.random::<f64>() < 0.95
            } else {
                r1_count += 1;
                !r1_count.is_multiple_of(10)
            };
            h.push(Feedback::new(
                t,
                ServerId::new(1),
                ClientId::new(region * 100_000 + t),
                Rating::from_good(good),
            ));
        }
        let report = test.evaluate(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Suspicious);
        assert_eq!(
            report.category(1).unwrap().outcome(),
            TestOutcome::Suspicious
        );
        assert_ne!(
            report.category(0).unwrap().outcome(),
            TestOutcome::Suspicious
        );
    }

    #[test]
    fn empty_history_is_inconclusive() {
        let test = CategorizedTest::new(single(), region_of);
        let report = test.evaluate(&TransactionHistory::new()).unwrap();
        assert_eq!(report.outcome, TestOutcome::Inconclusive);
        assert!(report.per_category.is_empty());
    }

    #[test]
    fn all_short_categories_are_inconclusive() {
        let test = CategorizedTest::new(single(), region_of);
        let h = regional_history(60, &[0.9, 0.9, 0.9], 3);
        let report = test.evaluate(&h).unwrap();
        assert_eq!(report.outcome, TestOutcome::Inconclusive);
    }
}
