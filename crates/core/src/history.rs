//! Ordered transaction histories with O(1) range statistics.
//!
//! [`TransactionHistory`] stores a server's feedback sequence together with
//! prefix sums of good transactions and a per-client index. Those two
//! auxiliary structures are what make the paper's algorithms efficient:
//!
//! * any window count `G_i` and any suffix's `p̂` are O(1)
//!   ([`TransactionHistory::count_range`]), which turns the naive O(n²)
//!   multi-test into the O(n) optimized variant;
//! * the collusion-resilient reordering (§4) groups feedback by issuer in
//!   O(n) using the per-client index.

use crate::feedback::{Feedback, Rating};
use crate::id::{ClientId, ServerId};
use hp_stats::{PrefixSums, StatsError};
use std::collections::HashMap;

/// A server's transaction history, in transaction order.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
///
/// let mut h = TransactionHistory::new();
/// h.push(Feedback::new(0, ServerId::new(1), ClientId::new(5), Rating::Positive));
/// h.push(Feedback::new(1, ServerId::new(1), ClientId::new(6), Rating::Negative));
/// assert_eq!(h.len(), 2);
/// assert_eq!(h.good_count(), 1);
/// assert_eq!(h.p_hat(), Some(0.5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionHistory {
    feedbacks: Vec<Feedback>,
    prefix: PrefixSums,
    by_client: HashMap<ClientId, Vec<usize>>,
}

impl TransactionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        TransactionHistory::default()
    }

    /// Creates an empty history with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TransactionHistory {
            feedbacks: Vec::with_capacity(capacity),
            prefix: PrefixSums::new(),
            by_client: HashMap::new(),
        }
    }

    /// Builds a synthetic history from good/bad outcomes.
    ///
    /// Times are assigned sequentially and all feedback is attributed to a
    /// single placeholder client, so this is only appropriate where issuer
    /// identity does not matter (i.e. everywhere except collusion testing).
    pub fn from_outcomes<I>(server: ServerId, outcomes: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let client = ClientId::new(0);
        let mut h = TransactionHistory::new();
        for (t, good) in outcomes.into_iter().enumerate() {
            h.push(Feedback::new(t as u64, server, client, Rating::from_good(good)));
        }
        h
    }

    /// Appends a feedback record.
    pub fn push(&mut self, feedback: Feedback) {
        let idx = self.feedbacks.len();
        self.prefix.push(feedback.is_good());
        self.by_client.entry(feedback.client).or_default().push(idx);
        self.feedbacks.push(feedback);
    }

    /// Removes and returns the most recent feedback.
    ///
    /// Together with [`TransactionHistory::push`], this supports the
    /// append–test–revert pattern the strategic attacker (and any what-if
    /// analysis) needs, in O(1).
    pub fn pop(&mut self) -> Option<Feedback> {
        let feedback = self.feedbacks.pop()?;
        self.prefix.pop();
        let idx_list = self
            .by_client
            .get_mut(&feedback.client)
            .expect("per-client index tracks every pushed feedback");
        idx_list.pop();
        if idx_list.is_empty() {
            self.by_client.remove(&feedback.client);
        }
        Some(feedback)
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.feedbacks.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.feedbacks.is_empty()
    }

    /// Total number of good transactions.
    pub fn good_count(&self) -> u64 {
        self.prefix.total_good()
    }

    /// Total number of bad transactions.
    pub fn bad_count(&self) -> u64 {
        self.len() as u64 - self.good_count()
    }

    /// Overall fraction of good transactions (`None` when empty).
    ///
    /// This is the paper's `p̂ = Σ G_i / n` estimator.
    pub fn p_hat(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.good_count() as f64 / self.len() as f64)
        }
    }

    /// The feedback at position `i` (transaction order).
    pub fn get(&self, i: usize) -> Option<&Feedback> {
        self.feedbacks.get(i)
    }

    /// The most recent feedback.
    pub fn last(&self) -> Option<&Feedback> {
        self.feedbacks.last()
    }

    /// All feedback records in transaction order.
    pub fn feedbacks(&self) -> &[Feedback] {
        &self.feedbacks
    }

    /// Iterates over feedback records in transaction order.
    pub fn iter(&self) -> std::slice::Iter<'_, Feedback> {
        self.feedbacks.iter()
    }

    /// Iterates over good/bad outcomes in transaction order.
    pub fn outcomes(&self) -> impl Iterator<Item = bool> + '_ {
        self.feedbacks.iter().map(|f| f.is_good())
    }

    /// The underlying prefix sums (for O(1) range statistics).
    pub fn prefix_sums(&self) -> &PrefixSums {
        &self.prefix
    }

    /// Number of good transactions in the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (see [`PrefixSums::count_range`]).
    pub fn count_range(&self, start: usize, end: usize) -> u64 {
        self.prefix.count_range(start, end)
    }

    /// Fraction of good transactions in `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty range.
    pub fn rate_range(&self, start: usize, end: usize) -> Result<f64, StatsError> {
        self.prefix.rate_range(start, end)
    }

    /// Window counts of size `m` over `[start, end)`, aligned to `start`
    /// (trailing partial window dropped).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `m == 0`.
    pub fn window_counts(
        &self,
        start: usize,
        end: usize,
        m: usize,
    ) -> Result<Vec<u32>, StatsError> {
        self.prefix.window_counts(start, end, m)
    }

    /// Number of distinct feedback issuers — the size of the server's
    /// *supporter base* in the paper's §4 terminology (counting all
    /// issuers, not only positive ones; see
    /// [`crate::testing::SupporterBaseStats`] for the refined view).
    pub fn distinct_clients(&self) -> usize {
        self.by_client.len()
    }

    /// Number of feedbacks issued by `client`.
    pub fn client_count(&self, client: ClientId) -> usize {
        self.by_client.get(&client).map_or(0, Vec::len)
    }

    /// All `(client, feedback-count)` pairs, most frequent first.
    ///
    /// Ties are broken by client id so the ordering — and therefore the
    /// collusion-resilient test built on it — is deterministic.
    pub fn client_frequencies(&self) -> Vec<(ClientId, usize)> {
        let mut freqs: Vec<(ClientId, usize)> = self
            .by_client
            .iter()
            .map(|(&c, idxs)| (c, idxs.len()))
            .collect();
        freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        freqs
    }

    /// The §4 issuer-frequency permutation: indexes of all feedback,
    /// grouped by issuer with the most frequent issuers first, and
    /// transaction order preserved inside each group.
    pub fn issuer_frequency_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        for (client, _) in self.client_frequencies() {
            order.extend_from_slice(&self.by_client[&client]);
        }
        order
    }

    /// Good/bad outcomes in issuer-frequency order — the sequence the
    /// collusion-resilient behavior test runs on.
    pub fn reordered_outcomes(&self) -> Vec<bool> {
        self.issuer_frequency_order()
            .into_iter()
            .map(|i| self.feedbacks[i].is_good())
            .collect()
    }

    /// The server that this history belongs to, if non-empty and uniform.
    ///
    /// Returns `None` for an empty history or one that mixes servers
    /// (histories are normally per-server; mixing indicates a caller bug
    /// worth surfacing).
    pub fn server(&self) -> Option<ServerId> {
        let first = self.feedbacks.first()?.server;
        if self.feedbacks.iter().all(|f| f.server == first) {
            Some(first)
        } else {
            None
        }
    }
}

impl FromIterator<Feedback> for TransactionHistory {
    fn from_iter<I: IntoIterator<Item = Feedback>>(iter: I) -> Self {
        let mut h = TransactionHistory::new();
        for f in iter {
            h.push(f);
        }
        h
    }
}

impl Extend<Feedback> for TransactionHistory {
    fn extend<I: IntoIterator<Item = Feedback>>(&mut self, iter: I) {
        for f in iter {
            self.push(f);
        }
    }
}

impl<'a> IntoIterator for &'a TransactionHistory {
    type Item = &'a Feedback;
    type IntoIter = std::slice::Iter<'a, Feedback>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(t: u64, client: u64, good: bool) -> Feedback {
        Feedback::new(t, ServerId::new(1), ClientId::new(client), Rating::from_good(good))
    }

    #[test]
    fn push_maintains_counts() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 1, true));
        h.push(fb(1, 2, false));
        h.push(fb(2, 1, true));
        assert_eq!(h.len(), 3);
        assert_eq!(h.good_count(), 2);
        assert_eq!(h.bad_count(), 1);
        assert_eq!(h.p_hat(), Some(2.0 / 3.0));
        assert_eq!(h.distinct_clients(), 2);
        assert_eq!(h.client_count(ClientId::new(1)), 2);
    }

    #[test]
    fn pop_reverses_push_fully() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 1, true));
        let snapshot_len = h.len();
        let snapshot_clients = h.distinct_clients();
        h.push(fb(1, 9, false));
        let popped = h.pop().unwrap();
        assert_eq!(popped.client, ClientId::new(9));
        assert_eq!(h.len(), snapshot_len);
        assert_eq!(h.distinct_clients(), snapshot_clients);
        assert_eq!(h.client_count(ClientId::new(9)), 0);
        assert_eq!(h.good_count(), 1);
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut h = TransactionHistory::new();
        assert!(h.pop().is_none());
    }

    #[test]
    fn from_outcomes_builds_sequential_history() {
        let h = TransactionHistory::from_outcomes(ServerId::new(3), [true, false, true]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.good_count(), 2);
        assert_eq!(h.get(1).unwrap().time, 1);
        assert_eq!(h.server(), Some(ServerId::new(3)));
    }

    #[test]
    fn range_statistics_match_direct_computation() {
        let outcomes = [true, true, false, true, false, false, true, true];
        let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
        assert_eq!(h.count_range(0, 8), 5);
        assert_eq!(h.count_range(2, 6), 1);
        assert!((h.rate_range(2, 6).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(h.window_counts(0, 8, 4).unwrap(), vec![3, 2]);
        // Offset windows (suffix view)
        assert_eq!(h.window_counts(2, 8, 3).unwrap(), vec![1, 2]);
    }

    #[test]
    fn client_frequencies_sorted_desc_with_stable_ties() {
        let mut h = TransactionHistory::new();
        for t in 0..3 {
            h.push(fb(t, 7, true));
        }
        for t in 3..5 {
            h.push(fb(t, 2, true));
        }
        for t in 5..7 {
            h.push(fb(t, 1, false));
        }
        let freqs = h.client_frequencies();
        assert_eq!(
            freqs,
            vec![
                (ClientId::new(7), 3),
                (ClientId::new(1), 2), // tie with client 2 broken by id
                (ClientId::new(2), 2),
            ]
        );
    }

    #[test]
    fn issuer_frequency_order_groups_and_preserves_time() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 5, true)); // idx 0
        h.push(fb(1, 9, false)); // idx 1
        h.push(fb(2, 5, true)); // idx 2
        h.push(fb(3, 5, false)); // idx 3
        h.push(fb(4, 9, true)); // idx 4
        let order = h.issuer_frequency_order();
        // client 5 (3 feedbacks) first, then client 9 (2), time order inside.
        assert_eq!(order, vec![0, 2, 3, 1, 4]);
        assert_eq!(
            h.reordered_outcomes(),
            vec![true, true, false, false, true]
        );
    }

    #[test]
    fn server_detects_mixed_histories() {
        let mut h = TransactionHistory::new();
        h.push(Feedback::new(0, ServerId::new(1), ClientId::new(1), Rating::Positive));
        h.push(Feedback::new(1, ServerId::new(2), ClientId::new(1), Rating::Positive));
        assert_eq!(h.server(), None);
        assert_eq!(TransactionHistory::new().server(), None);
    }

    #[test]
    fn collect_and_extend() {
        let h: TransactionHistory = (0..5).map(|t| fb(t, t, t % 2 == 0)).collect();
        assert_eq!(h.len(), 5);
        let mut h2 = TransactionHistory::new();
        h2.extend(h.iter().copied());
        assert_eq!(h2.len(), 5);
        assert_eq!(h2.good_count(), h.good_count());
    }

    #[test]
    fn outcomes_iterator_matches_feedback() {
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, false]);
        let outs: Vec<bool> = h.outcomes().collect();
        assert_eq!(outs, vec![true, false]);
    }
}
