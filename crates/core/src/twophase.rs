//! The two-phase trust assessor — the paper's Fig. 1 pipeline.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::testing::{BehaviorTest, TestOutcome, TestReport};
use crate::trust::{TrustFunction, TrustValue};

/// What to do with servers whose histories are too short to test
/// statistically.
///
/// The paper's position (§7): short-history servers are "widely considered
/// high-risk groups"; for low-risk transactions "we may relax behavior
/// testing so that we can choose service from new servers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShortHistoryPolicy {
    /// Hand the history to the trust function anyway, but mark the
    /// assessment as needing review (default — mirrors "prompted to users
    /// for further examination").
    #[default]
    Review,
    /// Trust the phase-2 result unconditionally (for low-risk
    /// transactions).
    Trust,
    /// Reject untestable servers outright (for high-risk transactions).
    Reject,
}

/// The outcome of a two-phase assessment.
#[derive(Debug, Clone, PartialEq)]
pub enum Assessment {
    /// Phase 1 passed; `trust` is the phase-2 trust value.
    Accepted {
        /// The phase-2 trust value.
        trust: TrustValue,
        /// The phase-1 report.
        report: TestReport,
    },
    /// Phase 1 flagged the history as inconsistent with the honest-player
    /// model; no trust value is produced ("Alert … Abort" in Fig. 2).
    Rejected {
        /// The phase-1 report.
        report: TestReport,
    },
    /// The history was too short to test and the policy asks for human
    /// review; `trust` is phase 2's (low-confidence) opinion.
    NeedsReview {
        /// The phase-2 trust value, to be taken with caution.
        trust: TrustValue,
        /// The phase-1 report.
        report: TestReport,
    },
}

impl Assessment {
    /// Whether the server was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Assessment::Accepted { .. })
    }

    /// Whether the server was rejected as suspicious.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Assessment::Rejected { .. })
    }

    /// The trust value, if one was produced.
    pub fn trust(&self) -> Option<TrustValue> {
        match self {
            Assessment::Accepted { trust, .. } | Assessment::NeedsReview { trust, .. } => {
                Some(*trust)
            }
            Assessment::Rejected { .. } => None,
        }
    }

    /// The phase-1 report.
    pub fn report(&self) -> &TestReport {
        match self {
            Assessment::Accepted { report, .. }
            | Assessment::Rejected { report }
            | Assessment::NeedsReview { report, .. } => report,
        }
    }
}

/// Two-phase trust assessment: behavior screening, then a trust function.
///
/// "Only when the first phase is passed, will we apply existing trust
/// functions to determine whether the server is a good service provider"
/// (§1).
///
/// # Examples
///
/// ```
/// use hp_core::testing::{BehaviorTestConfig, MultiBehaviorTest};
/// use hp_core::trust::WeightedTrust;
/// use hp_core::{ServerId, TransactionHistory, TwoPhaseAssessor};
/// use rand::RngExt;
///
/// let assessor = TwoPhaseAssessor::new(
///     MultiBehaviorTest::new(BehaviorTestConfig::default())?,
///     WeightedTrust::new(0.5)?,
/// );
/// let mut rng = hp_stats::seeded_rng(1);
/// let honest = TransactionHistory::from_outcomes(
///     ServerId::new(7),
///     (0..600).map(|_| rng.random::<f64>() < 0.95),
/// );
/// let assessment = assessor.assess(&honest)?;
/// assert!(assessment.is_accepted());
/// assert!(assessment.trust().unwrap().value() > 0.5);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct TwoPhaseAssessor<B, T> {
    behavior: B,
    trust: T,
    short_history: ShortHistoryPolicy,
}

impl<B: BehaviorTest, T: TrustFunction> TwoPhaseAssessor<B, T> {
    /// Creates an assessor from a behavior test and a trust function, with
    /// the default [`ShortHistoryPolicy::Review`].
    pub fn new(behavior: B, trust: T) -> Self {
        TwoPhaseAssessor {
            behavior,
            trust,
            short_history: ShortHistoryPolicy::default(),
        }
    }

    /// Sets the short-history policy (builder style).
    pub fn with_short_history_policy(mut self, policy: ShortHistoryPolicy) -> Self {
        self.short_history = policy;
        self
    }

    /// The phase-1 behavior test.
    pub fn behavior_test(&self) -> &B {
        &self.behavior
    }

    /// The phase-2 trust function.
    pub fn trust_function(&self) -> &T {
        &self.trust
    }

    /// The short-history policy.
    pub fn short_history_policy(&self) -> ShortHistoryPolicy {
        self.short_history
    }

    /// Runs the full two-phase assessment.
    ///
    /// # Errors
    ///
    /// Propagates behavior-test failures ([`CoreError`]); a suspicious
    /// server is *not* an error and is reported as
    /// [`Assessment::Rejected`].
    pub fn assess(&self, history: &impl HistoryView) -> Result<Assessment, CoreError> {
        let report = self.behavior.evaluate(history)?;
        match report.outcome() {
            TestOutcome::Suspicious => Ok(Assessment::Rejected { report }),
            TestOutcome::Honest => Ok(Assessment::Accepted {
                trust: self.trust.trust(history),
                report,
            }),
            TestOutcome::Inconclusive => match self.short_history {
                ShortHistoryPolicy::Reject => Ok(Assessment::Rejected { report }),
                ShortHistoryPolicy::Trust => Ok(Assessment::Accepted {
                    trust: self.trust.trust(history),
                    report,
                }),
                ShortHistoryPolicy::Review => Ok(Assessment::NeedsReview {
                    trust: self.trust.trust(history),
                    report,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;
    use crate::testing::{BehaviorTestConfig, SingleBehaviorTest};
    use crate::trust::AverageTrust;
    use rand::RngExt;

    fn assessor() -> TwoPhaseAssessor<SingleBehaviorTest, AverageTrust> {
        TwoPhaseAssessor::new(
            SingleBehaviorTest::new(BehaviorTestConfig::default()).unwrap(),
            AverageTrust::default(),
        )
    }

    fn honest(n: usize, seed: u64) -> TransactionHistory {
        let mut rng = hp_stats::seeded_rng(seed);
        TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..n).map(|_| rng.random::<f64>() < 0.9),
        )
    }

    #[test]
    fn honest_server_accepted_with_trust_value() {
        let a = assessor();
        let h = honest(600, 1);
        let assessment = a.assess(&h).unwrap();
        assert!(assessment.is_accepted());
        let t = assessment.trust().unwrap().value();
        assert!((t - 0.9).abs() < 0.05, "trust {t}");
    }

    #[test]
    fn suspicious_server_rejected_without_trust() {
        let a = assessor();
        let h = TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..400).map(|i| i % 10 != 9), // metronome attacker
        );
        let assessment = a.assess(&h).unwrap();
        assert!(assessment.is_rejected());
        assert_eq!(assessment.trust(), None);
        assert!(assessment.report().is_suspicious());
    }

    #[test]
    fn short_history_policies() {
        let h = honest(30, 2);

        let review = assessor();
        assert!(matches!(
            review.assess(&h).unwrap(),
            Assessment::NeedsReview { .. }
        ));

        let trust = assessor().with_short_history_policy(ShortHistoryPolicy::Trust);
        assert!(trust.assess(&h).unwrap().is_accepted());

        let reject = assessor().with_short_history_policy(ShortHistoryPolicy::Reject);
        assert!(reject.assess(&h).unwrap().is_rejected());
    }

    #[test]
    fn needs_review_still_carries_trust_opinion() {
        let a = assessor();
        let h = honest(30, 3);
        let assessment = a.assess(&h).unwrap();
        assert!(assessment.trust().is_some());
        assert!(!assessment.is_accepted());
        assert!(!assessment.is_rejected());
    }

    #[test]
    fn accessors_expose_components() {
        let a = assessor().with_short_history_policy(ShortHistoryPolicy::Reject);
        assert_eq!(a.behavior_test().name(), "single");
        assert_eq!(a.trust_function().name(), "average");
        assert_eq!(a.short_history_policy(), ShortHistoryPolicy::Reject);
    }
}
