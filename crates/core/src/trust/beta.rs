//! The beta reputation trust function.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::trust::{TrustFunction, TrustValue};

/// The beta reputation system of Ismail & Jøsang (Bled'02), one of the
/// decay-family baselines the paper cites (§6): trust is the mean of a
/// `Beta(α₀ + good, β₀ + bad)` posterior,
///
/// ```text
/// T = (good + α₀) / (n + α₀ + β₀)
/// ```
///
/// With the default uniform prior `α₀ = β₀ = 1`, an empty history yields
/// the neutral value 0.5 and the estimate is gracefully smoothed for short
/// histories — the property that motivates its use over the raw average.
///
/// # Examples
///
/// ```
/// use hp_core::trust::{BetaTrust, TrustFunction};
/// use hp_core::{ServerId, TransactionHistory};
///
/// let f = BetaTrust::default();
/// let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, true, true]);
/// assert_eq!(f.trust(&h).value(), 0.8); // (3+1)/(3+2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaTrust {
    alpha0: f64,
    beta0: f64,
}

impl BetaTrust {
    /// Creates a beta trust function with prior pseudo-counts `alpha0`
    /// (good) and `beta0` (bad).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless both priors are
    /// positive and finite.
    pub fn new(alpha0: f64, beta0: f64) -> Result<Self, CoreError> {
        if !(alpha0 > 0.0 && alpha0.is_finite() && beta0 > 0.0 && beta0.is_finite()) {
            return Err(CoreError::InvalidConfig {
                reason: format!("beta priors must be positive, got α₀={alpha0}, β₀={beta0}"),
            });
        }
        Ok(BetaTrust { alpha0, beta0 })
    }

    /// Prior good pseudo-count α₀.
    pub fn alpha0(&self) -> f64 {
        self.alpha0
    }

    /// Prior bad pseudo-count β₀.
    pub fn beta0(&self) -> f64 {
        self.beta0
    }
}

impl Default for BetaTrust {
    /// The uniform prior `Beta(1, 1)`.
    fn default() -> Self {
        BetaTrust {
            alpha0: 1.0,
            beta0: 1.0,
        }
    }
}

impl BetaTrust {
    /// The full posterior `Beta(α₀ + good, β₀ + bad)` for a history —
    /// richer than the point estimate [`TrustFunction::trust`] returns.
    ///
    /// # Errors
    ///
    /// Never fails for a validated `BetaTrust`; the `Result` mirrors the
    /// underlying distribution constructor.
    pub fn posterior(
        &self,
        history: &dyn HistoryView,
    ) -> Result<hp_stats::BetaDist, CoreError> {
        Ok(hp_stats::BetaDist::new(
            self.alpha0 + history.good_count() as f64,
            self.beta0 + history.bad_count() as f64,
        )?)
    }

    /// Equal-tailed credible interval for the server's trustworthiness.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`]-class errors for a level
    /// outside `(0, 1)` (via [`hp_stats::StatsError`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use hp_core::trust::BetaTrust;
    /// use hp_core::{ServerId, TransactionHistory};
    ///
    /// let h = TransactionHistory::from_outcomes(
    ///     ServerId::new(1),
    ///     (0..100).map(|i| i % 10 != 0),
    /// );
    /// let (lo, hi) = BetaTrust::default().credible_interval(&h, 0.95)?;
    /// assert!(lo < 0.9 && 0.9 < hi);
    /// # Ok::<(), hp_core::CoreError>(())
    /// ```
    pub fn credible_interval(
        &self,
        history: &dyn HistoryView,
        level: f64,
    ) -> Result<(f64, f64), CoreError> {
        Ok(self.posterior(history)?.credible_interval(level)?)
    }
}

impl TrustFunction for BetaTrust {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        let good = history.good_count() as f64;
        let n = history.len() as f64;
        TrustValue::saturating((good + self.alpha0) / (n + self.alpha0 + self.beta0))
    }

    fn name(&self) -> &'static str {
        "beta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;

    #[test]
    fn prior_validation() {
        assert!(BetaTrust::new(0.0, 1.0).is_err());
        assert!(BetaTrust::new(1.0, -1.0).is_err());
        assert!(BetaTrust::new(f64::INFINITY, 1.0).is_err());
        assert!(BetaTrust::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn empty_history_is_prior_mean() {
        let f = BetaTrust::new(2.0, 3.0).unwrap();
        assert!((f.trust(&TransactionHistory::new()).value() - 0.4).abs() < 1e-12);
        assert_eq!(
            BetaTrust::default().trust(&TransactionHistory::new()),
            TrustValue::NEUTRAL
        );
    }

    #[test]
    fn converges_to_average_with_data() {
        let f = BetaTrust::default();
        let avg = crate::trust::AverageTrust::default();
        let outcomes: Vec<bool> = (0..10_000).map(|i| i % 10 != 0).collect();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
        let beta_v = f.trust(&h).value();
        let avg_v = avg.trust(&h).value();
        assert!((beta_v - avg_v).abs() < 1e-3);
    }

    #[test]
    fn credible_interval_narrows_with_data() {
        let f = BetaTrust::default();
        let short = TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..20).map(|i| i % 10 != 0),
        );
        let long = TransactionHistory::from_outcomes(
            ServerId::new(1),
            (0..2000).map(|i| i % 10 != 0),
        );
        let (lo_s, hi_s) = f.credible_interval(&short, 0.95).unwrap();
        let (lo_l, hi_l) = f.credible_interval(&long, 0.95).unwrap();
        assert!(hi_s - lo_s > hi_l - lo_l, "more data, tighter interval");
        assert!(lo_l < 0.9 && 0.9 < hi_l);
        assert!(f.credible_interval(&long, 1.5).is_err());
    }

    #[test]
    fn smoother_than_average_on_short_histories() {
        // One good transaction: average says 1.0, beta hedges.
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true]);
        let beta_v = BetaTrust::default().trust(&h).value();
        assert!((beta_v - 2.0 / 3.0).abs() < 1e-12);
    }
}
