//! Streaming trust evaluators with O(1) updates and O(1) what-if peeks.
//!
//! The strategic attacker of §5.1 evaluates, before *every* transaction,
//! the trust value the system would assign if it cheated next. Recomputing
//! a trust function from scratch makes that loop quadratic; these states
//! keep it linear.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::trust::{TrustValue, WeightedTrust};

/// A trust evaluator that can be advanced one rating at a time and asked
/// what a hypothetical next rating would do.
pub trait IncrementalTrust {
    /// Advances the state with one observed rating.
    fn update(&mut self, good: bool);

    /// The current trust value.
    fn current(&self) -> TrustValue;

    /// The trust value that [`IncrementalTrust::update`] with `good` would
    /// produce, without changing the state.
    fn peek(&self, good: bool) -> TrustValue;

    /// Number of ratings observed so far.
    fn transactions(&self) -> u64;
}

/// Streaming counterpart of [`crate::trust::AverageTrust`].
///
/// # Examples
///
/// ```
/// use hp_core::trust::incremental::{AverageTrustState, IncrementalTrust};
///
/// let mut s = AverageTrustState::new();
/// s.update(true);
/// s.update(true);
/// s.update(false);
/// assert!((s.current().value() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((s.peek(false).value() - 0.5).abs() < 1e-12);
/// assert_eq!(s.transactions(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AverageTrustState {
    good: u64,
    total: u64,
}

impl AverageTrustState {
    /// Creates an empty state (neutral trust).
    pub fn new() -> Self {
        AverageTrustState::default()
    }

    /// Initializes the state from an existing history.
    pub fn from_history(history: &dyn HistoryView) -> Self {
        AverageTrustState {
            good: history.good_count(),
            total: history.len() as u64,
        }
    }

    fn value(good: u64, total: u64) -> TrustValue {
        if total == 0 {
            TrustValue::NEUTRAL
        } else {
            TrustValue::saturating(good as f64 / total as f64)
        }
    }

    /// The raw `(good, total)` counters (snapshot payload; round-trips
    /// through [`AverageTrustState::from_raw_parts`]).
    pub fn raw_parts(&self) -> (u64, u64) {
        (self.good, self.total)
    }

    /// Rebuilds a state from its raw counters, or `None` when they are
    /// inconsistent (`good > total` can never arise from updates).
    pub fn from_raw_parts(good: u64, total: u64) -> Option<Self> {
        (good <= total).then_some(AverageTrustState { good, total })
    }
}

impl IncrementalTrust for AverageTrustState {
    fn update(&mut self, good: bool) {
        self.good += u64::from(good);
        self.total += 1;
    }

    fn current(&self) -> TrustValue {
        Self::value(self.good, self.total)
    }

    fn peek(&self, good: bool) -> TrustValue {
        Self::value(self.good + u64::from(good), self.total + 1)
    }

    fn transactions(&self) -> u64 {
        self.total
    }
}

/// Streaming counterpart of [`WeightedTrust`].
///
/// # Examples
///
/// ```
/// use hp_core::trust::incremental::{IncrementalTrust, WeightedTrustState};
///
/// let mut s = WeightedTrustState::new(0.5)?;
/// s.update(true); // 0.75
/// assert!((s.peek(false).value() - 0.375).abs() < 1e-12);
/// assert!((s.current().value() - 0.75).abs() < 1e-12);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedTrustState {
    lambda: f64,
    r: f64,
    count: u64,
}

impl WeightedTrustState {
    /// Creates a state with mixing factor `lambda` and a neutral start.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `lambda ∈ (0, 1]`.
    pub fn new(lambda: f64) -> Result<Self, CoreError> {
        // Reuse WeightedTrust's validation so the rules stay identical.
        let f = WeightedTrust::new(lambda)?;
        Ok(WeightedTrustState {
            lambda: f.lambda(),
            r: f.initial().value(),
            count: 0,
        })
    }

    /// Initializes the state by replaying an existing history.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `lambda ∈ (0, 1]`.
    pub fn from_history(lambda: f64, history: &dyn HistoryView) -> Result<Self, CoreError> {
        let mut s = Self::new(lambda)?;
        for i in 0..history.len() {
            s.update(history.outcome(i));
        }
        Ok(s)
    }

    /// The raw `(lambda, r, count)` fields. Serialize the floats via
    /// `to_bits` so a snapshot round-trip through
    /// [`WeightedTrustState::from_raw_parts`] is bit-exact.
    pub fn raw_parts(&self) -> (f64, f64, u64) {
        (self.lambda, self.r, self.count)
    }

    /// Rebuilds a state from its raw fields.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `lambda ∈ (0, 1]` and
    /// `r` is finite — the only values updates can ever produce.
    pub fn from_raw_parts(lambda: f64, r: f64, count: u64) -> Result<Self, CoreError> {
        let _ = WeightedTrust::new(lambda)?;
        if !r.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: "weighted trust state r must be finite".into(),
            });
        }
        Ok(WeightedTrustState { lambda, r, count })
    }
}

impl IncrementalTrust for WeightedTrustState {
    fn update(&mut self, good: bool) {
        let f = if good { 1.0 } else { 0.0 };
        self.r = self.lambda * f + (1.0 - self.lambda) * self.r;
        self.count += 1;
    }

    fn current(&self) -> TrustValue {
        TrustValue::saturating(self.r)
    }

    fn peek(&self, good: bool) -> TrustValue {
        let f = if good { 1.0 } else { 0.0 };
        TrustValue::saturating(self.lambda * f + (1.0 - self.lambda) * self.r)
    }

    fn transactions(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;
    use crate::trust::{AverageTrust, TrustFunction};

    #[test]
    fn average_state_matches_batch_function() {
        let outcomes = [true, false, true, true, false, true, true];
        let mut state = AverageTrustState::new();
        let mut h = TransactionHistory::new();
        let f = AverageTrust::default();
        for (t, &good) in outcomes.iter().enumerate() {
            state.update(good);
            h.push(crate::Feedback::new(
                t as u64,
                ServerId::new(1),
                crate::ClientId::new(0),
                crate::Rating::from_good(good),
            ));
            assert_eq!(state.current(), f.trust(&h), "step {t}");
        }
    }

    #[test]
    fn weighted_state_matches_batch_function() {
        let outcomes = [true, true, false, true, false, false, true];
        let f = WeightedTrust::new(0.5).unwrap();
        let mut state = WeightedTrustState::new(0.5).unwrap();
        let mut h = TransactionHistory::new();
        for (t, &good) in outcomes.iter().enumerate() {
            state.update(good);
            h.push(crate::Feedback::new(
                t as u64,
                ServerId::new(1),
                crate::ClientId::new(0),
                crate::Rating::from_good(good),
            ));
            assert!((state.current().value() - f.trust(&h).value()).abs() < 1e-12);
        }
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut s = AverageTrustState::new();
        s.update(true);
        let before = s.current();
        let _ = s.peek(false);
        let _ = s.peek(true);
        assert_eq!(s.current(), before);
        assert_eq!(s.transactions(), 1);
    }

    #[test]
    fn peek_equals_update_result() {
        let mut a = WeightedTrustState::new(0.3).unwrap();
        a.update(true);
        a.update(false);
        let peeked = a.peek(true);
        let mut b = a;
        b.update(true);
        assert_eq!(peeked, b.current());
    }

    #[test]
    fn from_history_matches_replay() {
        let h = TransactionHistory::from_outcomes(
            ServerId::new(1),
            [true, false, true, true],
        );
        let avg = AverageTrustState::from_history(&h);
        assert_eq!(avg.transactions(), 4);
        assert!((avg.current().value() - 0.75).abs() < 1e-12);
        let w = WeightedTrustState::from_history(0.5, &h).unwrap();
        let batch = WeightedTrust::new(0.5).unwrap().trust(&h);
        assert!((w.current().value() - batch.value()).abs() < 1e-12);
    }

    #[test]
    fn empty_states_are_neutral() {
        assert_eq!(AverageTrustState::new().current(), TrustValue::NEUTRAL);
        assert_eq!(
            WeightedTrustState::new(0.5).unwrap().current(),
            TrustValue::NEUTRAL
        );
    }
}
