//! Global (transitive) trust — an EigenRep/EigenTrust-style baseline.
//!
//! The paper cites Kamvar et al.'s EigenRep (§6, ref. 3) as the canonical
//! *global* trust function: local satisfaction scores are normalized into
//! a stochastic matrix and iterated to a fixed point, so a peer's trust is
//! the stationary probability of a "random surfer" that walks along
//! satisfied-transaction edges. It is implemented here as a baseline so
//! the two-phase approach can be compared against a trust function that
//! aggregates *across* servers rather than per-server.
//!
//! Entities are identified by [`ServerId`]; a client that also issues
//! feedback participates through the same id space (the paper's
//! uni-directional server/client split is a special case where clients
//! have no incoming edges).

use crate::error::CoreError;
use crate::id::ServerId;
use crate::trust::TrustValue;
use std::collections::BTreeMap;

/// Accumulated local scores: `local[i][j]` = rater `i`'s satisfaction
/// balance with target `j`.
#[derive(Debug, Clone, Default)]
pub struct RatingGraph {
    local: BTreeMap<ServerId, BTreeMap<ServerId, f64>>,
    nodes: std::collections::BTreeSet<ServerId>,
}

impl RatingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RatingGraph::default()
    }

    /// Records one transaction outcome: rater `from` experienced a good
    /// (+1) or bad (−1 → clamped at aggregation) transaction with `to`.
    pub fn record(&mut self, from: ServerId, to: ServerId, good: bool) {
        let delta = if good { 1.0 } else { -1.0 };
        *self
            .local
            .entry(from)
            .or_default()
            .entry(to)
            .or_default() += delta;
        self.nodes.insert(from);
        self.nodes.insert(to);
    }

    /// Number of participating entities.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All participating entities, ordered.
    pub fn nodes(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.nodes.iter().copied()
    }

    /// EigenRep's normalized local trust `c_ij = max(s_ij, 0) / Σ_j max(s_ij, 0)`.
    fn normalized_row(&self, from: ServerId) -> Option<BTreeMap<ServerId, f64>> {
        let row = self.local.get(&from)?;
        let clipped: BTreeMap<ServerId, f64> = row
            .iter()
            .filter(|(_, &s)| s > 0.0)
            .map(|(&j, &s)| (j, s))
            .collect();
        let total: f64 = clipped.values().sum();
        if total <= 0.0 {
            return None;
        }
        Some(clipped.into_iter().map(|(j, s)| (j, s / total)).collect())
    }
}

/// Configuration for [`GlobalTrust`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalTrustConfig {
    /// Teleport weight toward the uniform distribution (EigenTrust's `a`
    /// toward pre-trusted peers; uniform here). Guards against rank sinks
    /// and collusive loops.
    pub damping: f64,
    /// Maximum power-iteration steps.
    pub max_iterations: usize,
    /// L¹ convergence tolerance between successive iterates.
    pub tolerance: f64,
}

impl Default for GlobalTrustConfig {
    fn default() -> Self {
        GlobalTrustConfig {
            damping: 0.15,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// The converged global trust vector.
#[derive(Debug, Clone)]
pub struct GlobalTrust {
    scores: BTreeMap<ServerId, f64>,
    iterations: usize,
}

impl GlobalTrust {
    /// Computes global trust over a rating graph by power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a damping outside `[0, 1)`
    /// or a zero iteration budget.
    pub fn compute(graph: &RatingGraph, config: GlobalTrustConfig) -> Result<Self, CoreError> {
        if !(0.0..1.0).contains(&config.damping) {
            return Err(CoreError::InvalidConfig {
                reason: format!("damping must lie in [0, 1), got {}", config.damping),
            });
        }
        if config.max_iterations == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "max_iterations must be positive".into(),
            });
        }
        let nodes: Vec<ServerId> = graph.nodes().collect();
        let n = nodes.len();
        if n == 0 {
            return Ok(GlobalTrust {
                scores: BTreeMap::new(),
                iterations: 0,
            });
        }
        let uniform = 1.0 / n as f64;
        let rows: BTreeMap<ServerId, BTreeMap<ServerId, f64>> = nodes
            .iter()
            .filter_map(|&i| graph.normalized_row(i).map(|r| (i, r)))
            .collect();

        let mut current: BTreeMap<ServerId, f64> =
            nodes.iter().map(|&i| (i, uniform)).collect();
        let mut iterations = 0;
        for _ in 0..config.max_iterations {
            iterations += 1;
            let mut next: BTreeMap<ServerId, f64> = nodes
                .iter()
                .map(|&i| (i, config.damping * uniform))
                .collect();
            let mut dangling = 0.0;
            for &i in &nodes {
                let mass = current[&i] * (1.0 - config.damping);
                match rows.get(&i) {
                    Some(row) => {
                        for (&j, &w) in row {
                            *next.get_mut(&j).expect("all nodes present") += mass * w;
                        }
                    }
                    None => dangling += mass,
                }
            }
            // Dangling raters (no positive outgoing score) spread uniformly.
            if dangling > 0.0 {
                let share = dangling / n as f64;
                for v in next.values_mut() {
                    *v += share;
                }
            }
            let delta: f64 = nodes
                .iter()
                .map(|&i| (next[&i] - current[&i]).abs())
                .sum();
            current = next;
            if delta < config.tolerance {
                break;
            }
        }
        Ok(GlobalTrust {
            scores: current,
            iterations,
        })
    }

    /// The raw stationary score of an entity (sums to 1 over all nodes).
    pub fn score(&self, id: ServerId) -> f64 {
        self.scores.get(&id).copied().unwrap_or(0.0)
    }

    /// The score rescaled to `[0, 1]` relative to the best-ranked entity —
    /// comparable across graphs of different sizes.
    pub fn relative_trust(&self, id: ServerId) -> TrustValue {
        let max = self
            .scores
            .values()
            .cloned()
            .fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return TrustValue::ZERO;
        }
        TrustValue::saturating(self.score(id) / max)
    }

    /// Entities ranked best-first.
    pub fn ranking(&self) -> Vec<(ServerId, f64)> {
        let mut out: Vec<(ServerId, f64)> =
            self.scores.iter().map(|(&i, &s)| (i, s)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        out
    }

    /// Power-iteration steps used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u64) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn config_validation() {
        let graph = RatingGraph::new();
        assert!(GlobalTrust::compute(
            &graph,
            GlobalTrustConfig {
                damping: 1.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GlobalTrust::compute(
            &graph,
            GlobalTrustConfig {
                max_iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn empty_graph_is_empty_trust() {
        let gt = GlobalTrust::compute(&RatingGraph::new(), GlobalTrustConfig::default()).unwrap();
        assert_eq!(gt.score(id(1)), 0.0);
        assert!(gt.ranking().is_empty());
    }

    #[test]
    fn scores_form_a_distribution() {
        let mut g = RatingGraph::new();
        for (a, b, good) in [(1, 2, true), (2, 3, true), (3, 1, true), (1, 3, false)] {
            g.record(id(a), id(b), good);
        }
        let gt = GlobalTrust::compute(&g, GlobalTrustConfig::default()).unwrap();
        let total: f64 = g.nodes().map(|i| gt.score(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn well_served_node_ranks_first() {
        // Everyone is satisfied by node 9; node 9 rates nobody.
        let mut g = RatingGraph::new();
        for i in 1..=8 {
            for _ in 0..5 {
                g.record(id(i), id(9), true);
            }
        }
        // A little side-traffic so others have rank mass too.
        g.record(id(1), id(2), true);
        let gt = GlobalTrust::compute(&g, GlobalTrustConfig::default()).unwrap();
        assert_eq!(gt.ranking()[0].0, id(9));
        assert_eq!(gt.relative_trust(id(9)), TrustValue::ONE);
        assert!(gt.relative_trust(id(3)).value() < 1.0);
    }

    #[test]
    fn negative_balances_carry_no_trust() {
        // 1 had 3 bad and 1 good transaction with 2: balance −2 → no edge.
        let mut g = RatingGraph::new();
        g.record(id(1), id(2), false);
        g.record(id(1), id(2), false);
        g.record(id(1), id(2), false);
        g.record(id(1), id(2), true);
        g.record(id(1), id(3), true);
        let gt = GlobalTrust::compute(&g, GlobalTrustConfig::default()).unwrap();
        assert!(
            gt.score(id(3)) > gt.score(id(2)),
            "all of 1's trust flows to 3: {:?}",
            gt.ranking()
        );
    }

    #[test]
    fn collusive_clique_is_bounded_by_damping() {
        // A 2-clique praising itself vs a server praised by 10 outsiders.
        let mut g = RatingGraph::new();
        for _ in 0..100 {
            g.record(id(100), id(101), true);
            g.record(id(101), id(100), true);
        }
        for i in 1..=10 {
            g.record(id(i), id(50), true);
        }
        let gt = GlobalTrust::compute(&g, GlobalTrustConfig::default()).unwrap();
        // The clique cannot exceed the rank that teleportation feeds it,
        // no matter how many self-dealing transactions it logs.
        assert!(
            gt.score(id(50)) > gt.score(id(100)),
            "organically trusted node must outrank the clique: {:?}",
            gt.ranking()
        );
    }

    #[test]
    fn converges_and_reports_iterations() {
        let mut g = RatingGraph::new();
        for i in 0..20u64 {
            g.record(id(i), id((i + 1) % 20), true);
        }
        let gt = GlobalTrust::compute(&g, GlobalTrustConfig::default()).unwrap();
        assert!(gt.iterations() > 0 && gt.iterations() <= 100);
        // Symmetric ring: all scores equal.
        let scores: Vec<f64> = g.nodes().map(|i| gt.score(i)).collect();
        for w in scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }
}
