//! The windowed average trust function.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::trust::{TrustFunction, TrustValue};

/// Average over only the most recent `l` transactions.
///
/// §3.3 of the paper discusses this design point explicitly: considering
/// "only the most recent l transactions … will open doors to periodic
/// attacks, since bad transactions are totally discarded once they are
/// outside of the most recent l transactions". It is included as a
/// baseline precisely so that weakness is measurable.
///
/// # Examples
///
/// ```
/// use hp_core::trust::{TrustFunction, WindowedAverageTrust};
/// use hp_core::{ServerId, TransactionHistory};
///
/// let f = WindowedAverageTrust::new(3)?;
/// let h = TransactionHistory::from_outcomes(
///     ServerId::new(1),
///     [false, false, true, true, true],
/// );
/// assert_eq!(f.trust(&h).value(), 1.0); // old failures forgotten
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedAverageTrust {
    window: usize,
}

impl WindowedAverageTrust {
    /// Creates a windowed average over the last `window` transactions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `window == 0`.
    pub fn new(window: usize) -> Result<Self, CoreError> {
        if window == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "window must be positive".into(),
            });
        }
        Ok(WindowedAverageTrust { window })
    }

    /// The window length `l`.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl TrustFunction for WindowedAverageTrust {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        let n = history.len();
        if n == 0 {
            return TrustValue::NEUTRAL;
        }
        let start = n.saturating_sub(self.window);
        let rate = history
            .rate_range(start, n)
            .expect("non-empty range checked above");
        TrustValue::saturating(rate)
    }

    fn name(&self) -> &'static str {
        "windowed-average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;

    #[test]
    fn window_validation() {
        assert!(WindowedAverageTrust::new(0).is_err());
        assert!(WindowedAverageTrust::new(1).is_ok());
    }

    #[test]
    fn uses_only_recent_window() {
        let f = WindowedAverageTrust::new(2).unwrap();
        let h = TransactionHistory::from_outcomes(
            ServerId::new(1),
            [true, true, true, false, false],
        );
        assert_eq!(f.trust(&h).value(), 0.0);
    }

    #[test]
    fn short_history_uses_what_exists() {
        let f = WindowedAverageTrust::new(100).unwrap();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, false]);
        assert_eq!(f.trust(&h).value(), 0.5);
    }

    #[test]
    fn empty_history_neutral() {
        let f = WindowedAverageTrust::new(5).unwrap();
        assert_eq!(f.trust(&TransactionHistory::new()), TrustValue::NEUTRAL);
    }

    #[test]
    fn demonstrates_periodic_attack_blindness() {
        // A periodic attacker whose bad patch has just slid out of the
        // window looks perfect — the §3.3 weakness.
        let f = WindowedAverageTrust::new(10).unwrap();
        let mut outcomes = vec![true; 20];
        outcomes.extend(vec![false; 5]); // attack burst
        outcomes.extend(vec![true; 10]); // push it out of the window
        let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
        assert_eq!(f.trust(&h), TrustValue::ONE);
    }
}
