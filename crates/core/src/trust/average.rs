//! The average trust function.

use crate::history::HistoryView;
use crate::trust::{TrustFunction, TrustValue};

/// Trust as the ratio of good transactions over all transactions.
///
/// The paper's primary baseline (§5.1): "compute the trust value as the
/// ratio of the number of good transactions over the total number of
/// transactions". Many published trust functions are refinements of this
/// ratio; Liang & Shi's analysis (cited in §5.1) found it to often be the
/// most cost-effective in dynamic systems.
///
/// # Examples
///
/// ```
/// use hp_core::trust::{AverageTrust, TrustFunction};
/// use hp_core::{ServerId, TransactionHistory};
///
/// let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, true, true, false]);
/// let trust = AverageTrust::default().trust(&h);
/// assert_eq!(trust.value(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AverageTrust {
    empty_default: TrustValue,
}

impl AverageTrust {
    /// Creates an average trust function that reports `empty_default` for
    /// servers without any transaction history.
    pub fn new(empty_default: TrustValue) -> Self {
        AverageTrust { empty_default }
    }
}

impl Default for AverageTrust {
    /// Uses [`TrustValue::NEUTRAL`] for empty histories.
    fn default() -> Self {
        AverageTrust::new(TrustValue::NEUTRAL)
    }
}

impl TrustFunction for AverageTrust {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        match history.p_hat() {
            Some(p) => TrustValue::saturating(p),
            None => self.empty_default,
        }
    }

    fn name(&self) -> &'static str {
        "average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;

    #[test]
    fn ratio_of_good_transactions() {
        let h = TransactionHistory::from_outcomes(
            ServerId::new(1),
            [true, false, true, true, false],
        );
        assert_eq!(AverageTrust::default().trust(&h).value(), 0.6);
    }

    #[test]
    fn empty_history_uses_default() {
        let h = TransactionHistory::new();
        assert_eq!(
            AverageTrust::default().trust(&h),
            TrustValue::NEUTRAL
        );
        let pessimist = AverageTrust::new(TrustValue::ZERO);
        assert_eq!(pessimist.trust(&h), TrustValue::ZERO);
    }

    #[test]
    fn all_good_and_all_bad_extremes() {
        let good = TransactionHistory::from_outcomes(ServerId::new(1), vec![true; 50]);
        let bad = TransactionHistory::from_outcomes(ServerId::new(1), vec![false; 50]);
        let f = AverageTrust::default();
        assert_eq!(f.trust(&good), TrustValue::ONE);
        assert_eq!(f.trust(&bad), TrustValue::ZERO);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(AverageTrust::default().name(), "average");
    }
}
