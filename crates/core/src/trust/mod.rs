//! Trust functions — phase 2 of the two-phase assessment.
//!
//! A trust function maps a transaction history to a [`TrustValue`] in
//! `[0, 1]`, interpreted as the predicted probability that the next
//! transaction with the server will be satisfactory (§2 of the paper).
//!
//! Implementations:
//!
//! * [`AverageTrust`] — good/total ratio (the paper's first baseline; per
//!   Liang & Shi often the most cost-effective choice),
//! * [`WeightedTrust`] — the λ-EWMA of Fan, Tan & Whinston used as the
//!   paper's second baseline (`R_t = λ·f_t + (1-λ)·R_{t-1}`),
//! * [`BetaTrust`] — the beta reputation system of Ismail & Jøsang,
//! * [`DecayTrust`] — exponential time-decay weights,
//! * [`WindowedAverageTrust`] — average over the most recent `l`
//!   transactions only,
//! * [`global::GlobalTrust`] — an EigenRep/EigenTrust-style transitive
//!   trust baseline over the whole rating graph.
//!
//! The [`incremental`] module provides O(1)-per-transaction streaming
//! evaluators for the two baselines, which the simulator's strategic
//! attacker consults on every hypothetical move.

mod average;
mod beta;
mod decay;
pub mod global;
pub mod incremental;
mod weighted;
mod windowed;

pub use average::AverageTrust;
pub use beta::BetaTrust;
pub use decay::DecayTrust;
pub use global::{GlobalTrust, GlobalTrustConfig, RatingGraph};
pub use weighted::WeightedTrust;
pub use windowed::WindowedAverageTrust;

use crate::error::CoreError;
use crate::history::HistoryView;
#[cfg(test)]
use crate::history::TransactionHistory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A trust value in `[0, 1]` — the predicted probability of a satisfactory
/// next transaction.
///
/// # Examples
///
/// ```
/// use hp_core::TrustValue;
///
/// let t = TrustValue::new(0.9)?;
/// assert!(t >= TrustValue::new(0.5)?);
/// assert_eq!(t.value(), 0.9);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TrustValue(f64);

impl TrustValue {
    /// Full distrust.
    pub const ZERO: TrustValue = TrustValue(0.0);
    /// Full trust.
    pub const ONE: TrustValue = TrustValue(1.0);
    /// The uninformed prior used where a value is needed for an empty
    /// history.
    pub const NEUTRAL: TrustValue = TrustValue(0.5);

    /// Creates a trust value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTrustValue`] unless `value ∈ [0, 1]`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            return Err(CoreError::InvalidTrustValue { value });
        }
        Ok(TrustValue(value))
    }

    /// Creates a trust value, clamping out-of-range inputs into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN trust value is always a logic bug.
    pub fn saturating(value: f64) -> Self {
        assert!(!value.is_nan(), "trust value must not be NaN");
        TrustValue(value.clamp(0.0, 1.0))
    }

    /// The inner value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this value meets a client's trust threshold.
    pub fn meets(self, threshold: f64) -> bool {
        self.0 >= threshold
    }
}

impl fmt::Display for TrustValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<TrustValue> for f64 {
    fn from(t: TrustValue) -> f64 {
        t.0
    }
}

/// A trust function: `2^F × V → [0, 1]` in the paper's formalization.
///
/// Implementations must be deterministic and must not mutate shared state;
/// the same history must always produce the same value.
pub trait TrustFunction {
    /// Computes the trust value of the server described by `history`.
    ///
    /// Takes any [`HistoryView`]; the reference and columnar history
    /// representations must yield bit-identical values.
    fn trust(&self, history: &dyn HistoryView) -> TrustValue;

    /// A short stable name for reports and CSV headers.
    fn name(&self) -> &'static str;
}

impl<T: TrustFunction + ?Sized> TrustFunction for &T {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        (**self).trust(history)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: TrustFunction + ?Sized> TrustFunction for Box<T> {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        (**self).trust(history)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServerId;

    #[test]
    fn trust_value_validation() {
        assert!(TrustValue::new(0.0).is_ok());
        assert!(TrustValue::new(1.0).is_ok());
        assert!(TrustValue::new(-0.01).is_err());
        assert!(TrustValue::new(1.01).is_err());
        assert!(TrustValue::new(f64::NAN).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(TrustValue::saturating(3.0), TrustValue::ONE);
        assert_eq!(TrustValue::saturating(-1.0), TrustValue::ZERO);
        assert_eq!(TrustValue::saturating(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn saturating_rejects_nan() {
        let _ = TrustValue::saturating(f64::NAN);
    }

    #[test]
    fn meets_threshold() {
        let t = TrustValue::new(0.9).unwrap();
        assert!(t.meets(0.9));
        assert!(t.meets(0.5));
        assert!(!t.meets(0.95));
    }

    #[test]
    fn display_rounds_to_four_places() {
        assert_eq!(TrustValue::new(0.123456).unwrap().to_string(), "0.1235");
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let avg = AverageTrust::default();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, true, false, true]);
        let direct = avg.trust(&h);
        let via_ref = avg.trust(&h);
        let boxed: Box<dyn TrustFunction> = Box::new(avg);
        assert_eq!(direct, via_ref);
        assert_eq!(direct, boxed.trust(&h));
        assert_eq!(boxed.name(), "average");
    }
}
