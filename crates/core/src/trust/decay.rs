//! The exponential time-decay trust function.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::trust::{TrustFunction, TrustValue};

/// Time-decay trust: each feedback is weighted by `2^(−age/half_life)`
/// where age is measured from the most recent feedback's timestamp, and
/// trust is the weighted fraction of good transactions.
///
/// This is the "assign time-based weights `w_i` to each feedback such that
/// `Σ w_i = 1`" family the paper surveys in §6 (Ray & Chakraborty, Huynh
/// et al., Selçuk et al.). Unlike [`crate::trust::WeightedTrust`], it uses
/// real timestamps, so a burst of old transactions cannot crowd out recent
/// behavior.
///
/// # Examples
///
/// ```
/// use hp_core::trust::{DecayTrust, TrustFunction};
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
///
/// let f = DecayTrust::new(10.0)?;
/// let mut h = TransactionHistory::new();
/// // An old bad patch followed by recent good service:
/// for t in 0..20 {
///     h.push(Feedback::new(t, ServerId::new(1), ClientId::new(0), Rating::Negative));
/// }
/// for t in 100..120 {
///     h.push(Feedback::new(t, ServerId::new(1), ClientId::new(0), Rating::Positive));
/// }
/// assert!(f.trust(&h).value() > 0.9, "old failures decay away");
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayTrust {
    half_life: f64,
    empty_default: TrustValue,
}

impl DecayTrust {
    /// Creates a decay trust function with the given half-life (in the
    /// same time units as feedback timestamps).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `half_life` is positive
    /// and finite.
    pub fn new(half_life: f64) -> Result<Self, CoreError> {
        if !(half_life > 0.0 && half_life.is_finite()) {
            return Err(CoreError::InvalidConfig {
                reason: format!("decay half-life must be positive, got {half_life}"),
            });
        }
        Ok(DecayTrust {
            half_life,
            empty_default: TrustValue::NEUTRAL,
        })
    }

    /// The configured half-life.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }
}

impl TrustFunction for DecayTrust {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        let n = history.len();
        if n == 0 {
            return self.empty_default;
        }
        // Representations without a timestamp column fall back to the
        // transaction index as the clock.
        let time_at = |i: usize| history.time(i).unwrap_or(i as u64);
        let now = time_at(n - 1);
        let mut weight_sum = 0.0;
        let mut good_sum = 0.0;
        for i in 0..n {
            let age = now.saturating_sub(time_at(i)) as f64;
            let w = (-age / self.half_life * std::f64::consts::LN_2).exp();
            weight_sum += w;
            if history.outcome(i) {
                good_sum += w;
            }
        }
        if weight_sum <= 0.0 {
            return self.empty_default;
        }
        TrustValue::saturating(good_sum / weight_sum)
    }

    fn name(&self) -> &'static str {
        "decay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{Feedback, Rating};
    use crate::history::TransactionHistory;
    use crate::id::{ClientId, ServerId};

    fn fb(t: u64, good: bool) -> Feedback {
        Feedback::new(t, ServerId::new(1), ClientId::new(0), Rating::from_good(good))
    }

    #[test]
    fn half_life_validation() {
        assert!(DecayTrust::new(0.0).is_err());
        assert!(DecayTrust::new(-3.0).is_err());
        assert!(DecayTrust::new(f64::NAN).is_err());
        assert!(DecayTrust::new(5.0).is_ok());
    }

    #[test]
    fn empty_history_neutral() {
        let f = DecayTrust::new(5.0).unwrap();
        assert_eq!(f.trust(&TransactionHistory::new()), TrustValue::NEUTRAL);
    }

    #[test]
    fn uniform_times_equal_average() {
        // All feedback at the same timestamp ⇒ equal weights ⇒ average.
        let f = DecayTrust::new(5.0).unwrap();
        let mut h = TransactionHistory::new();
        for good in [true, true, false, true] {
            h.push(fb(100, good));
        }
        assert!((f.trust(&h).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_half_life_weighting() {
        // One bad feedback exactly one half-life before one good feedback:
        // weights 0.5 and 1.0 ⇒ trust = 1.0/1.5.
        let f = DecayTrust::new(10.0).unwrap();
        let mut h = TransactionHistory::new();
        h.push(fb(0, false));
        h.push(fb(10, true));
        assert!((f.trust(&h).value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recent_behavior_dominates() {
        let f = DecayTrust::new(2.0).unwrap();
        let mut cheat_recent = TransactionHistory::new();
        for t in 0..50 {
            cheat_recent.push(fb(t, true));
        }
        for t in 50..55 {
            cheat_recent.push(fb(t, false));
        }
        assert!(f.trust(&cheat_recent).value() < 0.3);
    }
}
