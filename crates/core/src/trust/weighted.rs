//! The weighted (EWMA) trust function.

use crate::error::CoreError;
use crate::history::HistoryView;
use crate::trust::{TrustFunction, TrustValue};

/// The exponentially weighted trust function of Fan, Tan & Whinston
/// (TKDE'05), the paper's second baseline (§5.1):
///
/// ```text
/// R_t = λ·f_t + (1 − λ)·R_{t−1}
/// ```
///
/// where `f_t ∈ {0, 1}` is the most recent feedback. Large `λ` makes trust
/// react quickly to recent behavior; the paper's experiments use `λ = 0.5`.
///
/// # Examples
///
/// ```
/// use hp_core::trust::{TrustFunction, WeightedTrust};
/// use hp_core::{ServerId, TransactionHistory};
///
/// let f = WeightedTrust::new(0.5)?;
/// let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, true, false]);
/// // R = 0.5: R1 = 0.75, R2 = 0.875, R3 = 0.4375
/// assert!((f.trust(&h).value() - 0.4375).abs() < 1e-12);
/// # Ok::<(), hp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedTrust {
    lambda: f64,
    initial: TrustValue,
}

impl WeightedTrust {
    /// Creates a weighted trust function with mixing factor `lambda` and a
    /// neutral initial value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `lambda ∈ (0, 1]`.
    pub fn new(lambda: f64) -> Result<Self, CoreError> {
        Self::with_initial(lambda, TrustValue::NEUTRAL)
    }

    /// Creates a weighted trust function with an explicit starting value
    /// `R_0` for servers with no history.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `lambda ∈ (0, 1]`.
    pub fn with_initial(lambda: f64, initial: TrustValue) -> Result<Self, CoreError> {
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("weighted trust λ must lie in (0, 1], got {lambda}"),
            });
        }
        Ok(WeightedTrust { lambda, initial })
    }

    /// The mixing factor λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The starting value `R_0`.
    pub fn initial(&self) -> TrustValue {
        self.initial
    }
}

impl TrustFunction for WeightedTrust {
    fn trust(&self, history: &dyn HistoryView) -> TrustValue {
        let mut r = self.initial.value();
        for i in 0..history.len() {
            let f = if history.outcome(i) { 1.0 } else { 0.0 };
            r = self.lambda * f + (1.0 - self.lambda) * r;
        }
        TrustValue::saturating(r)
    }

    fn name(&self) -> &'static str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TransactionHistory;
    use crate::id::ServerId;

    #[test]
    fn lambda_validation() {
        assert!(WeightedTrust::new(0.0).is_err());
        assert!(WeightedTrust::new(1.5).is_err());
        assert!(WeightedTrust::new(1.0).is_ok());
        assert!(WeightedTrust::new(0.5).is_ok());
    }

    #[test]
    fn recurrence_hand_computed() {
        let f = WeightedTrust::new(0.5).unwrap();
        // R0=0.5; after good: 0.75; after bad: 0.375; after good: 0.6875
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, false, true]);
        assert!((f.trust(&h).value() - 0.6875).abs() < 1e-12);
    }

    #[test]
    fn empty_history_returns_initial() {
        let f = WeightedTrust::with_initial(0.3, TrustValue::new(0.8).unwrap()).unwrap();
        assert_eq!(f.trust(&TransactionHistory::new()).value(), 0.8);
    }

    #[test]
    fn lambda_one_tracks_last_feedback_only() {
        let f = WeightedTrust::new(1.0).unwrap();
        let good_last =
            TransactionHistory::from_outcomes(ServerId::new(1), [false, false, true]);
        let bad_last =
            TransactionHistory::from_outcomes(ServerId::new(1), [true, true, false]);
        assert_eq!(f.trust(&good_last), TrustValue::ONE);
        assert_eq!(f.trust(&bad_last), TrustValue::ZERO);
    }

    #[test]
    fn long_good_run_converges_to_one() {
        let f = WeightedTrust::new(0.5).unwrap();
        let h = TransactionHistory::from_outcomes(ServerId::new(1), vec![true; 60]);
        assert!(f.trust(&h).value() > 0.999_999);
    }

    #[test]
    fn one_bad_transaction_halves_trust_at_half_lambda() {
        // This is the property behind the paper's observation that with
        // λ=0.5 an attacker "can never conduct two consecutive bad
        // transactions" while staying above 0.9.
        let f = WeightedTrust::new(0.5).unwrap();
        let mut h = TransactionHistory::from_outcomes(ServerId::new(1), vec![true; 40]);
        let before = f.trust(&h).value();
        h.push(crate::Feedback::new(
            40,
            ServerId::new(1),
            crate::ClientId::new(0),
            crate::Rating::Negative,
        ));
        let after = f.trust(&h).value();
        assert!((after - before / 2.0).abs() < 1e-9);
        assert!(after < 0.9);
    }
}
