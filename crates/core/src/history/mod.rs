//! Ordered transaction histories with O(1) range statistics.
//!
//! Two representations share one behavioral contract:
//!
//! * [`TransactionHistory`] — the reference row store: a `Vec<Feedback>`
//!   plus prefix sums of good transactions and a per-client index. Keeps
//!   full records, supports pop (append–test–revert), and anchors the
//!   bit-identity property tests.
//! * [`ColumnarHistory`] — the bit-packed columnar engine (~8 bytes per
//!   transaction instead of ~48): outcomes in a [`BitColumn`], issuers
//!   in an [`IssuerColumn`], timestamps optional.
//!
//! Every assessment path — the three behavior-testing schemes, the trust
//! functions, and [`crate::TwoPhaseAssessor`] — consumes either through
//! the borrowed [`HistoryView`] trait:
//!
//! * any window count `G_i` and any suffix's `p̂` are O(1)
//!   ([`HistoryView::count_range`]), which turns the naive O(n²)
//!   multi-test into the O(n) optimized variant;
//! * the collusion-resilient reordering (§4) groups feedback by issuer in
//!   O(n) — and is cached per history, invalidated on ingest, so repeated
//!   collusion evaluations of an unchanged history allocate nothing.

mod columnar;
mod tiered;
mod view;

pub use columnar::{BitColumn, ColumnarHistory, IssuerColumn};
pub use tiered::{TieredColumn, TieredHistory};
pub use view::{ColumnRef, HistoryView, IssuerGroup, OwnedColumn};

use crate::feedback::{Feedback, Rating};
use crate::id::{ClientId, ServerId};
use hp_stats::{PrefixSums, StatsError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use view::ReorderCache;

/// A server's transaction history, in transaction order.
///
/// # Examples
///
/// ```
/// use hp_core::{ClientId, Feedback, Rating, ServerId, TransactionHistory};
///
/// let mut h = TransactionHistory::new();
/// h.push(Feedback::new(0, ServerId::new(1), ClientId::new(5), Rating::Positive));
/// h.push(Feedback::new(1, ServerId::new(1), ClientId::new(6), Rating::Negative));
/// assert_eq!(h.len(), 2);
/// assert_eq!(h.good_count(), 1);
/// assert_eq!(h.p_hat(), Some(0.5));
/// ```
#[derive(Debug, Default)]
pub struct TransactionHistory {
    feedbacks: Vec<Feedback>,
    prefix: PrefixSums,
    by_client: HashMap<ClientId, Vec<usize>>,
    /// Bumped on push *and* pop; stamps the reorder cache.
    version: u64,
    reorder: Mutex<ReorderCache>,
}

impl TransactionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        TransactionHistory::default()
    }

    /// Creates an empty history with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TransactionHistory {
            feedbacks: Vec::with_capacity(capacity),
            ..TransactionHistory::default()
        }
    }

    /// Builds a synthetic history from good/bad outcomes.
    ///
    /// Times are assigned sequentially and all feedback is attributed to a
    /// single placeholder client, so this is only appropriate where issuer
    /// identity does not matter (i.e. everywhere except collusion testing).
    pub fn from_outcomes<I>(server: ServerId, outcomes: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let client = ClientId::new(0);
        let mut h = TransactionHistory::new();
        for (t, good) in outcomes.into_iter().enumerate() {
            h.push(Feedback::new(t as u64, server, client, Rating::from_good(good)));
        }
        h
    }

    /// Appends a feedback record.
    pub fn push(&mut self, feedback: Feedback) {
        let idx = self.feedbacks.len();
        self.prefix.push(feedback.is_good());
        self.by_client.entry(feedback.client).or_default().push(idx);
        self.feedbacks.push(feedback);
        self.version += 1;
    }

    /// Removes and returns the most recent feedback.
    ///
    /// Together with [`TransactionHistory::push`], this supports the
    /// append–test–revert pattern the strategic attacker (and any what-if
    /// analysis) needs, in O(1).
    pub fn pop(&mut self) -> Option<Feedback> {
        let feedback = self.feedbacks.pop()?;
        self.prefix.pop();
        let idx_list = self
            .by_client
            .get_mut(&feedback.client)
            .expect("per-client index tracks every pushed feedback");
        idx_list.pop();
        if idx_list.is_empty() {
            self.by_client.remove(&feedback.client);
        }
        self.version += 1;
        Some(feedback)
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.feedbacks.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.feedbacks.is_empty()
    }

    /// Total number of good transactions.
    pub fn good_count(&self) -> u64 {
        self.prefix.total_good()
    }

    /// Total number of bad transactions.
    pub fn bad_count(&self) -> u64 {
        self.len() as u64 - self.good_count()
    }

    /// Overall fraction of good transactions (`None` when empty).
    ///
    /// This is the paper's `p̂ = Σ G_i / n` estimator.
    pub fn p_hat(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.good_count() as f64 / self.len() as f64)
        }
    }

    /// The feedback at position `i` (transaction order).
    pub fn get(&self, i: usize) -> Option<&Feedback> {
        self.feedbacks.get(i)
    }

    /// The most recent feedback.
    pub fn last(&self) -> Option<&Feedback> {
        self.feedbacks.last()
    }

    /// All feedback records in transaction order.
    pub fn feedbacks(&self) -> &[Feedback] {
        &self.feedbacks
    }

    /// Iterates over feedback records in transaction order.
    pub fn iter(&self) -> std::slice::Iter<'_, Feedback> {
        self.feedbacks.iter()
    }

    /// Iterates over good/bad outcomes in transaction order.
    pub fn outcomes(&self) -> impl Iterator<Item = bool> + '_ {
        self.feedbacks.iter().map(|f| f.is_good())
    }

    /// The underlying prefix sums (for O(1) range statistics).
    pub fn prefix_sums(&self) -> &PrefixSums {
        &self.prefix
    }

    /// Number of good transactions in the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (see [`PrefixSums::count_range`]).
    pub fn count_range(&self, start: usize, end: usize) -> u64 {
        self.prefix.count_range(start, end)
    }

    /// Fraction of good transactions in `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty range.
    pub fn rate_range(&self, start: usize, end: usize) -> Result<f64, StatsError> {
        self.prefix.rate_range(start, end)
    }

    /// Window counts of size `m` over `[start, end)`, aligned to `start`
    /// (trailing partial window dropped).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidCount`] if `m == 0`.
    pub fn window_counts(
        &self,
        start: usize,
        end: usize,
        m: usize,
    ) -> Result<Vec<u32>, StatsError> {
        self.prefix.window_counts(start, end, m)
    }

    /// Number of distinct feedback issuers — the size of the server's
    /// *supporter base* in the paper's §4 terminology (counting all
    /// issuers, not only positive ones; see
    /// [`crate::testing::SupporterBaseStats`] for the refined view).
    pub fn distinct_clients(&self) -> usize {
        self.by_client.len()
    }

    /// Number of feedbacks issued by `client`.
    pub fn client_count(&self, client: ClientId) -> usize {
        self.by_client.get(&client).map_or(0, Vec::len)
    }

    /// All `(client, feedback-count)` pairs, most frequent first.
    ///
    /// Ties are broken by client id so the ordering — and therefore the
    /// collusion-resilient test built on it — is deterministic.
    pub fn client_frequencies(&self) -> Vec<(ClientId, usize)> {
        let mut freqs: Vec<(ClientId, usize)> = self
            .by_client
            .iter()
            .map(|(&c, idxs)| (c, idxs.len()))
            .collect();
        freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        freqs
    }

    /// The §4 issuer-frequency permutation: indexes of all feedback,
    /// grouped by issuer with the most frequent issuers first, and
    /// transaction order preserved inside each group.
    pub fn issuer_frequency_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        for (client, _) in self.client_frequencies() {
            order.extend_from_slice(&self.by_client[&client]);
        }
        order
    }

    /// Good/bad outcomes in issuer-frequency order — the sequence the
    /// collusion-resilient behavior test runs on.
    ///
    /// Rebuilds the permutation on every call; assessment paths should
    /// prefer [`HistoryView::reordered_column`], which caches it.
    pub fn reordered_outcomes(&self) -> Vec<bool> {
        self.issuer_frequency_order()
            .into_iter()
            .map(|i| self.feedbacks[i].is_good())
            .collect()
    }

    /// The ingest version — bumped on every push and pop.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many times this instance actually rebuilt the §4 reordering
    /// (cache-miss count; see [`HistoryView::reordered_column`]).
    pub fn reorder_recomputes(&self) -> u64 {
        self.reorder.lock().expect("reorder cache lock poisoned").recomputes()
    }

    /// Approximate heap bytes held by this history (hash-map entries
    /// estimated at 48 bytes each) — the reference number the columnar
    /// engine's memory wins are measured against.
    pub fn resident_bytes(&self) -> usize {
        self.feedbacks.len() * std::mem::size_of::<Feedback>()
            + (self.prefix.len() + 1) * 8
            + self
                .by_client
                .values()
                .map(|idxs| idxs.len() * 8)
                .sum::<usize>()
            + self.by_client.len() * 48
    }

    /// The server that this history belongs to, if non-empty and uniform.
    ///
    /// Returns `None` for an empty history or one that mixes servers
    /// (histories are normally per-server; mixing indicates a caller bug
    /// worth surfacing).
    pub fn server(&self) -> Option<ServerId> {
        let first = self.feedbacks.first()?.server;
        if self.feedbacks.iter().all(|f| f.server == first) {
            Some(first)
        } else {
            None
        }
    }
}

impl Clone for TransactionHistory {
    fn clone(&self) -> Self {
        TransactionHistory {
            feedbacks: self.feedbacks.clone(),
            prefix: self.prefix.clone(),
            by_client: self.by_client.clone(),
            version: self.version,
            // Keep the warm column (an Arc bump); the recompute counter
            // describes work done by *this* instance and resets.
            reorder: Mutex::new(self.reorder.lock().expect("reorder cache lock poisoned").cloned()),
        }
    }
}

impl HistoryView for TransactionHistory {
    fn len(&self) -> usize {
        self.feedbacks.len()
    }

    fn outcome_prefix(&self) -> ColumnRef<'_> {
        ColumnRef::Prefix(&self.prefix)
    }

    fn issuer_groups(&self) -> Vec<IssuerGroup> {
        let mut groups: Vec<IssuerGroup> = self
            .by_client
            .iter()
            .map(|(&client, idxs)| IssuerGroup {
                client,
                count: idxs.len(),
                good: idxs.iter().filter(|&&i| self.feedbacks[i].is_good()).count(),
            })
            .collect();
        groups.sort_by(|a, b| b.count.cmp(&a.count).then(a.client.cmp(&b.client)));
        groups
    }

    fn reordered_column(&self) -> OwnedColumn {
        self.reorder
            .lock()
            .expect("reorder cache lock poisoned")
            .get_or_build(self.version, || {
                OwnedColumn::Prefix(Arc::new(PrefixSums::from_bools(self.reordered_outcomes())))
            })
    }

    fn time(&self, i: usize) -> Option<u64> {
        self.feedbacks.get(i).map(|f| f.time)
    }

    fn server(&self) -> Option<ServerId> {
        TransactionHistory::server(self)
    }
}

impl FromIterator<Feedback> for TransactionHistory {
    fn from_iter<I: IntoIterator<Item = Feedback>>(iter: I) -> Self {
        let mut h = TransactionHistory::new();
        for f in iter {
            h.push(f);
        }
        h
    }
}

impl Extend<Feedback> for TransactionHistory {
    fn extend<I: IntoIterator<Item = Feedback>>(&mut self, iter: I) {
        for f in iter {
            self.push(f);
        }
    }
}

impl<'a> IntoIterator for &'a TransactionHistory {
    type Item = &'a Feedback;
    type IntoIter = std::slice::Iter<'a, Feedback>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(t: u64, client: u64, good: bool) -> Feedback {
        Feedback::new(t, ServerId::new(1), ClientId::new(client), Rating::from_good(good))
    }

    #[test]
    fn push_maintains_counts() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 1, true));
        h.push(fb(1, 2, false));
        h.push(fb(2, 1, true));
        assert_eq!(h.len(), 3);
        assert_eq!(h.good_count(), 2);
        assert_eq!(h.bad_count(), 1);
        assert_eq!(h.p_hat(), Some(2.0 / 3.0));
        assert_eq!(h.distinct_clients(), 2);
        assert_eq!(h.client_count(ClientId::new(1)), 2);
    }

    #[test]
    fn pop_reverses_push_fully() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 1, true));
        let snapshot_len = h.len();
        let snapshot_clients = h.distinct_clients();
        h.push(fb(1, 9, false));
        let popped = h.pop().unwrap();
        assert_eq!(popped.client, ClientId::new(9));
        assert_eq!(h.len(), snapshot_len);
        assert_eq!(h.distinct_clients(), snapshot_clients);
        assert_eq!(h.client_count(ClientId::new(9)), 0);
        assert_eq!(h.good_count(), 1);
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut h = TransactionHistory::new();
        assert!(h.pop().is_none());
    }

    #[test]
    fn from_outcomes_builds_sequential_history() {
        let h = TransactionHistory::from_outcomes(ServerId::new(3), [true, false, true]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.good_count(), 2);
        assert_eq!(h.get(1).unwrap().time, 1);
        assert_eq!(h.server(), Some(ServerId::new(3)));
    }

    #[test]
    fn range_statistics_match_direct_computation() {
        let outcomes = [true, true, false, true, false, false, true, true];
        let h = TransactionHistory::from_outcomes(ServerId::new(1), outcomes);
        assert_eq!(h.count_range(0, 8), 5);
        assert_eq!(h.count_range(2, 6), 1);
        assert!((h.rate_range(2, 6).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(h.window_counts(0, 8, 4).unwrap(), vec![3, 2]);
        // Offset windows (suffix view)
        assert_eq!(h.window_counts(2, 8, 3).unwrap(), vec![1, 2]);
    }

    #[test]
    fn client_frequencies_sorted_desc_with_stable_ties() {
        let mut h = TransactionHistory::new();
        for t in 0..3 {
            h.push(fb(t, 7, true));
        }
        for t in 3..5 {
            h.push(fb(t, 2, true));
        }
        for t in 5..7 {
            h.push(fb(t, 1, false));
        }
        let freqs = h.client_frequencies();
        assert_eq!(
            freqs,
            vec![
                (ClientId::new(7), 3),
                (ClientId::new(1), 2), // tie with client 2 broken by id
                (ClientId::new(2), 2),
            ]
        );
    }

    #[test]
    fn issuer_frequency_order_groups_and_preserves_time() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 5, true)); // idx 0
        h.push(fb(1, 9, false)); // idx 1
        h.push(fb(2, 5, true)); // idx 2
        h.push(fb(3, 5, false)); // idx 3
        h.push(fb(4, 9, true)); // idx 4
        let order = h.issuer_frequency_order();
        // client 5 (3 feedbacks) first, then client 9 (2), time order inside.
        assert_eq!(order, vec![0, 2, 3, 1, 4]);
        assert_eq!(
            h.reordered_outcomes(),
            vec![true, true, false, false, true]
        );
    }

    #[test]
    fn issuer_groups_match_frequencies_and_count_good() {
        let mut h = TransactionHistory::new();
        h.push(fb(0, 5, true));
        h.push(fb(1, 9, false));
        h.push(fb(2, 5, true));
        h.push(fb(3, 5, false));
        h.push(fb(4, 9, true));
        assert_eq!(
            h.issuer_groups(),
            vec![
                IssuerGroup { client: ClientId::new(5), count: 3, good: 2 },
                IssuerGroup { client: ClientId::new(9), count: 2, good: 1 },
            ]
        );
    }

    #[test]
    fn reordered_column_cached_until_history_changes() {
        let mut h = TransactionHistory::new();
        for t in 0..12 {
            h.push(fb(t, t % 3, t % 4 != 0));
        }
        let a = h.reordered_column();
        let b = h.reordered_column();
        assert_eq!(h.reorder_recomputes(), 1, "second call must hit the cache");
        match (&a, &b) {
            (OwnedColumn::Prefix(x), OwnedColumn::Prefix(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!("reference reordering is prefix-backed"),
        }
        h.push(fb(12, 0, true));
        let _ = h.reordered_column();
        assert_eq!(h.reorder_recomputes(), 2, "push must invalidate");
        h.pop();
        let _ = h.reordered_column();
        assert_eq!(h.reorder_recomputes(), 3, "pop must invalidate");
    }

    #[test]
    fn reordered_column_matches_reordered_outcomes() {
        let mut h = TransactionHistory::new();
        for t in 0..30 {
            h.push(fb(t, t % 5, t % 3 == 0));
        }
        let col = h.reordered_column();
        let expected = h.reordered_outcomes();
        let col = col.as_col();
        assert_eq!(col.len(), expected.len());
        for (i, &good) in expected.iter().enumerate() {
            assert_eq!(col.count_range(i, i + 1) == 1, good, "position {i}");
        }
    }

    #[test]
    fn server_detects_mixed_histories() {
        let mut h = TransactionHistory::new();
        h.push(Feedback::new(0, ServerId::new(1), ClientId::new(1), Rating::Positive));
        h.push(Feedback::new(1, ServerId::new(2), ClientId::new(1), Rating::Positive));
        assert_eq!(h.server(), None);
        assert_eq!(TransactionHistory::new().server(), None);
    }

    #[test]
    fn collect_and_extend() {
        let h: TransactionHistory = (0..5).map(|t| fb(t, t, t % 2 == 0)).collect();
        assert_eq!(h.len(), 5);
        let mut h2 = TransactionHistory::new();
        h2.extend(h.iter().copied());
        assert_eq!(h2.len(), 5);
        assert_eq!(h2.good_count(), h.good_count());
    }

    #[test]
    fn outcomes_iterator_matches_feedback() {
        let h = TransactionHistory::from_outcomes(ServerId::new(1), [true, false]);
        let outs: Vec<bool> = h.outcomes().collect();
        assert_eq!(outs, vec![true, false]);
    }
}
